package core

import (
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/cost"
	"repro/internal/memory"
)

// This file is the window-wide shared-computation layer: a registry of
// transiently materialized build-side hash tables shared across the Comp
// expressions of one update window. The per-Compute buildCache shares builds across
// the 2^r − 1 terms of *one* Compute; the registry extends the same idea
// across *views* — sibling Comps that scan the same operand (the state or
// pending delta of one view, at one point of the strategy) hash it once and
// every later consumer probes the same physical table.
//
// Correctness rests on epoch versioning: an operand's content is stable
// between installs (conditions C5/C8 put every Comp of V before any reader
// of δV, and a view's state changes only at Inst(V)), so entries are keyed
// by (view, delta?, install-version) and the version counter bumps on every
// Install. The scheduler's conflict ordering already serializes each Comp
// against the installs of the views it reads, in every execution mode, so a
// consumer always observes the version its planner-computed hints predicted.
//
// The work metric is untouched by construction: plans fix OperandTuples
// from cardinalities before any table is served (see termPlan), so shared
// results change what the machine does, never what the metric counts.
// SharedHits/SharedTuplesSaved report the physical scans elided.

// SharedOperand identifies one shareable operand: a view's pending delta or
// materialized state, at a specific install version (the number of
// Inst(View) expressions executed before the read).
type SharedOperand struct {
	View    string
	Delta   bool
	Version int
}

// SharingHints is the planner's sharing analysis in executor terms: how
// many Comp expressions of the window read each operand, and which operands
// each Comp (by canonical key) reads — the registry's refcount seed and
// release schedule. Hints may overcount (a Comp elided by SkipEmptyDeltas,
// or served by the indexed path, never asks); releases reconcile that.
type SharingHints struct {
	// Consumers maps each operand to the number of Comps that read it.
	Consumers map[SharedOperand]int
	// ByComp maps a Comp's canonical key (strategy.Expr.Key()) to the
	// operands its terms read.
	ByComp map[string][]SharedOperand
}

// CompKey renders the canonical key of Comp(view, over), byte-identical to
// strategy.Comp.Key() so planner hints and executor lookups agree.
func CompKey(view string, over []string) string {
	sorted := append([]string(nil), over...)
	sort.Strings(sorted)
	return "C:" + view + ":" + strings.Join(sorted, ",")
}

// defaultSharedBudget bounds transient materialization when the caller does
// not configure Options.SharedBudgetBytes.
const defaultSharedBudget = 64 << 20

// sharedKey identifies one registry entry: the operand plus the canonical
// equi-key column list its hash table is built on.
type sharedKey struct {
	op   SharedOperand
	cols string
}

// sharedEntry is one transiently materialized build table: resident (bt,
// with a budget grant when a window memory budget is attached), spilled to
// disk (sp — the evict-to-spill fallback, probed partition-wise by every
// consumer), or failed (err — the evict-to-recompute fallback; consumers
// build locally). The fields are published through once; the bookkeeping
// fields (rows, bytes set inside once; charged under the registry mutex)
// feed budget accounting.
type sharedEntry struct {
	once    sync.Once
	bt      *buildTable
	sp      *spilledBuild
	err     error
	grant   *memory.Grant
	rows    int64
	bytes   int64
	charged bool
}

// SharedRegistry is the window-wide shared-result store. One registry is
// attached to a warehouse for the duration of one update window (see
// AttachSharing) and detached — reporting its footprint — at the end.
// Entries hold refcounts seeded from the planner's hints and are dropped
// eagerly when their last hinted consumer releases, when their view's
// version advances, or when retention would exceed the byte budget.
type SharedRegistry struct {
	mu        sync.Mutex
	budget    int64
	hints     *SharingHints
	versions  map[string]int        // installs executed per view
	remaining map[SharedOperand]int // hinted consumers not yet released
	entries   map[sharedKey]*sharedEntry
	used           int64 // bytes of retained resident entries
	bytesPeak      int64
	created        int
	evicted        int
	evictedToSpill int
}

// SharedStats summarizes a detached registry for reporting.
type SharedStats struct {
	// BytesPeak is the high-water transient footprint, counting entries
	// that were built but not retained.
	BytesPeak int64
	// Entries is the number of shared tables materialized.
	Entries int
	// Evicted counts tables dropped by the budget gate rather than by
	// normal end-of-life release — the evict-to-recompute fallback: every
	// later consumer rebuilds locally.
	Evicted int
	// EvictedToSpill counts over-budget tables that degraded to shared
	// spill files instead of being dropped (only with a window memory
	// budget attached). Spilling is tried before recompute: consumers
	// re-read partitions, which is cheaper than rebuilding per consumer.
	EvictedToSpill int
}

// AttachSharing installs a shared-computation registry on the warehouse for
// the coming window, seeded with the planner's hints. It reports false —
// and attaches nothing — when sharing is disabled by options, a registry is
// already attached, or there are no hints. Not safe to call while
// expressions execute; callers attach before the window's first step.
func (w *Warehouse) AttachSharing(h *SharingHints) bool {
	if !w.opts.ShareComputation || w.shared != nil || h == nil {
		return false
	}
	budget := w.opts.SharedBudgetBytes
	if budget <= 0 {
		budget = defaultSharedBudget
	}
	remaining := make(map[SharedOperand]int, len(h.Consumers))
	for op, n := range h.Consumers {
		remaining[op] = n
	}
	w.shared = &SharedRegistry{
		budget:    budget,
		hints:     h,
		versions:  make(map[string]int),
		remaining: remaining,
		entries:   make(map[sharedKey]*sharedEntry),
	}
	return true
}

// DetachSharing removes the registry (dropping every entry) and returns its
// stats. Safe to call when nothing is attached.
func (w *Warehouse) DetachSharing() SharedStats {
	r := w.shared
	w.shared = nil
	if r == nil {
		return SharedStats{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, e := range r.entries {
		e.grant.Release()
	}
	return SharedStats{BytesPeak: r.bytesPeak, Entries: r.created, Evicted: r.evicted, EvictedToSpill: r.evictedToSpill}
}

// sharedUse is one Compute's handle on the registry: the Comp's canonical
// key (for release) plus per-Compute hit/miss/saved counters feeding
// CompReport.
type sharedUse struct {
	reg    *SharedRegistry
	comp   string
	hits   atomic.Int64
	misses atomic.Int64
	saved  atomic.Int64
}

// fill copies the counters into a CompReport; a nil receiver (no registry
// attached) leaves the report untouched.
func (su *sharedUse) fill(rep *CompReport) {
	if su == nil {
		return
	}
	rep.SharedHits = int(su.hits.Load())
	rep.SharedMisses = int(su.misses.Load())
	rep.SharedTuplesSaved = su.saved.Load()
}

// acquire serves a build request from the registry. The bool reports
// whether the registry served it: false when the operand is not worth
// sharing (fewer than two outstanding consumers and no existing entry) or
// when the entry degraded to recompute — the caller then builds locally.
// The first requester builds (recording the miss); everyone else reuses
// (recording the hit and the operand scan saved).
//
// Admission is budget-aware when a window memory budget is attached
// (satellite of the -share-budget-mb cliff): an over-budget entry degrades
// per-entry — first to shared spill files every consumer probes
// partition-wise, and only if spilling itself fails to recompute — instead
// of being refused outright. Without a memory budget the legacy gate
// applies: the table is built resident and retention alone is gated.
func (r *SharedRegistry) acquire(env *evalEnv, su *sharedUse, br buildReq) (buildRes, bool, error) {
	r.mu.Lock()
	op := SharedOperand{View: br.view, Delta: br.isDelta, Version: r.versions[br.view]}
	consumers := r.remaining[op]
	key := sharedKey{op: op, cols: colsKey(br.cols)}
	e := r.entries[key]
	if e == nil {
		if consumers < 2 {
			r.mu.Unlock()
			return buildRes{}, false, nil
		}
		e = &sharedEntry{}
		r.entries[key] = e
		r.created++
	}
	r.mu.Unlock()

	built := false
	e.once.Do(func() {
		built = true
		rows := scanSource(env, br.src)
		e.rows = br.src.Cardinality()
		width := 1
		if len(rows) > 0 {
			width = len(rows[0].row)
		}
		e.bytes = cost.EstimateMaterializedBytes(e.rows, width)
		mu := env.memUse()
		if mu == nil {
			e.bt = newBuildTable(rows, br.cols)
			return
		}
		// Unified-budget admission: resident only when both the share gate
		// and the window budget admit it; spill otherwise.
		if cost.ShouldShare(consumers, e.bytes, r.budget, r.sharedUsed()) {
			if g, ok := mu.mm.budget.TryReserveUnder(e.bytes, mu.mm.resLimit); ok {
				e.bt = newBuildTable(rows, br.cols)
				e.grant = g
				return
			}
		}
		e.sp, e.err = mu.mm.spill(env.evalCtx(), mu, rows, br.cols, e.bytes)
	})
	if built {
		su.misses.Add(1)
		r.settle(key, e, consumers)
	} else {
		su.hits.Add(1)
		su.saved.Add(e.rows)
	}
	switch {
	case e.err != nil:
		return buildRes{}, false, nil // degraded to recompute: build locally
	case e.sp != nil:
		return buildRes{sp: e.sp}, true, nil
	default:
		return buildRes{bt: e.bt}, true, nil
	}
}

// sharedUsed returns the retained-entry footprint under the registry lock.
func (r *SharedRegistry) sharedUsed() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.used
}

// settle records a freshly built entry's fate. For legacy (no memory
// budget) entries it applies the reuse-vs-recompute retention gate; for
// budget-admitted entries it charges the share budget; for spilled or
// failed entries it counts the degradation, dropping failed ones so later
// consumers fall back to local builds.
func (r *SharedRegistry) settle(key sharedKey, e *sharedEntry, consumers int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.entries[key] != e {
		// Released or superseded while building. The requester still uses
		// the result this term; the grant (if any) is returned now, the
		// brief accounting optimism ending with the term.
		e.grant.Release()
		return
	}
	switch {
	case e.err != nil:
		delete(r.entries, key)
		r.evicted++
		return
	case e.sp != nil:
		r.evictedToSpill++
		return
	}
	if peak := r.used + e.bytes; peak > r.bytesPeak {
		r.bytesPeak = peak
	}
	if e.grant == nil && !cost.ShouldShare(consumers, e.bytes, r.budget, r.used) {
		delete(r.entries, key)
		r.evicted++
		return
	}
	e.charged = true
	r.used += e.bytes
}

// releaseComp retires one Comp's interest in its hinted operands; operands
// whose last consumer releases drop their entries immediately, so transient
// tables live no longer than their final reader.
func (r *SharedRegistry) releaseComp(comp string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, op := range r.hints.ByComp[comp] {
		n, ok := r.remaining[op]
		if !ok {
			continue
		}
		n--
		r.remaining[op] = n
		if n <= 0 {
			r.dropOp(op)
		}
	}
}

// bumpVersion advances a view's install version, invalidating (and
// dropping) every entry built on the superseded delta or state.
func (r *SharedRegistry) bumpVersion(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.versions[name]++
	nv := r.versions[name]
	for key, e := range r.entries {
		if key.op.View == name && key.op.Version < nv {
			if e.charged {
				r.used -= e.bytes
			}
			e.grant.Release()
			delete(r.entries, key)
		}
	}
}

// dropOp removes every entry of one operand (any key-column list). Callers
// hold r.mu.
func (r *SharedRegistry) dropOp(op SharedOperand) {
	for key, e := range r.entries {
		if key.op == op {
			if e.charged {
				r.used -= e.bytes
			}
			e.grant.Release()
			delete(r.entries, key)
		}
	}
}
