package core

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/cost"
	"repro/internal/memory"
	"repro/internal/relation"
)

// This file is the window-wide shared-computation layer: a registry of
// transiently materialized build-side hash tables shared across the Comp
// expressions of one update window. The per-Compute buildCache shares builds across
// the 2^r − 1 terms of *one* Compute; the registry extends the same idea
// across *views* — sibling Comps that scan the same operand (the state or
// pending delta of one view, at one point of the strategy) hash it once and
// every later consumer probes the same physical table. Beyond operands, the
// registry also retains planner-elected *join intermediates*: the raw
// equi-join of two quiescent views, computed once and probed by every
// consuming Comp's composite join step (see pair.go and planTerm).
//
// Correctness rests on epoch versioning: an operand's content is stable
// between installs (conditions C5/C8 put every Comp of V before any reader
// of δV, and a view's state changes only at Inst(V)), so entries are keyed
// by (view, delta?, install-version) — intermediates by both views'
// versions — and the version counters bump on every Install. The
// scheduler's conflict ordering already serializes each Comp against the
// installs of the views it reads, in every execution mode, so a consumer
// always observes the version its planner-computed hints predicted.
//
// The work metric is untouched by construction: plans fix OperandTuples
// from cardinalities before any table is served (see termPlan), so shared
// results change what the machine does, never what the metric counts.
// SharedHits/SharedTuplesSaved report the physical scans elided.
//
// The share-vs-recompute gate is observation-tuned when a cost.ShareTuner
// is attached (SetShareTuner): the registry records, per entry, how many
// hinted consumers actually asked and how the built size compared to the
// planner's estimate, and feeds both back at detach. Repeated windows
// therefore converge on the right sharing set even when estimates are off.

// SharedOperand identifies one shareable operand: a view's pending delta or
// materialized state, at a specific install version (the number of
// Inst(View) expressions executed before the read).
type SharedOperand struct {
	View    string
	Delta   bool
	Version int
}

// InterSpec identifies one shareable join intermediate: an adjacent pair of
// quiescent views at their install versions, equi-joined on the canonical
// signature Sig (see pairSig). Field-compatible with planner.InterKey by
// construction.
type InterSpec struct {
	ViewA string
	VerA  int
	ViewB string
	VerB  int
	Sig   string
}

// SharingHints is the planner's sharing analysis in executor terms: how
// many Comp expressions of the window read each operand, and which operands
// each Comp (by canonical key) reads — the registry's refcount seed and
// release schedule. Hints may overcount (a Comp elided by SkipEmptyDeltas,
// or served by the indexed path, never asks); releases reconcile that.
// Jointly-optimized plans additionally hint elected join intermediates
// (Inter maps) and carry the planner's row estimates (Est maps) so the
// registry can report estimated-vs-observed drift to the share tuner.
type SharingHints struct {
	// Consumers maps each operand to the number of Comps that read it.
	Consumers map[SharedOperand]int
	// ByComp maps a Comp's canonical key (strategy.Expr.Key()) to the
	// operands its terms read.
	ByComp map[string][]SharedOperand
	// InterConsumers and InterByComp mirror Consumers/ByComp for elected
	// join intermediates (nil for operand-only hints).
	InterConsumers map[InterSpec]int
	InterByComp    map[string][]InterSpec
	// EstRows and InterEstRows carry the planner's row estimates (nil when
	// the plan was derived without statistics).
	EstRows      map[SharedOperand]int64
	InterEstRows map[InterSpec]int64
}

// CompKey renders the canonical key of Comp(view, over), byte-identical to
// strategy.Comp.Key() so planner hints and executor lookups agree.
func CompKey(view string, over []string) string {
	sorted := append([]string(nil), over...)
	sort.Strings(sorted)
	return "C:" + view + ":" + strings.Join(sorted, ",")
}

// DefaultSharedBudgetBytes bounds transient materialization when the caller
// does not configure Options.SharedBudgetBytes. Exported so the facade's
// sharing-aware planner prices candidates against the same budget the
// registry will enforce.
const DefaultSharedBudgetBytes = 64 << 20

// defaultSharedBudget is the internal alias the registry uses.
const defaultSharedBudget = DefaultSharedBudgetBytes

// sharedKey identifies one registry entry: the operand plus the canonical
// equi-key column list its hash table is built on.
type sharedKey struct {
	op   SharedOperand
	cols string
}

// sharedEntry is one transiently materialized build table: resident (bt,
// with a budget grant when a window memory budget is attached), spilled to
// disk (sp — the evict-to-spill fallback, probed partition-wise by every
// consumer), or failed (err — the evict-to-recompute fallback; consumers
// build locally). The fields are published through once; the bookkeeping
// fields (rows, bytes set inside once; charged under the registry mutex)
// feed budget accounting.
type sharedEntry struct {
	once    sync.Once
	bt      *buildTable
	sp      *spilledBuild
	err     error
	grant   *memory.Grant
	rows    int64
	bytes   int64
	charged bool
}

// interEntry is one transiently materialized join intermediate: the
// composite rows of ViewA ⋈ ViewB, retained between consumers when the
// gate and the budgets admit them. Unlike sharedEntry it stores rows, not a
// hash table — each Compute hashes them on its own probe columns through
// the per-Compute build cache — and it uses a mutex rather than sync.Once
// so a budget-refused build can serve its requester and drop (later
// consumers rebuild). It implements source so buildKey/buildCache identity
// and saved-tuple accounting work unchanged: Cardinality is the |A|+|B|
// operand scan a reuse elides.
type interEntry struct {
	spec      InterSpec
	srcTuples int64 // |A| + |B| at entry creation

	mu       sync.Mutex
	rows     []prow // non-nil only while retained
	rowCount int64
	bytes    int64
	charged  bool
	grant    *memory.Grant
}

func (e *interEntry) Cardinality() int64 { return e.srcTuples }

// Scan must never run: intermediates are materialized through the registry
// (resolveBuild's pair branch), never scanned as plain operands, and the
// parallel engine's scan pre-warm skips them.
func (e *interEntry) Scan(func(relation.Tuple, int64) bool) {
	panic("core: interEntry scanned as a plain operand")
}

// SharedEntryStats reports one registry entry's planned-vs-observed life
// for EXPLAIN SHARING.
type SharedEntryStats struct {
	// Name renders the entry: "δV v0", "V v1" or "A⋈B v0/v0" — matching
	// the planner's elected-share names so estimates and observations join.
	Name string
	// Kind is "operand" or "intermediate".
	Kind string
	// Consumers is the planner-hinted consumer count.
	Consumers int
	// Requests counts consumers that actually asked; Hits counts requests
	// served from a retained result.
	Requests, Hits int64
	// Rows and Bytes describe the built result (0 if never built).
	Rows, Bytes int64
	// EstRows is the planner's row estimate (0 without statistics).
	EstRows int64
	// Fate is the entry's final disposition: "retained", "evicted",
	// "spilled", "transient" (served but not kept), "superseded" or
	// "released".
	Fate string
}

// shareObs accumulates one entry's observations for the whole window,
// surviving entry eviction and recreation.
type shareObs struct {
	name      string
	kind      string
	hinted    int
	estRows   int64
	requests  int64
	hits      int64
	builtRows int64
	bytes     int64
	fate      string
}

func (o *shareObs) stats() SharedEntryStats {
	return SharedEntryStats{
		Name: o.name, Kind: o.kind, Consumers: o.hinted,
		Requests: o.requests, Hits: o.hits,
		Rows: o.builtRows, Bytes: o.bytes, EstRows: o.estRows, Fate: o.fate,
	}
}

// SharedRegistry is the window-wide shared-result store. One registry is
// attached to a warehouse for the duration of one update window (see
// AttachSharing) and detached — reporting its footprint — at the end.
// Entries hold refcounts seeded from the planner's hints and are dropped
// eagerly when their last hinted consumer releases, when their view's
// version advances, or when retention would exceed the byte budget.
type SharedRegistry struct {
	mu             sync.Mutex
	budget         int64
	tuner          *cost.ShareTuner
	hints          *SharingHints
	versions       map[string]int        // installs executed per view
	remaining      map[SharedOperand]int // hinted consumers not yet released
	interRemaining map[InterSpec]int
	entries        map[sharedKey]*sharedEntry
	inters         map[InterSpec]*interEntry
	opObs          map[SharedOperand]*shareObs
	interObs       map[InterSpec]*shareObs
	used           int64 // bytes of retained resident entries
	bytesPeak      int64
	created        int
	intersBuilt    int
	evicted        int
	evictedToSpill int
}

// SharedStats summarizes a detached registry for reporting.
type SharedStats struct {
	// BytesPeak is the high-water transient footprint, counting entries
	// that were built but not retained.
	BytesPeak int64
	// Entries is the number of shared operand tables materialized.
	Entries int
	// Inters is the number of shared join intermediates materialized.
	Inters int
	// Evicted counts tables dropped by the budget gate rather than by
	// normal end-of-life release — the evict-to-recompute fallback: every
	// later consumer rebuilds locally.
	Evicted int
	// EvictedToSpill counts over-budget tables that degraded to shared
	// spill files instead of being dropped (only with a window memory
	// budget attached). Spilling is tried before recompute: consumers
	// re-read partitions, which is cheaper than rebuilding per consumer.
	EvictedToSpill int
	// Detail lists every hinted entry's planned-vs-observed life, sorted
	// by name.
	Detail []SharedEntryStats
}

// SetShareTuner attaches (or clears) the observation-tuned share gate.
// Windows executed after attachment gate retention through the tuner and
// feed their observations back at detach. Clones share the pointer.
func (w *Warehouse) SetShareTuner(t *cost.ShareTuner) { w.tuner = t }

// ShareTuner returns the attached tuner (nil for the static gate).
func (w *Warehouse) ShareTuner() *cost.ShareTuner { return w.tuner }

// SetPlannedSharing records jointly-optimized sharing hints for the coming
// window; AttachSharing prefers them over caller-supplied analysis. Pass
// nil to clear. Clones inherit the pointer, so planning on the original and
// executing on a clone works.
func (w *Warehouse) SetPlannedSharing(h *SharingHints) { w.plannedSharing = h }

// PlannedSharing returns the recorded jointly-optimized hints, if any.
func (w *Warehouse) PlannedSharing() *SharingHints { return w.plannedSharing }

// AttachSharing installs a shared-computation registry on the warehouse for
// the coming window, seeded with the planner's hints. It reports false —
// and attaches nothing — when sharing is disabled by options, a registry is
// already attached, or there are no hints. Not safe to call while
// expressions execute; callers attach before the window's first step.
func (w *Warehouse) AttachSharing(h *SharingHints) bool {
	if !w.opts.ShareComputation || w.shared != nil || h == nil {
		return false
	}
	budget := w.opts.SharedBudgetBytes
	if budget <= 0 {
		budget = defaultSharedBudget
	}
	remaining := make(map[SharedOperand]int, len(h.Consumers))
	for op, n := range h.Consumers {
		remaining[op] = n
	}
	interRemaining := make(map[InterSpec]int, len(h.InterConsumers))
	for spec, n := range h.InterConsumers {
		interRemaining[spec] = n
	}
	w.shared = &SharedRegistry{
		budget:         budget,
		tuner:          w.tuner,
		hints:          h,
		versions:       make(map[string]int),
		remaining:      remaining,
		interRemaining: interRemaining,
		entries:        make(map[sharedKey]*sharedEntry),
		inters:         make(map[InterSpec]*interEntry),
		opObs:          make(map[SharedOperand]*shareObs),
		interObs:       make(map[InterSpec]*shareObs),
	}
	return true
}

// DetachSharing removes the registry (dropping every entry), feeds its
// observations to the attached share tuner, and returns its stats. Safe to
// call when nothing is attached.
func (w *Warehouse) DetachSharing() SharedStats {
	r := w.shared
	w.shared = nil
	if r == nil {
		return SharedStats{}
	}
	r.mu.Lock()
	for _, e := range r.entries {
		e.grant.Release()
	}
	inters := make([]*interEntry, 0, len(r.inters))
	for _, e := range r.inters {
		inters = append(inters, e)
	}
	st := SharedStats{
		BytesPeak: r.bytesPeak, Entries: r.created, Inters: r.intersBuilt,
		Evicted: r.evicted, EvictedToSpill: r.evictedToSpill,
	}
	obs := make([]*shareObs, 0, len(r.opObs)+len(r.interObs))
	for _, o := range r.opObs {
		obs = append(obs, o)
	}
	for _, o := range r.interObs {
		obs = append(obs, o)
	}
	r.mu.Unlock()
	for _, e := range inters {
		e.mu.Lock()
		e.grant.Release()
		e.grant, e.rows = nil, nil
		e.mu.Unlock()
	}
	for _, o := range obs {
		// Realized reuse is requests beyond the first — independent of
		// whether the budget retained the result, so a gate that refused a
		// genuinely reused entry can learn to flip back.
		reuse := o.requests - 1
		if reuse < 0 {
			reuse = 0
		}
		w.tuner.Observe(o.hinted, reuse, o.estRows, o.builtRows)
		st.Detail = append(st.Detail, o.stats())
	}
	sort.Slice(st.Detail, func(i, j int) bool { return st.Detail[i].Name < st.Detail[j].Name })
	return st
}

// sharedUse is one Compute's handle on the registry: the Comp's canonical
// key (for release) plus per-Compute hit/miss/saved counters feeding
// CompReport.
type sharedUse struct {
	reg    *SharedRegistry
	comp   string
	hits   atomic.Int64
	misses atomic.Int64
	saved  atomic.Int64
}

// fill copies the counters into a CompReport; a nil receiver (no registry
// attached) leaves the report untouched.
func (su *sharedUse) fill(rep *CompReport) {
	if su == nil {
		return
	}
	rep.SharedHits = int(su.hits.Load())
	rep.SharedMisses = int(su.misses.Load())
	rep.SharedTuplesSaved = su.saved.Load()
}

// shouldShare is the registry's retention gate: the attached tuner when one
// is calibrated, the static estimate gate otherwise (ShareTuner's nil and
// uncalibrated receivers defer to the static gate themselves).
func (r *SharedRegistry) shouldShare(consumers int, bytes, used int64) bool {
	return r.tuner.ShouldShare(consumers, bytes, r.budget, used)
}

// operandName renders an operand in the planner's elected-share notation.
func operandName(op SharedOperand) string {
	name := op.View
	if op.Delta {
		name = "δ" + name
	}
	return fmt.Sprintf("%s v%d", name, op.Version)
}

// interName renders an intermediate in the planner's notation.
func interName(spec InterSpec) string {
	return fmt.Sprintf("%s⋈%s v%d/v%d", spec.ViewA, spec.ViewB, spec.VerA, spec.VerB)
}

// opObsFor returns (creating if needed) the window-long observation record
// of one operand. Callers hold r.mu.
func (r *SharedRegistry) opObsFor(op SharedOperand, consumers int) *shareObs {
	o := r.opObs[op]
	if o == nil {
		o = &shareObs{name: operandName(op), kind: "operand", hinted: consumers, fate: "transient"}
		if r.hints != nil {
			o.estRows = r.hints.EstRows[op]
		}
		r.opObs[op] = o
	}
	return o
}

// interObsFor is opObsFor for intermediates. Callers hold r.mu.
func (r *SharedRegistry) interObsFor(spec InterSpec) *shareObs {
	o := r.interObs[spec]
	if o == nil {
		o = &shareObs{name: interName(spec), kind: "intermediate", fate: "transient"}
		if r.hints != nil {
			o.hinted = r.hints.InterConsumers[spec]
			o.estRows = r.hints.InterEstRows[spec]
		}
		r.interObs[spec] = o
	}
	return o
}

// acquire serves a build request from the registry. The bool reports
// whether the registry served it: false when the operand is not worth
// sharing (fewer than two outstanding consumers and no existing entry) or
// when the entry degraded to recompute — the caller then builds locally.
// The first requester builds (recording the miss); everyone else reuses
// (recording the hit and the operand scan saved).
//
// Admission is budget-aware when a window memory budget is attached
// (satellite of the -share-budget-mb cliff): an over-budget entry degrades
// per-entry — first to shared spill files every consumer probes
// partition-wise, and only if spilling itself fails to recompute — instead
// of being refused outright. Without a memory budget the legacy gate
// applies: the table is built resident and retention alone is gated.
func (r *SharedRegistry) acquire(env *evalEnv, su *sharedUse, br buildReq) (buildRes, bool, error) {
	r.mu.Lock()
	op := SharedOperand{View: br.view, Delta: br.isDelta, Version: r.versions[br.view]}
	consumers := r.remaining[op]
	key := sharedKey{op: op, cols: colsKey(br.cols)}
	e := r.entries[key]
	obs := r.opObsFor(op, consumers)
	obs.requests++
	if e == nil {
		if consumers < 2 {
			r.mu.Unlock()
			return buildRes{}, false, nil
		}
		e = &sharedEntry{}
		r.entries[key] = e
		r.created++
	}
	r.mu.Unlock()

	built := false
	e.once.Do(func() {
		built = true
		rows := scanSource(env, br.src)
		e.rows = br.src.Cardinality()
		width := 1
		if len(rows) > 0 {
			width = len(rows[0].row)
		}
		e.bytes = cost.EstimateMaterializedBytes(e.rows, width)
		mu := env.memUse()
		if mu == nil {
			e.bt = newBuildTable(rows, br.cols)
			return
		}
		// Unified-budget admission: resident only when both the share gate
		// and the window budget admit it; spill otherwise.
		if r.shouldShare(consumers, e.bytes, r.sharedUsed()) {
			if g, ok := mu.mm.budget.TryReserveUnder(e.bytes, mu.mm.resLimit); ok {
				e.bt = newBuildTable(rows, br.cols)
				e.grant = g
				return
			}
		}
		e.sp, e.err = mu.mm.spill(env.evalCtx(), mu, rows, br.cols, e.bytes)
	})
	if built {
		su.misses.Add(1)
		r.settle(key, e, consumers)
	} else {
		su.hits.Add(1)
		su.saved.Add(e.rows)
		r.mu.Lock()
		obs.hits++
		r.mu.Unlock()
	}
	switch {
	case e.err != nil:
		return buildRes{}, false, nil // degraded to recompute: build locally
	case e.sp != nil:
		return buildRes{sp: e.sp}, true, nil
	default:
		return buildRes{bt: e.bt}, true, nil
	}
}

// sharedUsed returns the retained-entry footprint under the registry lock.
func (r *SharedRegistry) sharedUsed() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.used
}

// settle records a freshly built entry's fate. For legacy (no memory
// budget) entries it applies the reuse-vs-recompute retention gate; for
// budget-admitted entries it charges the share budget; for spilled or
// failed entries it counts the degradation, dropping failed ones so later
// consumers fall back to local builds.
func (r *SharedRegistry) settle(key sharedKey, e *sharedEntry, consumers int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	obs := r.opObsFor(key.op, consumers)
	obs.builtRows, obs.bytes = e.rows, e.bytes
	if r.entries[key] != e {
		// Released or superseded while building. The requester still uses
		// the result this term; the grant (if any) is returned now, the
		// brief accounting optimism ending with the term.
		e.grant.Release()
		return
	}
	switch {
	case e.err != nil:
		delete(r.entries, key)
		r.evicted++
		obs.fate = "evicted"
		return
	case e.sp != nil:
		r.evictedToSpill++
		obs.fate = "spilled"
		return
	}
	if peak := r.used + e.bytes; peak > r.bytesPeak {
		r.bytesPeak = peak
	}
	if e.grant == nil && !r.shouldShare(consumers, e.bytes, r.used) {
		delete(r.entries, key)
		r.evicted++
		obs.fate = "evicted"
		return
	}
	e.charged = true
	r.used += e.bytes
	obs.fate = "retained"
}

// interFor matches a runtime pair (views, signature, current versions)
// against the hinted intermediates of one Comp, returning the registry's
// entry — created on first ask — when the pair is elected. planTerm calls
// it while planning a composite join step; a false return means the pair is
// not elected (or its versions drifted under a fallback strategy) and the
// term joins the operands separately.
func (r *SharedRegistry) interFor(comp, viewA, viewB, sig string, srcA, srcB source) (*interEntry, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.hints == nil || len(r.hints.InterByComp) == 0 {
		return nil, false
	}
	for _, spec := range r.hints.InterByComp[comp] {
		if spec.ViewA != viewA || spec.ViewB != viewB || spec.Sig != sig {
			continue
		}
		if spec.VerA != r.versions[viewA] || spec.VerB != r.versions[viewB] {
			continue
		}
		e := r.inters[spec]
		if e == nil {
			if r.interRemaining[spec] < 2 {
				return nil, false
			}
			e = &interEntry{spec: spec, srcTuples: srcA.Cardinality() + srcB.Cardinality()}
			r.inters[spec] = e
		}
		return e, true
	}
	return nil, false
}

// acquireInter returns a hinted intermediate's composite rows, computing
// them on first ask. Retention is gated like operand entries — the tuned
// share gate against the shared byte budget, plus a window memory-budget
// reservation when one is attached; a refused build serves its requester
// and drops (rebuild per consumer), so correctness never depends on
// admission. Lock order is e.mu → r.mu, the opposite of the drop paths,
// which collect entries under r.mu and lock e.mu only after releasing it.
func (r *SharedRegistry) acquireInter(env *evalEnv, su *sharedUse, req *interReq) ([]prow, error) {
	e := req.entry
	e.mu.Lock()
	defer e.mu.Unlock()
	r.mu.Lock()
	obs := r.interObsFor(e.spec)
	obs.requests++
	consumers := r.interRemaining[e.spec]
	r.mu.Unlock()
	if e.rows != nil {
		su.hits.Add(1)
		su.saved.Add(e.srcTuples)
		r.mu.Lock()
		obs.hits++
		r.mu.Unlock()
		return e.rows, nil
	}
	rowsA := scanSource(env, req.srcA)
	rowsB := scanSource(env, req.srcB)
	rows := joinRows(rowsA, rowsB, req.colsA, req.colsB, req.widthA, req.widthB)
	su.misses.Add(1)
	e.rowCount = int64(len(rows))
	e.bytes = cost.EstimateMaterializedBytes(e.rowCount, req.widthA+req.widthB)

	retain := r.shouldShare(consumers, e.bytes, r.sharedUsed())
	var grant *memory.Grant
	if retain {
		if mu := env.memUse(); mu != nil {
			g, ok := mu.mm.budget.TryReserveUnder(e.bytes, mu.mm.resLimit)
			if !ok {
				retain = false
			} else {
				grant = g
			}
		}
	}
	r.mu.Lock()
	obs.builtRows, obs.bytes = e.rowCount, e.bytes
	r.intersBuilt++
	if peak := r.used + e.bytes; peak > r.bytesPeak {
		r.bytesPeak = peak
	}
	if retain && r.inters[e.spec] == e {
		e.rows = rows
		e.grant = grant
		e.charged = true
		r.used += e.bytes
		obs.fate = "retained"
	} else {
		// Serve-and-drop: the requester keeps these rows for its Compute,
		// the registry keeps nothing.
		grant.Release()
		r.evicted++
		obs.fate = "evicted"
		delete(r.inters, e.spec)
	}
	r.mu.Unlock()
	return rows, nil
}

// releaseComp retires one Comp's interest in its hinted operands and
// intermediates; entries whose last consumer releases drop immediately, so
// transient results live no longer than their final reader.
func (r *SharedRegistry) releaseComp(comp string) {
	r.mu.Lock()
	var drop []*interEntry
	for _, op := range r.hints.ByComp[comp] {
		n, ok := r.remaining[op]
		if !ok {
			continue
		}
		n--
		r.remaining[op] = n
		if n <= 0 {
			r.dropOp(op)
		}
	}
	if r.hints.InterByComp != nil {
		for _, spec := range r.hints.InterByComp[comp] {
			n, ok := r.interRemaining[spec]
			if !ok {
				continue
			}
			n--
			r.interRemaining[spec] = n
			if n <= 0 {
				if e := r.dropInter(spec, "released"); e != nil {
					drop = append(drop, e)
				}
			}
		}
	}
	r.mu.Unlock()
	for _, e := range drop {
		e.release()
	}
}

// bumpVersion advances a view's install version, invalidating (and
// dropping) every entry — operand or intermediate — built on the
// superseded delta or state.
func (r *SharedRegistry) bumpVersion(name string) {
	r.mu.Lock()
	r.versions[name]++
	nv := r.versions[name]
	for key, e := range r.entries {
		if key.op.View == name && key.op.Version < nv {
			if e.charged {
				r.used -= e.bytes
			}
			e.grant.Release()
			delete(r.entries, key)
			if o := r.opObs[key.op]; o != nil {
				o.fate = "superseded"
			}
		}
	}
	var drop []*interEntry
	for spec := range r.inters {
		if (spec.ViewA == name && spec.VerA < nv) || (spec.ViewB == name && spec.VerB < nv) {
			if e := r.dropInter(spec, "superseded"); e != nil {
				drop = append(drop, e)
			}
		}
	}
	r.mu.Unlock()
	for _, e := range drop {
		e.release()
	}
}

// dropOp removes every entry of one operand (any key-column list). Callers
// hold r.mu.
func (r *SharedRegistry) dropOp(op SharedOperand) {
	for key, e := range r.entries {
		if key.op == op {
			if e.charged {
				r.used -= e.bytes
			}
			e.grant.Release()
			delete(r.entries, key)
			if o := r.opObs[op]; o != nil && o.fate == "retained" {
				o.fate = "released"
			}
		}
	}
}

// dropInter uncharges and unmaps one intermediate, returning the entry
// whose rows/grant the caller must release *after* dropping r.mu (lock
// order: entry mutexes are taken only outside the registry lock). Callers
// hold r.mu.
func (r *SharedRegistry) dropInter(spec InterSpec, fate string) *interEntry {
	e := r.inters[spec]
	if e == nil {
		return nil
	}
	if e.charged {
		r.used -= e.bytes
	}
	delete(r.inters, spec)
	if o := r.interObs[spec]; o != nil && o.fate == "retained" {
		o.fate = fate
	}
	return e
}

// release frees a dropped intermediate's retained state. Must be called
// without holding the registry lock.
func (e *interEntry) release() {
	e.mu.Lock()
	e.grant.Release()
	e.grant, e.rows = nil, nil
	e.mu.Unlock()
}
