// Package core implements the warehouse runtime: the catalog of materialized
// views (base and derived), the compute/install operations that strategies
// sequence, full recomputation for verification, and the work accounting
// that backs the paper's experiments.
//
// The two primitives match the paper's model exactly:
//
//   - Compute(V, Y) evaluates the maintenance expression Comp(V, Y): the
//     2^r − 1 delta terms (see package maintain) over the *current* database
//     state, accumulating the result into V's pending delta. Because
//     installs change view states between compute expressions, the same
//     Comp costs different amounts at different points of a strategy —
//     this is the heart of the total-work minimization problem.
//
//   - Install(V) folds V's pending delta into its materialized state.
package core

import (
	"fmt"
	"sync"

	"repro/internal/algebra"
	"repro/internal/cost"
	"repro/internal/delta"
	"repro/internal/relation"
	"repro/internal/storage"
)

// Options configure warehouse execution behaviour.
type Options struct {
	// SkipEmptyDeltas, when set, elides evaluation (and work accounting) of
	// compute terms whose delta operands are all empty, the footnote-5
	// extension of the paper. Off by default to match the measured system.
	SkipEmptyDeltas bool
	// UseIndexes, when set, makes term evaluation probe maintained hash
	// indexes on state operands instead of scanning them to build
	// per-term hash tables (the storage-representation lever of the
	// paper's related work, [JNSS97]/[KR98]). Reported work then counts
	// index probes, deliberately deviating from the linear work metric's
	// scan-everything model; off by default so measurements match the
	// metric the paper validates.
	UseIndexes bool
	// ParallelTerms enables the intra-Compute parallel engine: the 2^r − 1
	// maintenance terms of one Comp evaluate concurrently, each join step's
	// probe rows are dispatched in fixed-size morsels to a bounded worker
	// pool, build-side hash tables are shared across terms through a
	// per-Compute cache, and term output merges into the view's pending
	// state through sharded, mutex-protected sinks. The produced bag of
	// change rows — and the reported OperandTuples work — is identical to
	// sequential evaluation; only wall-clock and physical scans differ.
	// Off by default: the sequential engine is the paper's measured system.
	ParallelTerms bool
	// Workers bounds the warehouse-wide worker budget for ParallelTerms
	// (0 = GOMAXPROCS). The pool is shared by every concurrent Compute, so
	// term- and morsel-level parallelism composes with DAG-level strategy
	// scheduling without multiplying goroutines: the submitting goroutine
	// counts as one worker and at most Workers−1 extra goroutines run at
	// any moment.
	Workers int
	// MorselSize overrides the number of probe rows per parallel morsel
	// (0 = DefaultMorselSize). Mainly a test/tuning knob.
	MorselSize int
	// ShareComputation enables the window-wide shared-computation layer:
	// with a registry attached (AttachSharing), operands read by several
	// Comp expressions of one window are hashed once and transiently
	// materialized for every consumer. Like the build cache, sharing
	// changes physical work only — OperandTuples is planned from
	// cardinalities and never sees it. Off by default.
	ShareComputation bool
	// SharedBudgetBytes bounds the transiently materialized shared results
	// (0 = a 64 MiB default). Entries that would exceed the budget are
	// computed for their requester but not retained — or, with a window
	// memory budget attached, degraded per-entry to spill files and only
	// then to recompute.
	SharedBudgetBytes int64
	// MemoryBudgetBytes bounds the window's bulk build state (0 = off,
	// i.e. unbounded). With a budget attached for a window (AttachMemory),
	// every build-side hash table — term-local, per-Compute cached, and
	// shared-registry retained — reserves against it, and builds that do
	// not fit spill to CRC-framed temp files probed partition-wise
	// (Grace-style). Results, digests and the linear work metric are
	// identical at any budget; only wall-clock, bytes moved and the spill
	// counters differ. Ignored under UseIndexes (see AttachMemory).
	MemoryBudgetBytes int64
}

// View is one materialized warehouse view.
type View struct {
	name string
	def  *algebra.CQ // nil for base views

	table *storage.Table    // base views and SPJ derived views
	agg   *storage.AggTable // aggregate derived views

	// mu guards lazy initialization/finalization of the pending state, so
	// that parallel strategies (package parallel) may read one view's delta
	// from several concurrent compute expressions.
	mu              sync.Mutex
	pendingDelta    *delta.Delta         // base + SPJ: accumulated changes
	pendingPartials *delta.GroupPartials // aggregate: accumulated group partials
	finalized       *delta.Delta         // aggregate: cached tuple delta once read

	// deferred marks the view's maintenance policy (see SetDeferred);
	// stale records that a window skipped it.
	deferred bool
	stale    bool
}

// Name returns the view's name.
func (v *View) Name() string { return v.name }

// Def returns the view definition, or nil for a base view.
func (v *View) Def() *algebra.CQ { return v.def }

// IsBase reports whether the view is defined over remote sources.
func (v *View) IsBase() bool { return v.def == nil }

// IsAggregate reports whether the view is a summary (grouped) view.
func (v *View) IsAggregate() bool { return v.agg != nil }

// Schema returns the view's output schema.
func (v *View) Schema() relation.Schema {
	if v.agg != nil {
		return v.agg.Schema()
	}
	return v.table.Schema()
}

// Cardinality returns |V|: the current number of rows.
func (v *View) Cardinality() int64 {
	if v.agg != nil {
		return v.agg.Cardinality()
	}
	return v.table.Cardinality()
}

// Scan iterates the view's current rows with multiplicities.
func (v *View) Scan(fn func(relation.Tuple, int64) bool) {
	if v.agg != nil {
		v.agg.Scan(fn)
		return
	}
	v.table.Scan(fn)
}

// SortedRows returns the current rows sorted, for deterministic inspection.
func (v *View) SortedRows() []storage.CountedTuple {
	if v.agg != nil {
		return v.agg.SortedRows()
	}
	return v.table.SortedRows()
}

// Table exposes the backing counted table of a base or SPJ view (nil for
// aggregate views). Intended for snapshot/restore machinery; mutating the
// table directly bypasses the strategy framework.
func (v *View) Table() *storage.Table { return v.table }

// AggStore exposes the backing aggregate table of a summary view (nil
// otherwise). Intended for snapshot/restore machinery.
func (v *View) AggStore() *storage.AggTable { return v.agg }

// HasPending reports whether uninstalled changes exist for the view.
func (v *View) HasPending() bool {
	if v.pendingDelta != nil && !v.pendingDelta.IsEmpty() {
		return true
	}
	if v.pendingPartials != nil && !v.pendingPartials.IsEmpty() {
		return true
	}
	return false
}

// Warehouse is the catalog of views plus their materialized state.
type Warehouse struct {
	views map[string]*View
	order []string // definition order; children always precede parents
	opts  Options
	pool  *workerPool // shared budget for ParallelTerms (nil when off)
	// shared is the window-wide shared-computation registry, attached for
	// the duration of one update window (AttachSharing/DetachSharing) and
	// nil otherwise. Clones never inherit it: each window attaches its own.
	shared *SharedRegistry
	// mem is the window-wide memory manager (AttachMemory/DetachMemory),
	// nil outside a budgeted window. Like shared, clones never inherit it.
	mem *memManager
	// tuner is the observation-tuned share-vs-recompute gate
	// (SetShareTuner), nil for the static gate. Clones share the pointer:
	// windows executed on clones feed observations into one tuner, which is
	// how repeated windows converge on the right sharing set.
	tuner *cost.ShareTuner
	// plannedSharing carries jointly-optimized sharing hints
	// (SetPlannedSharing) that AttachSharing prefers over analyze-derived
	// ones. Clones share the pointer; the facade clears it after the
	// window it was planned for.
	plannedSharing *SharingHints
	// version counts catalog changes (view definitions). The prepared-plan
	// cache records the version a plan was bound against and discards the
	// plan when it no longer matches, so a plan can never outlive the
	// catalog shape it was resolved in. Clones inherit the version: a
	// window commit that defines no views invalidates nothing.
	version uint64
}

// New creates an empty warehouse.
func New(opts Options) *Warehouse {
	w := &Warehouse{views: make(map[string]*View)}
	w.SetOptions(opts)
	return w
}

// Options returns the warehouse's execution options.
func (w *Warehouse) Options() Options { return w.opts }

// SetOptions replaces the execution options and resizes the intra-Compute
// worker pool accordingly. Not safe to call while strategies execute.
func (w *Warehouse) SetOptions(o Options) {
	w.opts = o
	if o.ParallelTerms {
		w.pool = newWorkerPool(o.Workers)
	} else {
		w.pool = nil
	}
}

// DefineBase registers a base view with the given schema.
func (w *Warehouse) DefineBase(name string, schema relation.Schema) error {
	if err := w.checkNewName(name); err != nil {
		return err
	}
	if len(schema) == 0 {
		return fmt.Errorf("core: base view %q has empty schema", name)
	}
	w.views[name] = &View{name: name, table: storage.NewTable(schema)}
	w.order = append(w.order, name)
	w.version++
	return nil
}

// DefineDerived registers a derived view with the given definition. Every
// referenced view must already be defined and its recorded schema must match
// the catalog; consequently the definition order is always a topological
// order of the VDAG.
func (w *Warehouse) DefineDerived(name string, def *algebra.CQ) error {
	if err := w.checkNewName(name); err != nil {
		return err
	}
	if def == nil {
		return fmt.Errorf("core: derived view %q has nil definition", name)
	}
	if err := def.Validate(); err != nil {
		return fmt.Errorf("core: view %q: %w", name, err)
	}
	for _, r := range def.Refs {
		child, ok := w.views[r.View]
		if !ok {
			return fmt.Errorf("core: view %q references undefined view %q", name, r.View)
		}
		if !child.Schema().Equal(r.Schema) {
			return fmt.Errorf("core: view %q ref %q: recorded schema [%s] does not match catalog schema [%s]",
				name, r.Alias, r.Schema, child.Schema())
		}
	}
	v := &View{name: name, def: def}
	if def.IsAggregate() {
		v.agg = storage.NewAggTable(def.GroupSchema(), def.AggSpecs(), def.AggNames())
	} else {
		v.table = storage.NewTable(def.OutputSchema())
	}
	w.views[name] = v
	w.order = append(w.order, name)
	w.version++
	return nil
}

// CatalogVersion returns the monotonic count of catalog changes. Two
// warehouses (e.g. an epoch snapshot and its successor) answer queries
// with interchangeable plans iff their versions are equal and one descends
// from the other by cloning.
func (w *Warehouse) CatalogVersion() uint64 { return w.version }

func (w *Warehouse) checkNewName(name string) error {
	if name == "" {
		return fmt.Errorf("core: empty view name")
	}
	if _, ok := w.views[name]; ok {
		return fmt.Errorf("core: view %q already defined", name)
	}
	return nil
}

// View returns the named view, or nil.
func (w *Warehouse) View(name string) *View { return w.views[name] }

// MustView returns the named view and panics if absent.
func (w *Warehouse) MustView(name string) *View {
	v := w.views[name]
	if v == nil {
		panic(fmt.Sprintf("core: unknown view %q", name))
	}
	return v
}

// ViewNames returns all view names in definition order.
func (w *Warehouse) ViewNames() []string { return append([]string(nil), w.order...) }

// Children returns the distinct views the named view is defined over
// (empty for base views).
func (w *Warehouse) Children(name string) []string {
	v := w.MustView(name)
	if v.def == nil {
		return nil
	}
	return v.def.BaseViews()
}

// Parents returns the views defined (directly) over the named view.
func (w *Warehouse) Parents(name string) []string {
	var out []string
	for _, n := range w.order {
		v := w.views[n]
		if v.def == nil {
			continue
		}
		for _, child := range v.def.BaseViews() {
			if child == name {
				out = append(out, n)
				break
			}
		}
	}
	return out
}

// LoadBase bulk-inserts rows into a base view (initial population).
func (w *Warehouse) LoadBase(name string, rows []relation.Tuple) error {
	v := w.views[name]
	if v == nil {
		return fmt.Errorf("core: unknown view %q", name)
	}
	if !v.IsBase() {
		return fmt.Errorf("core: LoadBase on derived view %q", name)
	}
	for _, r := range rows {
		if len(r) != len(v.table.Schema()) {
			return fmt.Errorf("core: row arity %d does not match %q schema width %d", len(r), name, len(v.table.Schema()))
		}
		v.table.Insert(r, 1)
	}
	return nil
}

// StageDelta records an arriving change batch for a base view; batches
// staged before the update window merge together.
func (w *Warehouse) StageDelta(name string, d *delta.Delta) error {
	v := w.views[name]
	if v == nil {
		return fmt.Errorf("core: unknown view %q", name)
	}
	if !v.IsBase() {
		return fmt.Errorf("core: StageDelta on derived view %q; derived deltas come from Compute", name)
	}
	if !d.Schema().Equal(v.table.Schema()) {
		return fmt.Errorf("core: staged delta schema does not match %q", name)
	}
	if v.pendingDelta == nil {
		v.pendingDelta = delta.New(v.table.Schema())
	}
	v.pendingDelta.Merge(d)
	return nil
}

// DeltaOf returns the view's pending change set as plus/minus tuples. For an
// aggregate view this finalizes the accumulated group partials against the
// pre-install state; after finalization, further Compute calls on the view
// are rejected (a correct strategy never needs them: conditions C5/C8 put
// every Comp of V before any reader of δV).
func (w *Warehouse) DeltaOf(name string) (*delta.Delta, error) {
	v := w.views[name]
	if v == nil {
		return nil, fmt.Errorf("core: unknown view %q", name)
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.agg != nil {
		if v.finalized == nil {
			if v.pendingPartials == nil {
				v.pendingPartials = delta.NewGroupPartials(v.def.GroupSchema(), v.def.AggSpecs())
			}
			d, err := v.agg.FinalizeDelta(v.pendingPartials)
			if err != nil {
				return nil, fmt.Errorf("core: finalizing δ%s: %w", name, err)
			}
			v.finalized = d
		}
		return v.finalized, nil
	}
	if v.pendingDelta == nil {
		v.pendingDelta = delta.New(v.Schema())
	}
	return v.pendingDelta, nil
}

// DeltaSize returns |δV| for the view (0 if nothing is pending).
func (w *Warehouse) DeltaSize(name string) (int64, error) {
	d, err := w.DeltaOf(name)
	if err != nil {
		return 0, err
	}
	return d.Size(), nil
}

// Install folds the view's pending delta into its materialized state and
// clears the pending state. It returns the number of rows installed (|δV|).
func (w *Warehouse) Install(name string) (int64, error) {
	v := w.views[name]
	if v == nil {
		return 0, fmt.Errorf("core: unknown view %q", name)
	}
	d, err := w.DeltaOf(name)
	if err != nil {
		return 0, err
	}
	n := d.Size()
	if v.agg != nil {
		if err := v.agg.Apply(v.pendingPartials); err != nil {
			return 0, fmt.Errorf("core: installing δ%s: %w", name, err)
		}
		v.pendingPartials = nil
		v.finalized = nil
		if w.shared != nil {
			w.shared.bumpVersion(name)
		}
		return n, nil
	}
	if err := v.table.ApplyDelta(d); err != nil {
		return 0, fmt.Errorf("core: installing δ%s: %w", name, err)
	}
	v.pendingDelta = nil
	if w.shared != nil {
		w.shared.bumpVersion(name)
	}
	return n, nil
}

// Clone returns a deep copy of the warehouse: independent stores and pending
// state, shared (immutable) definitions. Executing a strategy on a clone
// leaves the original untouched, which is how the experiments compare many
// strategies from the same start state.
func (w *Warehouse) Clone() *Warehouse {
	out := New(w.opts)
	out.order = append([]string(nil), w.order...)
	out.version = w.version
	out.tuner = w.tuner
	out.plannedSharing = w.plannedSharing
	for name, v := range w.views {
		nv := &View{name: v.name, def: v.def, deferred: v.deferred, stale: v.stale}
		if v.table != nil {
			nv.table = v.table.Clone()
		}
		if v.agg != nil {
			nv.agg = v.agg.Clone()
		}
		if v.pendingDelta != nil {
			nv.pendingDelta = v.pendingDelta.Clone()
		}
		if v.pendingPartials != nil {
			// Partials are cloned by merging into an empty set.
			np := delta.NewGroupPartials(v.pendingPartials.GroupSchema(), v.pendingPartials.Specs())
			np.Merge(v.pendingPartials)
			nv.pendingPartials = np
		}
		if v.finalized != nil {
			nv.finalized = v.finalized.Clone()
		}
		out.views[name] = nv
	}
	return out
}
