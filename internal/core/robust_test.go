package core

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/algebra"
	"repro/internal/delta"
	"repro/internal/relation"
)

// bombExpr is a boolean operator that panics with err once its Eval count
// exceeds after — an injected misbehaving operator for the panic-recovery
// tests. Eval runs concurrently under the parallel engines, hence the
// atomic counter.
type bombExpr struct {
	calls atomic.Int64
	after int64
	err   error
}

func (b *bombExpr) Eval(relation.Tuple) relation.Value {
	if b.calls.Add(1) > b.after {
		panic(b.err)
	}
	return relation.NewBool(true)
}
func (b *bombExpr) Kind() relation.Kind     { return relation.KindBool }
func (b *bombExpr) Columns(dst []int) []int { return dst }
func (b *bombExpr) String() string          { return "bomb()" }

// newBombWarehouse builds base R and derived V = σ_bomb(R), staging nRows
// delta rows so δR drives the maintenance term.
func newBombWarehouse(t *testing.T, opts Options, bomb *bombExpr, nRows int) *Warehouse {
	t.Helper()
	w := New(opts)
	if err := w.DefineBase("R", schemaR); err != nil {
		t.Fatal(err)
	}
	vb := algebra.NewBuilder().From("r", "R", schemaR)
	vb.Where(bomb).SelectCol("r.a").SelectCol("r.b")
	v, err := vb.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := w.DefineDerived("V", v); err != nil {
		t.Fatal(err)
	}
	d := delta.New(schemaR)
	for i := 0; i < nRows; i++ {
		d.Add(intRow(int64(i), int64(i%7)), 1)
	}
	if err := w.StageDelta("R", d); err != nil {
		t.Fatal(err)
	}
	return w
}

func TestParallelTermPanicBecomesError(t *testing.T) {
	boom := errors.New("boom")
	bomb := &bombExpr{err: boom}
	w := newBombWarehouse(t, Options{ParallelTerms: true, Workers: 4}, bomb, 10)
	_, err := w.Compute("V", []string{"R"})
	if err == nil {
		t.Fatal("panicking operator did not fail the Compute")
	}
	if !strings.Contains(err.Error(), "panic") {
		t.Fatalf("error does not mention the panic: %v", err)
	}
	if !errors.Is(err, boom) {
		t.Fatalf("panic value identity lost: %v", err)
	}
}

func TestMorselPanicBecomesError(t *testing.T) {
	boom := errors.New("boom")
	// Enough rows for several morsels; the bomb lets the first morsel's
	// rows through so the panic fires on a pooled morsel goroutine.
	bomb := &bombExpr{err: boom, after: 10}
	w := newBombWarehouse(t, Options{ParallelTerms: true, Workers: 4, MorselSize: 8}, bomb, 200)
	_, err := w.Compute("V", []string{"R"})
	if err == nil {
		t.Fatal("panicking operator did not fail the Compute")
	}
	if !errors.Is(err, boom) {
		t.Fatalf("panic value identity lost: %v", err)
	}
}

func TestComputeCtxCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, par := range []bool{false, true} {
		w := newBombWarehouse(t, Options{ParallelTerms: par, Workers: 2}, &bombExpr{after: 1 << 40}, 10)
		_, err := w.ComputeCtx(ctx, "V", []string{"R"})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("parallel=%v: want context.Canceled, got %v", par, err)
		}
	}
}
