// Package algebra defines the logical form of warehouse view definitions and
// the scalar expression language used inside them.
//
// A view definition is a conjunctive query (CQ): a list of view references
// joined by conjunctive predicates, a projection, and an optional group-by
// with aggregates. This is exactly the SELECT-FROM-WHERE-GROUPBY class the
// paper's warehouse model covers (projection, selection, join, aggregation),
// and it is the class for which the standard incremental maintenance
// expressions of [GL95]/[Qua96] apply.
//
// Scalar expressions are bound: column references carry the index of the
// column in the concatenated, alias-qualified schema of the CQ's references.
// Binding is done once (by the SQL binder or by the programmatic builder) so
// evaluation is allocation-free index lookups.
package algebra

import (
	"fmt"
	"strings"

	"repro/internal/relation"
)

// Expr is a bound scalar expression evaluated against a row of the CQ's
// concatenated reference schema.
type Expr interface {
	// Eval computes the expression over the row.
	Eval(row relation.Tuple) relation.Value
	// Kind is the static result type.
	Kind() relation.Kind
	// Columns appends the indexes of all referenced columns to dst.
	Columns(dst []int) []int
	// String renders the expression for diagnostics.
	String() string
}

// Col references a column by position in the bound row.
type Col struct {
	Index int
	Name  string // qualified name, for display
	Typ   relation.Kind
}

// Eval implements Expr.
func (c *Col) Eval(row relation.Tuple) relation.Value { return row[c.Index] }

// Kind implements Expr.
func (c *Col) Kind() relation.Kind { return c.Typ }

// Columns implements Expr.
func (c *Col) Columns(dst []int) []int { return append(dst, c.Index) }

func (c *Col) String() string { return c.Name }

// Const is a literal value.
type Const struct {
	Value relation.Value
}

// Eval implements Expr.
func (c *Const) Eval(relation.Tuple) relation.Value { return c.Value }

// Kind implements Expr.
func (c *Const) Kind() relation.Kind { return c.Value.Kind() }

// Columns implements Expr.
func (c *Const) Columns(dst []int) []int { return dst }

func (c *Const) String() string {
	if c.Value.Kind() == relation.KindString {
		return "'" + c.Value.String() + "'"
	}
	return c.Value.String()
}

// BinOp enumerates binary operators.
type BinOp uint8

// Binary operators: arithmetic, comparison, and boolean connectives.
const (
	OpAdd BinOp = iota
	OpSub
	OpMul
	OpDiv
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpAnd
	OpOr
)

var binOpNames = map[BinOp]string{
	OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "/",
	OpEq: "=", OpNe: "<>", OpLt: "<", OpLe: "<=", OpGt: ">", OpGe: ">=",
	OpAnd: "AND", OpOr: "OR",
}

// String returns the SQL spelling of the operator.
func (o BinOp) String() string {
	if s, ok := binOpNames[o]; ok {
		return s
	}
	return fmt.Sprintf("BinOp(%d)", uint8(o))
}

// IsComparison reports whether the operator yields a boolean from two
// comparable operands.
func (o BinOp) IsComparison() bool { return o >= OpEq && o <= OpGe }

// IsArithmetic reports whether the operator is numeric arithmetic.
func (o BinOp) IsArithmetic() bool { return o <= OpDiv }

// Binary applies a binary operator. Comparisons involving NULL evaluate to
// false (two-valued logic is sufficient for this engine: the TPC-D data and
// the maintenance expressions never rely on three-valued semantics).
type Binary struct {
	Op   BinOp
	L, R Expr
}

// Kind implements Expr.
func (b *Binary) Kind() relation.Kind {
	if b.Op.IsArithmetic() {
		if b.L.Kind() == relation.KindFloat || b.R.Kind() == relation.KindFloat || b.Op == OpDiv {
			return relation.KindFloat
		}
		return relation.KindInt
	}
	return relation.KindBool
}

// Eval implements Expr.
func (b *Binary) Eval(row relation.Tuple) relation.Value {
	switch b.Op {
	case OpAnd:
		l := b.L.Eval(row)
		if l.IsNull() || !l.Bool() {
			return relation.NewBool(false)
		}
		r := b.R.Eval(row)
		return relation.NewBool(!r.IsNull() && r.Bool())
	case OpOr:
		l := b.L.Eval(row)
		if !l.IsNull() && l.Bool() {
			return relation.NewBool(true)
		}
		r := b.R.Eval(row)
		return relation.NewBool(!r.IsNull() && r.Bool())
	}
	l, r := b.L.Eval(row), b.R.Eval(row)
	if l.IsNull() || r.IsNull() {
		if b.Op.IsComparison() {
			return relation.NewBool(false)
		}
		return relation.Null
	}
	if b.Op.IsComparison() {
		c := relation.Compare(l, r)
		switch b.Op {
		case OpEq:
			return relation.NewBool(c == 0)
		case OpNe:
			return relation.NewBool(c != 0)
		case OpLt:
			return relation.NewBool(c < 0)
		case OpLe:
			return relation.NewBool(c <= 0)
		case OpGt:
			return relation.NewBool(c > 0)
		default: // OpGe
			return relation.NewBool(c >= 0)
		}
	}
	// Arithmetic.
	if b.Kind() == relation.KindInt {
		li, ri := l.Int(), r.Int()
		switch b.Op {
		case OpAdd:
			return relation.NewInt(li + ri)
		case OpSub:
			return relation.NewInt(li - ri)
		default: // OpMul
			return relation.NewInt(li * ri)
		}
	}
	lf, rf := l.Float(), r.Float()
	switch b.Op {
	case OpAdd:
		return relation.NewFloat(lf + rf)
	case OpSub:
		return relation.NewFloat(lf - rf)
	case OpMul:
		return relation.NewFloat(lf * rf)
	default: // OpDiv
		if rf == 0 {
			return relation.Null
		}
		return relation.NewFloat(lf / rf)
	}
}

// Columns implements Expr.
func (b *Binary) Columns(dst []int) []int { return b.R.Columns(b.L.Columns(dst)) }

func (b *Binary) String() string {
	return "(" + b.L.String() + " " + b.Op.String() + " " + b.R.String() + ")"
}

// Not negates a boolean expression; NULL is treated as false first.
type Not struct {
	E Expr
}

// Eval implements Expr.
func (n *Not) Eval(row relation.Tuple) relation.Value {
	v := n.E.Eval(row)
	return relation.NewBool(v.IsNull() || !v.Bool())
}

// Kind implements Expr.
func (n *Not) Kind() relation.Kind { return relation.KindBool }

// Columns implements Expr.
func (n *Not) Columns(dst []int) []int { return n.E.Columns(dst) }

func (n *Not) String() string { return "NOT " + n.E.String() }

// EvalBool evaluates a predicate; NULL counts as false.
func EvalBool(e Expr, row relation.Tuple) bool {
	v := e.Eval(row)
	return !v.IsNull() && v.Bool()
}

// NamedExpr is a projection output: an expression with an output column name.
type NamedExpr struct {
	Name string
	E    Expr
}

func (n NamedExpr) String() string { return n.E.String() + " AS " + n.Name }

// Conjuncts flattens nested ANDs into a list of conjuncts.
func Conjuncts(e Expr) []Expr {
	if b, ok := e.(*Binary); ok && b.Op == OpAnd {
		return append(Conjuncts(b.L), Conjuncts(b.R)...)
	}
	return []Expr{e}
}

// AndAll combines predicates into one conjunction; nil for an empty list.
func AndAll(preds []Expr) Expr {
	var out Expr
	for _, p := range preds {
		if out == nil {
			out = p
		} else {
			out = &Binary{Op: OpAnd, L: out, R: p}
		}
	}
	return out
}

// FormatExprs renders a list of expressions for diagnostics.
func FormatExprs(exprs []Expr) string {
	parts := make([]string, len(exprs))
	for i, e := range exprs {
		parts[i] = e.String()
	}
	return strings.Join(parts, " AND ")
}
