package algebra

import (
	"testing"

	"repro/internal/delta"
	"repro/internal/relation"
)

func TestRewriteAndShiftColumns(t *testing.T) {
	e := &Binary{
		Op: OpAdd,
		L:  &Col{Index: 0, Name: "a", Typ: relation.KindInt},
		R:  &Not{E: &Col{Index: 2, Name: "c", Typ: relation.KindBool}},
	}
	shifted := ShiftColumns(e, 3)
	cols := shifted.Columns(nil)
	if len(cols) != 2 || cols[0] != 3 || cols[1] != 5 {
		t.Errorf("shifted columns = %v", cols)
	}
	// Shift by zero returns the expression untouched.
	if ShiftColumns(e, 0) != e {
		t.Errorf("zero shift should be identity")
	}
	// Constants survive rewriting unchanged.
	c := &Const{Value: relation.NewInt(7)}
	if RewriteColumns(c, nil) != c {
		t.Errorf("const not preserved")
	}
}

// TestInlineJoinIntoAggregate inlines an SPJ child (a filtered join) into
// an aggregate parent and checks the flattened definition evaluates the
// same projections.
func TestInlineJoinIntoAggregate(t *testing.T) {
	// Child J = select r.a, s.c*2 as c2 from R r, S s where r.b = s.b
	child := NewBuilder().From("r", "R", schemaR).From("s", "S", schemaS)
	child.Join("r.b", "s.b").
		SelectCol("r.a").
		SelectExpr("c2", &Binary{Op: OpMul, L: child.Col("s.c"), R: &Const{Value: relation.NewFloat(2)}})
	childCQ := child.MustBuild()

	// Parent P = select a, sum(c2) from J group by a where c2 > 1
	parent := NewBuilder().From("j", "J", childCQ.OutputSchema())
	parent.Where(&Binary{Op: OpGt, L: parent.Col("j.c2"), R: &Const{Value: relation.NewFloat(1)}}).
		GroupByCol("j.a").
		Agg("total", delta.AggSum, parent.Col("j.c2"))
	parentCQ := parent.MustBuild()

	flat, err := Inline(parentCQ, 0, childCQ)
	if err != nil {
		t.Fatal(err)
	}
	if got := flat.BaseViews(); len(got) != 2 || got[0] != "R" || got[1] != "S" {
		t.Fatalf("flattened refs = %v", got)
	}
	// Aliases are prefixed.
	if flat.Refs[0].Alias != "j_r" || flat.Refs[1].Alias != "j_s" {
		t.Errorf("aliases = %v, %v", flat.Refs[0].Alias, flat.Refs[1].Alias)
	}
	// The flattened filter set contains the child's join and the rewritten
	// parent filter; evaluate both definitions on a synthetic row.
	// Joined row layout: r.a, r.b | s.b, s.c.
	row := relation.Tuple{relation.NewInt(1), relation.NewInt(5), relation.NewInt(5), relation.NewFloat(3)}
	// Parent agg input c2 = s.c * 2 = 6.
	if got := flat.Aggs[0].Input.Eval(row); got.Float() != 6 {
		t.Errorf("agg input = %v, want 6", got)
	}
	// Group-by a = r.a = 1.
	if got := flat.GroupBy[0].E.Eval(row); got.Int() != 1 {
		t.Errorf("group key = %v", got)
	}
	okAll := true
	for _, f := range flat.Filters {
		if !EvalBool(f, row) {
			okAll = false
		}
	}
	if !okAll {
		t.Errorf("filters rejected a row that passes both definitions")
	}
}

// TestInlineMiddleRefShiftsLaterColumns inlines a middle reference and
// checks the columns of later references are re-based correctly.
func TestInlineMiddleRefShiftsLaterColumns(t *testing.T) {
	// Child C over two refs (width 4), output width 2.
	child := NewBuilder().From("x", "X", schemaR).From("y", "Y", schemaS)
	child.Join("x.b", "y.b").SelectCol("x.a").SelectCol("y.c")
	childCQ := child.MustBuild()

	// Parent over (R, C, S): the S columns sit after the inlined segment.
	parent := NewBuilder().
		From("r", "R", schemaR).
		From("c", "C", childCQ.OutputSchema()).
		From("s", "S", schemaS)
	parent.Join("r.a", "c.a").Join("c.c", "s.c").
		SelectCol("r.b").SelectCol("s.c", "sc")
	parentCQ := parent.MustBuild()

	flat, err := Inline(parentCQ, 1, childCQ)
	if err != nil {
		t.Fatal(err)
	}
	if err := flat.Validate(); err != nil {
		t.Fatal(err)
	}
	// New layout: r(2) | x(2) y(2) | s(2) = width 8; s.c at index 7.
	js := flat.JoinedSchema()
	if len(js) != 8 {
		t.Fatalf("width = %d", len(js))
	}
	scCol := flat.Select[1].E.(*Col)
	if scCol.Index != 7 {
		t.Errorf("s.c index = %d, want 7", scCol.Index)
	}
}

func TestInlineErrors(t *testing.T) {
	child := NewBuilder().From("x", "X", schemaR)
	child.SelectCol("x.a")
	childCQ := child.MustBuild()

	agg := NewBuilder().From("x", "X", schemaR)
	agg.GroupByCol("x.a").Agg("n", delta.AggCount, nil)
	aggCQ := agg.MustBuild()

	parent := NewBuilder().From("c", "C", childCQ.OutputSchema())
	parent.SelectCol("c.a")
	parentCQ := parent.MustBuild()

	if _, err := Inline(parentCQ, 5, childCQ); err == nil {
		t.Errorf("out-of-range ref accepted")
	}
	if _, err := Inline(parentCQ, 0, aggCQ); err == nil {
		t.Errorf("aggregate child accepted")
	}
	// Width mismatch: child output (1 col) vs a 2-col ref schema.
	wide := NewBuilder().From("c", "C", schemaR)
	wide.SelectCol("c.a")
	wideCQ := wide.MustBuild()
	if _, err := Inline(wideCQ, 0, childCQ); err == nil {
		t.Errorf("width mismatch accepted")
	}
}

func TestRewriteUnknownExprPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("expected panic")
		}
	}()
	RewriteColumns(nil, func(c *Col) Expr { return c })
}
