package algebra

import (
	"fmt"

	"repro/internal/delta"
	"repro/internal/relation"
)

// Builder assembles a bound CQ programmatically, resolving qualified column
// names ("alias.column") against the accumulated refs. It is the Go-level
// alternative to the SQL front end and is what the TPC-D view definitions
// and most tests use.
type Builder struct {
	cq  CQ
	err error
}

// NewBuilder starts an empty definition.
func NewBuilder() *Builder { return &Builder{} }

// From adds a reference to view under alias with the given schema.
func (b *Builder) From(alias, view string, schema relation.Schema) *Builder {
	b.cq.Refs = append(b.cq.Refs, Ref{Alias: alias, View: view, Schema: schema.Clone()})
	return b
}

// joinedSchema recomputes the current concatenated qualified schema.
func (b *Builder) joinedSchema() relation.Schema {
	var out relation.Schema
	for _, r := range b.cq.Refs {
		out = append(out, r.Schema.Qualify(r.Alias)...)
	}
	return out
}

// Col resolves a qualified column name to a bound column expression.
func (b *Builder) Col(qualified string) Expr {
	js := b.joinedSchema()
	idx := js.ColumnIndex(qualified)
	if idx < 0 {
		b.fail(fmt.Errorf("algebra: unknown column %q (have %v)", qualified, js.Names()))
		return &Const{Value: relation.Null}
	}
	return &Col{Index: idx, Name: qualified, Typ: js[idx].Kind}
}

func (b *Builder) fail(err error) {
	if b.err == nil {
		b.err = err
	}
}

// Where adds a conjunctive filter predicate.
func (b *Builder) Where(pred Expr) *Builder {
	b.cq.Filters = append(b.cq.Filters, Conjuncts(pred)...)
	return b
}

// WhereEq adds an equality filter between a column and a constant.
func (b *Builder) WhereEq(qualified string, v relation.Value) *Builder {
	return b.Where(&Binary{Op: OpEq, L: b.Col(qualified), R: &Const{Value: v}})
}

// Join adds an equi-join predicate between two qualified columns.
func (b *Builder) Join(left, right string) *Builder {
	return b.Where(&Binary{Op: OpEq, L: b.Col(left), R: b.Col(right)})
}

// SelectCol projects a column under its unqualified output name (the part
// after the dot) unless an explicit name is given.
func (b *Builder) SelectCol(qualified string, name ...string) *Builder {
	n := unqualify(qualified)
	if len(name) > 0 {
		n = name[0]
	}
	b.cq.Select = append(b.cq.Select, NamedExpr{Name: n, E: b.Col(qualified)})
	return b
}

// SelectExpr projects a computed expression under the given name.
func (b *Builder) SelectExpr(name string, e Expr) *Builder {
	b.cq.Select = append(b.cq.Select, NamedExpr{Name: name, E: e})
	return b
}

// GroupByCol adds a grouping column, also projected in the output.
func (b *Builder) GroupByCol(qualified string, name ...string) *Builder {
	n := unqualify(qualified)
	if len(name) > 0 {
		n = name[0]
	}
	b.cq.GroupBy = append(b.cq.GroupBy, NamedExpr{Name: n, E: b.Col(qualified)})
	return b
}

// GroupByExpr adds a computed grouping expression.
func (b *Builder) GroupByExpr(name string, e Expr) *Builder {
	b.cq.GroupBy = append(b.cq.GroupBy, NamedExpr{Name: name, E: e})
	return b
}

// Agg adds an aggregate output. Input may be nil for COUNT(*).
func (b *Builder) Agg(name string, kind delta.AggKind, input Expr) *Builder {
	vk := relation.KindInt
	if input != nil {
		vk = input.Kind()
	}
	b.cq.Aggs = append(b.cq.Aggs, AggExpr{Name: name, Spec: delta.AggSpec{Kind: kind, ValueKind: vk}, Input: input})
	return b
}

// Distinct converts the current Select list into a duplicate-eliminating
// grouped view (SELECT DISTINCT): grouping on every projected expression
// with no aggregates, which keeps delta propagation correct under bag
// semantics (a distinct row disappears only when its support reaches zero).
func (b *Builder) Distinct() *Builder {
	if b.cq.GroupBy != nil {
		b.fail(fmt.Errorf("algebra: DISTINCT with GROUP BY"))
		return b
	}
	b.cq.GroupBy = b.cq.Select
	b.cq.Select = nil
	return b
}

// Build validates and returns the CQ.
func (b *Builder) Build() (*CQ, error) {
	if b.err != nil {
		return nil, b.err
	}
	// Aggregate views without explicit GroupBy entries but with aggregates
	// are global aggregates over one implicit group; model as empty GroupBy.
	cq := b.cq
	if cq.GroupBy == nil && cq.Aggs != nil {
		cq.GroupBy = []NamedExpr{}
	}
	if err := cq.Validate(); err != nil {
		return nil, err
	}
	return &cq, nil
}

// MustBuild is Build that panics on error, for static view definitions.
func (b *Builder) MustBuild() *CQ {
	cq, err := b.Build()
	if err != nil {
		panic(err)
	}
	return cq
}

func unqualify(qualified string) string {
	for i := len(qualified) - 1; i >= 0; i-- {
		if qualified[i] == '.' {
			return qualified[i+1:]
		}
	}
	return qualified
}
