package algebra

import (
	"fmt"
	"strings"

	"repro/internal/delta"
	"repro/internal/relation"
)

// Ref is one FROM-clause entry: a warehouse view under an alias.
type Ref struct {
	Alias string
	View  string
	// Schema is the (unqualified) schema of the referenced view, recorded at
	// bind time so offsets into the concatenated row are stable.
	Schema relation.Schema
}

// AggExpr is one aggregate output of a summary view.
type AggExpr struct {
	Name string
	Spec delta.AggSpec
	// Input is the aggregate's input expression over the concatenated
	// schema; nil for COUNT(*).
	Input Expr
}

func (a AggExpr) String() string {
	arg := "*"
	if a.Input != nil {
		arg = a.Input.String()
	}
	return fmt.Sprintf("%s(%s) AS %s", a.Spec.Kind, arg, a.Name)
}

// CQ is a bound conjunctive-query view definition:
//
//	SELECT <Select | GroupBy+Aggs> FROM <Refs> WHERE <Filters> [GROUP BY ...]
//
// All expressions are bound over the concatenation of the refs' schemas, in
// Refs order, with qualified column names "alias.column".
type CQ struct {
	Refs    []Ref
	Filters []Expr // conjunctive predicates
	// Select is the projection for an SPJ view (nil when grouped).
	Select []NamedExpr
	// GroupBy and Aggs define a summary view (GroupBy non-nil, possibly with
	// zero Aggs for SELECT DISTINCT).
	GroupBy []NamedExpr
	Aggs    []AggExpr
	// offsets[i] is the index of ref i's first column in the concatenated row.
	offsets []int
	joined  relation.Schema
	// filterRefs[i] is RefsOfExpr(Filters[i]), precomputed at Validate time
	// so the per-evaluation join planner never re-walks filter expressions
	// (or allocates column scratch) on the serving hot path.
	filterRefs []uint64
}

// IsAggregate reports whether the view is a summary (grouped) view.
func (q *CQ) IsAggregate() bool { return q.GroupBy != nil }

// Validated reports whether Validate has already succeeded on this CQ.
// Callers holding a CQ that may be shared across goroutines (the prepared-
// plan cache hands one plan to many queries at once) must not re-Validate
// it — Validate rewrites the internal offsets, which would race with
// concurrent readers — and can use this to skip the call safely: a CQ is
// never published to concurrent use before its single bind-time Validate.
func (q *CQ) Validated() bool { return q.offsets != nil }

// Validate checks structural invariants and computes internal offsets. It
// must be called once after the CQ is assembled and before any other method.
func (q *CQ) Validate() error {
	if len(q.Refs) == 0 {
		return fmt.Errorf("algebra: view definition has no references")
	}
	seenAlias := make(map[string]bool)
	q.offsets = make([]int, len(q.Refs))
	q.joined = nil
	off := 0
	for i, r := range q.Refs {
		if r.Alias == "" || r.View == "" {
			return fmt.Errorf("algebra: ref %d has empty alias or view", i)
		}
		if seenAlias[r.Alias] {
			return fmt.Errorf("algebra: duplicate alias %q", r.Alias)
		}
		seenAlias[r.Alias] = true
		if len(r.Schema) == 0 {
			return fmt.Errorf("algebra: ref %q has empty schema", r.Alias)
		}
		q.offsets[i] = off
		off += len(r.Schema)
		q.joined = append(q.joined, r.Schema.Qualify(r.Alias)...)
	}
	if q.GroupBy == nil && q.Aggs != nil {
		return fmt.Errorf("algebra: aggregates without GROUP BY")
	}
	if q.GroupBy != nil && q.Select != nil {
		return fmt.Errorf("algebra: both Select and GroupBy set")
	}
	if q.GroupBy == nil && len(q.Select) == 0 {
		return fmt.Errorf("algebra: SPJ view with empty projection")
	}
	width := len(q.joined)
	check := func(e Expr, what string) error {
		for _, c := range e.Columns(nil) {
			if c < 0 || c >= width {
				return fmt.Errorf("algebra: %s references column %d outside row width %d", what, c, width)
			}
		}
		return nil
	}
	q.filterRefs = make([]uint64, len(q.Filters))
	for fi, f := range q.Filters {
		if err := check(f, "filter "+f.String()); err != nil {
			return err
		}
		if f.Kind() != relation.KindBool {
			return fmt.Errorf("algebra: filter %s is not boolean", f)
		}
		q.filterRefs[fi] = q.RefsOfExpr(f)
	}
	names := make(map[string]bool)
	addName := func(n string) error {
		if n == "" {
			return fmt.Errorf("algebra: empty output column name")
		}
		if names[n] {
			return fmt.Errorf("algebra: duplicate output column %q", n)
		}
		names[n] = true
		return nil
	}
	for _, s := range q.Select {
		if err := check(s.E, "projection "+s.Name); err != nil {
			return err
		}
		if err := addName(s.Name); err != nil {
			return err
		}
	}
	for _, g := range q.GroupBy {
		if err := check(g.E, "group-by "+g.Name); err != nil {
			return err
		}
		if err := addName(g.Name); err != nil {
			return err
		}
	}
	for _, a := range q.Aggs {
		if a.Input != nil {
			if err := check(a.Input, "aggregate "+a.Name); err != nil {
				return err
			}
		} else if a.Spec.Kind != delta.AggCount {
			return fmt.Errorf("algebra: aggregate %s has no input expression", a.Name)
		}
		if err := addName(a.Name); err != nil {
			return err
		}
	}
	return nil
}

// JoinedSchema returns the concatenated, qualified schema of all refs.
func (q *CQ) JoinedSchema() relation.Schema { return q.joined }

// RefOffset returns the index of ref i's first column in the joined row.
func (q *CQ) RefOffset(i int) int { return q.offsets[i] }

// RefOfColumn returns the index of the ref whose segment contains column c.
func (q *CQ) RefOfColumn(c int) int {
	for i := len(q.Refs) - 1; i >= 0; i-- {
		if c >= q.offsets[i] {
			return i
		}
	}
	panic(fmt.Sprintf("algebra: column %d before first ref", c))
}

// FilterRefs returns RefsOfExpr(Filters[i]) from the mask precomputed at
// Validate time — the allocation-free form the evaluation planner uses.
func (q *CQ) FilterRefs(i int) uint64 { return q.filterRefs[i] }

// RefsOfExpr returns the set of ref indexes an expression touches, as a
// bitmask (supports up to 64 refs, far beyond any realistic view).
func (q *CQ) RefsOfExpr(e Expr) uint64 {
	var mask uint64
	for _, c := range e.Columns(nil) {
		mask |= 1 << uint(q.RefOfColumn(c))
	}
	return mask
}

// OutputSchema returns the schema of the view the CQ defines.
func (q *CQ) OutputSchema() relation.Schema {
	var out relation.Schema
	if q.IsAggregate() {
		for _, g := range q.GroupBy {
			out = append(out, relation.Column{Name: g.Name, Kind: g.E.Kind()})
		}
		for _, a := range q.Aggs {
			out = append(out, relation.Column{Name: a.Name, Kind: a.Spec.OutputKind()})
		}
		return out
	}
	for _, s := range q.Select {
		out = append(out, relation.Column{Name: s.Name, Kind: s.E.Kind()})
	}
	return out
}

// GroupSchema returns the schema of the grouping columns (aggregate views).
func (q *CQ) GroupSchema() relation.Schema {
	var out relation.Schema
	for _, g := range q.GroupBy {
		out = append(out, relation.Column{Name: g.Name, Kind: g.E.Kind()})
	}
	return out
}

// AggSpecs returns the aggregate specs in output order.
func (q *CQ) AggSpecs() []delta.AggSpec {
	out := make([]delta.AggSpec, len(q.Aggs))
	for i, a := range q.Aggs {
		out[i] = a.Spec
	}
	return out
}

// AggNames returns the aggregate output column names.
func (q *CQ) AggNames() []string {
	out := make([]string, len(q.Aggs))
	for i, a := range q.Aggs {
		out[i] = a.Name
	}
	return out
}

// BaseViews returns the distinct view names referenced, in first-appearance
// order. These are the VDAG children of the view this CQ defines.
func (q *CQ) BaseViews() []string {
	seen := make(map[string]bool)
	var out []string
	for _, r := range q.Refs {
		if !seen[r.View] {
			seen[r.View] = true
			out = append(out, r.View)
		}
	}
	return out
}

// RefsOfView returns the indexes of all refs naming the given view.
func (q *CQ) RefsOfView(view string) []int {
	var out []int
	for i, r := range q.Refs {
		if r.View == view {
			out = append(out, i)
		}
	}
	return out
}

// String renders the CQ in SQL-like form for diagnostics.
func (q *CQ) String() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	var outs []string
	for _, g := range q.GroupBy {
		outs = append(outs, g.String())
	}
	for _, a := range q.Aggs {
		outs = append(outs, a.String())
	}
	for _, s := range q.Select {
		outs = append(outs, s.String())
	}
	b.WriteString(strings.Join(outs, ", "))
	b.WriteString(" FROM ")
	var refs []string
	for _, r := range q.Refs {
		refs = append(refs, r.View+" "+r.Alias)
	}
	b.WriteString(strings.Join(refs, ", "))
	if len(q.Filters) > 0 {
		b.WriteString(" WHERE ")
		b.WriteString(FormatExprs(q.Filters))
	}
	if q.GroupBy != nil {
		b.WriteString(" GROUP BY ")
		var gs []string
		for _, g := range q.GroupBy {
			gs = append(gs, g.E.String())
		}
		b.WriteString(strings.Join(gs, ", "))
	}
	return b.String()
}
