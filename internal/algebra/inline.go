package algebra

import (
	"fmt"
)

// RewriteColumns returns a copy of e with every column reference replaced by
// repl(col). Non-column nodes are rebuilt; constants are shared.
func RewriteColumns(e Expr, repl func(*Col) Expr) Expr {
	switch x := e.(type) {
	case *Col:
		return repl(x)
	case *Const:
		return x
	case *Binary:
		return &Binary{Op: x.Op, L: RewriteColumns(x.L, repl), R: RewriteColumns(x.R, repl)}
	case *Not:
		return &Not{E: RewriteColumns(x.E, repl)}
	default:
		panic(fmt.Sprintf("algebra: unknown expression type %T", e))
	}
}

// ShiftColumns returns a copy of e with every column index shifted by delta.
func ShiftColumns(e Expr, delta int) Expr {
	if delta == 0 {
		return e
	}
	return RewriteColumns(e, func(c *Col) Expr {
		return &Col{Index: c.Index + delta, Name: c.Name, Typ: c.Typ}
	})
}

// Inline replaces reference refIdx of parent with the definition of the view
// it names — the "flattening" of Section 9 of the paper, which lets the
// parent's maintenance expressions run directly against the grandchildren
// (enabling more parallelism at the price of more total work).
//
// The child definition must be a non-aggregate (SPJ) view. The child's
// references are spliced in place of the removed reference with aliases
// prefixed "<parentAlias>_", its filters are conjoined, and every parent
// expression that read a column of the removed reference now evaluates the
// child's projection expression for that column inline.
func Inline(parent *CQ, refIdx int, child *CQ) (*CQ, error) {
	if refIdx < 0 || refIdx >= len(parent.Refs) {
		return nil, fmt.Errorf("algebra: inline ref %d out of range", refIdx)
	}
	if child.IsAggregate() {
		return nil, fmt.Errorf("algebra: cannot inline aggregate view %q", parent.Refs[refIdx].View)
	}
	pref := parent.Refs[refIdx]
	if len(child.OutputSchema()) != len(pref.Schema) {
		return nil, fmt.Errorf("algebra: child output width %d does not match ref schema width %d",
			len(child.OutputSchema()), len(pref.Schema))
	}
	// Build the new reference list.
	var refs []Ref
	refs = append(refs, parent.Refs[:refIdx]...)
	for _, cr := range child.Refs {
		refs = append(refs, Ref{Alias: pref.Alias + "_" + cr.Alias, View: cr.View, Schema: cr.Schema.Clone()})
	}
	refs = append(refs, parent.Refs[refIdx+1:]...)

	// Offsets in the old and new concatenated rows.
	oldOff := parent.RefOffset(refIdx)
	oldWidth := len(pref.Schema)
	childWidth := len(child.JoinedSchema())
	shiftAfter := childWidth - oldWidth // how much columns after the segment move

	// Child projection expressions, shifted into their new position.
	childOutputs := make([]Expr, len(child.Select))
	for i, s := range child.Select {
		childOutputs[i] = ShiftColumns(s.E, oldOff)
	}
	// remap rewrites a parent expression into the new row layout.
	remap := func(e Expr) Expr {
		return RewriteColumns(e, func(c *Col) Expr {
			switch {
			case c.Index < oldOff:
				return c
			case c.Index < oldOff+oldWidth:
				return childOutputs[c.Index-oldOff]
			default:
				return &Col{Index: c.Index + shiftAfter, Name: c.Name, Typ: c.Typ}
			}
		})
	}

	out := &CQ{Refs: refs}
	for _, f := range parent.Filters {
		out.Filters = append(out.Filters, remap(f))
	}
	for _, f := range child.Filters {
		out.Filters = append(out.Filters, ShiftColumns(f, oldOff))
	}
	for _, s := range parent.Select {
		out.Select = append(out.Select, NamedExpr{Name: s.Name, E: remap(s.E)})
	}
	for _, g := range parent.GroupBy {
		out.GroupBy = append(out.GroupBy, NamedExpr{Name: g.Name, E: remap(g.E)})
	}
	for _, a := range parent.Aggs {
		na := AggExpr{Name: a.Name, Spec: a.Spec}
		if a.Input != nil {
			na.Input = remap(a.Input)
		}
		out.Aggs = append(out.Aggs, na)
	}
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("algebra: inlined definition invalid: %w", err)
	}
	return out, nil
}
