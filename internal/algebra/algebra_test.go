package algebra

import (
	"strings"
	"testing"

	"repro/internal/delta"
	"repro/internal/relation"
)

var (
	schemaR = relation.Schema{{Name: "a", Kind: relation.KindInt}, {Name: "b", Kind: relation.KindInt}}
	schemaS = relation.Schema{{Name: "b", Kind: relation.KindInt}, {Name: "c", Kind: relation.KindFloat}}
)

func row(vals ...interface{}) relation.Tuple {
	t := make(relation.Tuple, len(vals))
	for i, v := range vals {
		switch x := v.(type) {
		case int:
			t[i] = relation.NewInt(int64(x))
		case float64:
			t[i] = relation.NewFloat(x)
		case string:
			t[i] = relation.NewString(x)
		case bool:
			t[i] = relation.NewBool(x)
		case nil:
			t[i] = relation.Null
		}
	}
	return t
}

func TestColConstEval(t *testing.T) {
	c := &Col{Index: 1, Name: "r.b", Typ: relation.KindInt}
	if got := c.Eval(row(1, 2)); got.Int() != 2 {
		t.Errorf("col eval = %v", got)
	}
	if c.Kind() != relation.KindInt || c.String() != "r.b" {
		t.Errorf("col metadata wrong")
	}
	k := &Const{Value: relation.NewString("x")}
	if k.Eval(nil).Str() != "x" || k.String() != "'x'" {
		t.Errorf("const wrong: %s", k)
	}
	n := &Const{Value: relation.NewInt(7)}
	if n.String() != "7" {
		t.Errorf("int const string = %q", n.String())
	}
	if len(c.Columns(nil)) != 1 || len(k.Columns(nil)) != 0 {
		t.Errorf("Columns wrong")
	}
}

func TestBinaryArithmetic(t *testing.T) {
	a := &Col{Index: 0, Typ: relation.KindInt, Name: "a"}
	b := &Col{Index: 1, Typ: relation.KindFloat, Name: "b"}
	cases := []struct {
		op   BinOp
		l, r Expr
		in   relation.Tuple
		want relation.Value
	}{
		{OpAdd, a, a, row(3, 0.0), relation.NewInt(6)},
		{OpSub, a, a, row(3, 0.0), relation.NewInt(0)},
		{OpMul, a, a, row(4, 0.0), relation.NewInt(16)},
		{OpAdd, a, b, row(3, 1.5), relation.NewFloat(4.5)},
		{OpMul, b, b, row(0, 2.5), relation.NewFloat(6.25)},
		{OpDiv, a, a, row(9, 0.0), relation.NewFloat(1)},
		{OpSub, b, a, row(1, 2.5), relation.NewFloat(1.5)},
	}
	for _, c := range cases {
		e := &Binary{Op: c.op, L: c.l, R: c.r}
		got := e.Eval(c.in)
		if relation.Compare(got, c.want) != 0 {
			t.Errorf("%s on %v = %v, want %v", e, c.in, got, c.want)
		}
	}
	// Division by zero yields NULL.
	z := &Binary{Op: OpDiv, L: a, R: &Const{Value: relation.NewFloat(0)}}
	if !z.Eval(row(5, 0.0)).IsNull() {
		t.Errorf("x/0 should be NULL")
	}
	// Arithmetic on NULL yields NULL.
	n := &Binary{Op: OpAdd, L: a, R: &Const{Value: relation.Null}}
	if !n.Eval(row(5, 0.0)).IsNull() {
		t.Errorf("x + NULL should be NULL")
	}
}

func TestBinaryComparisons(t *testing.T) {
	a := &Col{Index: 0, Typ: relation.KindInt, Name: "a"}
	five := &Const{Value: relation.NewInt(5)}
	cases := []struct {
		op   BinOp
		in   int
		want bool
	}{
		{OpEq, 5, true}, {OpEq, 4, false},
		{OpNe, 4, true}, {OpNe, 5, false},
		{OpLt, 4, true}, {OpLt, 5, false},
		{OpLe, 5, true}, {OpLe, 6, false},
		{OpGt, 6, true}, {OpGt, 5, false},
		{OpGe, 5, true}, {OpGe, 4, false},
	}
	for _, c := range cases {
		e := &Binary{Op: c.op, L: a, R: five}
		if got := e.Eval(row(c.in, 0)).Bool(); got != c.want {
			t.Errorf("%d %s 5 = %v, want %v", c.in, c.op, got, c.want)
		}
		if e.Kind() != relation.KindBool {
			t.Errorf("comparison kind = %v", e.Kind())
		}
	}
	// NULL comparisons are false under the engine's two-valued logic.
	n := &Binary{Op: OpEq, L: &Const{Value: relation.Null}, R: five}
	if n.Eval(nil).Bool() {
		t.Errorf("NULL = 5 should be false")
	}
}

func TestBooleanConnectives(t *testing.T) {
	tt := &Const{Value: relation.NewBool(true)}
	ff := &Const{Value: relation.NewBool(false)}
	nn := &Const{Value: relation.Null}
	if !(&Binary{Op: OpAnd, L: tt, R: tt}).Eval(nil).Bool() {
		t.Errorf("t AND t")
	}
	if (&Binary{Op: OpAnd, L: tt, R: ff}).Eval(nil).Bool() {
		t.Errorf("t AND f")
	}
	if (&Binary{Op: OpAnd, L: nn, R: tt}).Eval(nil).Bool() {
		t.Errorf("NULL AND t should be false")
	}
	if !(&Binary{Op: OpOr, L: ff, R: tt}).Eval(nil).Bool() {
		t.Errorf("f OR t")
	}
	if (&Binary{Op: OpOr, L: ff, R: nn}).Eval(nil).Bool() {
		t.Errorf("f OR NULL should be false")
	}
	if !(&Not{E: ff}).Eval(nil).Bool() || (&Not{E: tt}).Eval(nil).Bool() {
		t.Errorf("NOT wrong")
	}
	if !(&Not{E: nn}).Eval(nil).Bool() {
		t.Errorf("NOT NULL should be true (NULL treated as false)")
	}
	not := &Not{E: &Col{Index: 0, Typ: relation.KindBool, Name: "x"}}
	if not.Kind() != relation.KindBool || len(not.Columns(nil)) != 1 || not.String() != "NOT x" {
		t.Errorf("Not metadata wrong")
	}
}

func TestConjunctsAndAll(t *testing.T) {
	a := &Const{Value: relation.NewBool(true)}
	b := &Const{Value: relation.NewBool(false)}
	c := &Const{Value: relation.NewBool(true)}
	e := AndAll([]Expr{a, b, c})
	parts := Conjuncts(e)
	if len(parts) != 3 {
		t.Errorf("Conjuncts = %d", len(parts))
	}
	if AndAll(nil) != nil {
		t.Errorf("AndAll(nil) should be nil")
	}
	if got := FormatExprs(parts); !strings.Contains(got, "AND") {
		t.Errorf("FormatExprs = %q", got)
	}
	if !EvalBool(a, nil) || EvalBool(b, nil) {
		t.Errorf("EvalBool wrong")
	}
}

func TestBinOpStrings(t *testing.T) {
	if OpAdd.String() != "+" || OpGe.String() != ">=" || OpAnd.String() != "AND" {
		t.Errorf("op strings wrong")
	}
	if BinOp(99).String() != "BinOp(99)" {
		t.Errorf("unknown op string")
	}
	if !OpEq.IsComparison() || OpAdd.IsComparison() || !OpMul.IsArithmetic() || OpOr.IsArithmetic() {
		t.Errorf("op classification wrong")
	}
}

func buildJoin(t *testing.T) *CQ {
	t.Helper()
	b := NewBuilder().From("r", "R", schemaR).From("s", "S", schemaS)
	b.Join("r.b", "s.b").
		Where(gtExpr(b.Col("s.c"), 0)).
		SelectCol("r.a").
		SelectExpr("twice", &Binary{Op: OpMul, L: b.Col("s.c"), R: &Const{Value: relation.NewFloat(2)}})
	cq, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return cq
}

func gtExpr(e Expr, v float64) Expr {
	return &Binary{Op: OpGt, L: e, R: &Const{Value: relation.NewFloat(v)}}
}

func TestCQStructure(t *testing.T) {
	cq := buildJoin(t)
	if cq.IsAggregate() {
		t.Errorf("SPJ view misclassified")
	}
	js := cq.JoinedSchema()
	if len(js) != 4 || js[0].Name != "r.a" || js[2].Name != "s.b" {
		t.Errorf("joined schema = %v", js)
	}
	if cq.RefOffset(0) != 0 || cq.RefOffset(1) != 2 {
		t.Errorf("offsets wrong")
	}
	if cq.RefOfColumn(1) != 0 || cq.RefOfColumn(3) != 1 {
		t.Errorf("RefOfColumn wrong")
	}
	out := cq.OutputSchema()
	if out.String() != "a INTEGER, twice FLOAT" {
		t.Errorf("output schema = %s", out)
	}
	if got := cq.BaseViews(); len(got) != 2 || got[0] != "R" {
		t.Errorf("BaseViews = %v", got)
	}
	if got := cq.RefsOfView("S"); len(got) != 1 || got[0] != 1 {
		t.Errorf("RefsOfView = %v", got)
	}
	if mask := cq.RefsOfExpr(cq.Filters[0]); mask != 0b11 {
		t.Errorf("join filter mask = %b", mask)
	}
	if !strings.Contains(cq.String(), "FROM R r, S s") {
		t.Errorf("String = %q", cq.String())
	}
}

func TestCQAggregate(t *testing.T) {
	b := NewBuilder().From("r", "R", schemaR)
	b.GroupByCol("r.a").
		Agg("n", delta.AggCount, nil).
		Agg("total", delta.AggSum, b.Col("r.b"))
	cq, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if !cq.IsAggregate() {
		t.Errorf("aggregate view misclassified")
	}
	if cq.GroupSchema().String() != "a INTEGER" {
		t.Errorf("group schema = %s", cq.GroupSchema())
	}
	specs := cq.AggSpecs()
	if len(specs) != 2 || specs[0].Kind != delta.AggCount || specs[1].Kind != delta.AggSum {
		t.Errorf("specs = %v", specs)
	}
	if names := cq.AggNames(); names[0] != "n" || names[1] != "total" {
		t.Errorf("names = %v", names)
	}
	if cq.OutputSchema().String() != "a INTEGER, n INTEGER, total INTEGER" {
		t.Errorf("output = %s", cq.OutputSchema())
	}
	if !strings.Contains(cq.String(), "GROUP BY") || !strings.Contains(cq.String(), "COUNT(*)") {
		t.Errorf("String = %q", cq.String())
	}
}

func TestGlobalAggregate(t *testing.T) {
	b := NewBuilder().From("r", "R", schemaR)
	b.Agg("total", delta.AggSum, b.Col("r.b"))
	cq, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if !cq.IsAggregate() || len(cq.GroupBy) != 0 {
		t.Errorf("global aggregate should have empty non-nil GroupBy")
	}
}

func TestDistinct(t *testing.T) {
	b := NewBuilder().From("r", "R", schemaR)
	b.SelectCol("r.a").Distinct()
	cq, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if !cq.IsAggregate() || len(cq.GroupBy) != 1 || len(cq.Aggs) != 0 {
		t.Errorf("DISTINCT should become zero-agg grouping")
	}
	// DISTINCT after GROUP BY is rejected.
	b2 := NewBuilder().From("r", "R", schemaR)
	b2.GroupByCol("r.a").Distinct()
	if _, err := b2.Build(); err == nil {
		t.Errorf("DISTINCT with GROUP BY accepted")
	}
}

func TestBuilderErrors(t *testing.T) {
	// Unknown column.
	b := NewBuilder().From("r", "R", schemaR)
	b.SelectCol("r.zzz")
	if _, err := b.Build(); err == nil {
		t.Errorf("unknown column accepted")
	}
	// Empty projection.
	if _, err := NewBuilder().From("r", "R", schemaR).Build(); err == nil {
		t.Errorf("empty projection accepted")
	}
	// Duplicate alias.
	b3 := NewBuilder().From("r", "R", schemaR).From("r", "S", schemaS)
	b3.SelectCol("r.a")
	if _, err := b3.Build(); err == nil {
		t.Errorf("duplicate alias accepted")
	}
	// MustBuild panics.
	defer func() {
		if recover() == nil {
			t.Errorf("MustBuild should panic")
		}
	}()
	bb := NewBuilder().From("r", "R", schemaR)
	bb.SelectCol("r.zzz")
	bb.MustBuild()
}

func TestValidateErrors(t *testing.T) {
	cases := []struct {
		name string
		cq   CQ
	}{
		{"no refs", CQ{}},
		{"empty alias", CQ{Refs: []Ref{{Alias: "", View: "R", Schema: schemaR}}, Select: []NamedExpr{{Name: "x", E: &Const{Value: relation.NewInt(1)}}}}},
		{"empty schema", CQ{Refs: []Ref{{Alias: "r", View: "R"}}, Select: []NamedExpr{{Name: "x", E: &Const{Value: relation.NewInt(1)}}}}},
		{"aggs without group", CQ{Refs: []Ref{{Alias: "r", View: "R", Schema: schemaR}}, Aggs: []AggExpr{{Name: "n", Spec: delta.AggSpec{Kind: delta.AggCount}}}}},
		{"select and group", CQ{
			Refs:    []Ref{{Alias: "r", View: "R", Schema: schemaR}},
			Select:  []NamedExpr{{Name: "x", E: &Const{Value: relation.NewInt(1)}}},
			GroupBy: []NamedExpr{{Name: "y", E: &Const{Value: relation.NewInt(1)}}},
		}},
		{"column out of range", CQ{
			Refs:   []Ref{{Alias: "r", View: "R", Schema: schemaR}},
			Select: []NamedExpr{{Name: "x", E: &Col{Index: 99, Typ: relation.KindInt}}},
		}},
		{"non-boolean filter", CQ{
			Refs:    []Ref{{Alias: "r", View: "R", Schema: schemaR}},
			Filters: []Expr{&Const{Value: relation.NewInt(1)}},
			Select:  []NamedExpr{{Name: "x", E: &Const{Value: relation.NewInt(1)}}},
		}},
		{"duplicate output name", CQ{
			Refs: []Ref{{Alias: "r", View: "R", Schema: schemaR}},
			Select: []NamedExpr{
				{Name: "x", E: &Const{Value: relation.NewInt(1)}},
				{Name: "x", E: &Const{Value: relation.NewInt(2)}},
			},
		}},
		{"empty output name", CQ{
			Refs:   []Ref{{Alias: "r", View: "R", Schema: schemaR}},
			Select: []NamedExpr{{Name: "", E: &Const{Value: relation.NewInt(1)}}},
		}},
		{"sum without input", CQ{
			Refs:    []Ref{{Alias: "r", View: "R", Schema: schemaR}},
			GroupBy: []NamedExpr{},
			Aggs:    []AggExpr{{Name: "s", Spec: delta.AggSpec{Kind: delta.AggSum}}},
		}},
	}
	for _, c := range cases {
		cq := c.cq
		if err := cq.Validate(); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestNamedExprAndAggExprString(t *testing.T) {
	ne := NamedExpr{Name: "x", E: &Const{Value: relation.NewInt(1)}}
	if ne.String() != "1 AS x" {
		t.Errorf("NamedExpr = %q", ne.String())
	}
	ae := AggExpr{Name: "n", Spec: delta.AggSpec{Kind: delta.AggCount}}
	if ae.String() != "COUNT(*) AS n" {
		t.Errorf("AggExpr = %q", ae.String())
	}
}
