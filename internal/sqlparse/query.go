package sqlparse

import (
	"repro/internal/algebra"
)

// OrderKey is one ORDER BY key of an ad-hoc query: an output column index
// and a direction.
type OrderKey struct {
	Column int
	Desc   bool
}

// Query is a parsed ad-hoc (OLAP) query: a view-definition-shaped body plus
// presentation clauses. ORDER BY and LIMIT/OFFSET are presentation only —
// they are meaningful for queries, not for materialized view definitions,
// which is why Parse (the view-definition entry point) rejects them.
//
// A *Query may be retained by the prepared-plan cache and evaluated from
// many goroutines at once; it is immutable after ParseQuery returns (the
// CQ is pre-validated, and evaluation never mutates it).
type Query struct {
	CQ      *algebra.CQ
	OrderBy []OrderKey
	// Limit caps the returned rows; < 0 means no limit.
	Limit int
	// Offset skips that many rows (after ordering, before Limit).
	Offset int
}

// ParseQuery parses a SELECT with optional trailing ORDER BY and
// LIMIT/OFFSET clauses, binding against the resolver. ORDER BY keys are
// output column names or 1-based output ordinals, optionally followed by
// ASC or DESC; LIMIT takes an optional OFFSET (OFFSET is a soft keyword:
// it remains usable as a column or view name everywhere else).
func ParseQuery(sql string, resolve Resolver) (*Query, error) {
	parseCalls.Add(1)
	p, err := newParser(sql, resolve)
	if err != nil {
		return nil, err
	}
	defer p.release()
	cq, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	q := &Query{CQ: cq, Limit: -1}
	out := cq.OutputSchema()

	if p.acceptKeyword(kwOrder) {
		if err := p.expectKeyword(kwBy); err != nil {
			return nil, err
		}
		for {
			col := p.next()
			var idx int
			switch {
			case col.kind == tokIdent:
				name := p.text(col)
				idx = out.ColumnIndex(name)
				if idx < 0 {
					return nil, p.errAt(col, "ORDER BY %q is not an output column (have %v)", name, out.Names())
				}
			case col.kind == tokNumber && !hasDot(p.lx.view(col)):
				n, ok := parseIntBytes(p.lx.view(col))
				if !ok || n < 1 || n > int64(len(out)) {
					return nil, p.errAt(col, "ORDER BY ordinal %s out of range (have %d output columns)", p.lx.view(col), len(out))
				}
				idx = int(n - 1)
			default:
				return nil, p.errAt(col, "expected output column or ordinal in ORDER BY, got %s", p.describe(col))
			}
			key := OrderKey{Column: idx}
			switch {
			case p.acceptKeyword(kwAsc):
			case p.acceptKeyword(kwDesc):
				key.Desc = true
			}
			q.OrderBy = append(q.OrderBy, key)
			if !p.acceptSymbol(symComma) {
				break
			}
		}
	}
	if p.acceptKeyword(kwLimit) {
		n := p.next()
		if n.kind != tokNumber {
			return nil, p.errAt(n, "expected number after LIMIT, got %s", p.describe(n))
		}
		limit, ok := int64(0), !hasDot(p.lx.view(n))
		if ok {
			limit, ok = parseIntBytes(p.lx.view(n))
		}
		if !ok || limit > int64(int(^uint(0)>>1)) {
			return nil, p.errAt(n, "bad LIMIT %q", p.lx.view(n))
		}
		q.Limit = int(limit)
		if p.acceptSoftKeyword("OFFSET") {
			m := p.next()
			if m.kind != tokNumber || hasDot(p.lx.view(m)) {
				return nil, p.errAt(m, "expected number after OFFSET, got %s", p.describe(m))
			}
			off, ok := parseIntBytes(p.lx.view(m))
			if !ok || off > int64(int(^uint(0)>>1)) {
				return nil, p.errAt(m, "bad OFFSET %q", p.lx.view(m))
			}
			q.Offset = int(off)
		}
	}
	if err := p.finish(); err != nil {
		return nil, err
	}
	p.keepAST = true
	return q, nil
}

// acceptSoftKeyword consumes an identifier that ASCII case-folds to word
// (uppercase). Soft keywords stay ordinary identifiers everywhere else in
// the grammar, so adding one can't invalidate existing column names.
func (p *parser) acceptSoftKeyword(word string) bool {
	t := p.peek()
	if t.kind != tokIdent {
		return false
	}
	view := p.lx.view(t)
	if len(view) != len(word) {
		return false
	}
	for i := 0; i < len(word); i++ {
		c := view[i]
		if 'a' <= c && c <= 'z' {
			c -= 'a' - 'A'
		}
		if c != word[i] {
			return false
		}
	}
	p.pos++
	return true
}
