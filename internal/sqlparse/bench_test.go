package sqlparse

// Front-end microbenchmarks. BenchmarkTokenize is the zero-allocation
// contract: after warmup (the token slice reaches steady-state capacity),
// lexing must report 0 allocs/op — the CI baseline gate fails on any
// regression. BenchmarkParseQuery is the cold path a plan-cache miss pays:
// lex + parse + bind + validate, arena slabs handed off to the result.

import (
	"fmt"
	"testing"

	"repro/internal/relation"
)

const benchSQL = `
	SELECT s.sale_id AS id, s.amount, st.region, st.store_id
	FROM SALES s, STORES st
	WHERE s.store_id = st.store_id AND s.amount >= 10.0 AND s.amount <= 5000.0
	  AND st.region <> 'none' AND s.sale_id > 0 AND NOT s.amount = 13.0
	ORDER BY 2 DESC, region LIMIT 100 OFFSET 10`

func benchResolve(view string) (relation.Schema, error) {
	switch view {
	case "SALES":
		return relation.Schema{
			{Name: "sale_id", Kind: relation.KindInt},
			{Name: "store_id", Kind: relation.KindInt},
			{Name: "amount", Kind: relation.KindFloat},
		}, nil
	case "STORES":
		return relation.Schema{
			{Name: "store_id", Kind: relation.KindInt},
			{Name: "region", Kind: relation.KindString},
		}, nil
	}
	return nil, fmt.Errorf("unknown view %q", view)
}

func BenchmarkTokenize(b *testing.B) {
	var lx lexer
	if err := lx.lex(benchSQL); err != nil { // warmup: token slice reaches capacity
		b.Fatal(err)
	}
	tokens := len(lx.toks)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := lx.lex(benchSQL); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(tokens), "tokens")
}

func BenchmarkParseQuery(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ParseQuery(benchSQL, benchResolve); err != nil {
			b.Fatal(err)
		}
	}
}
