package sqlparse

import (
	"repro/internal/relation"

	"testing"
)

// FuzzParse feeds arbitrary statements through the lexer, parser and binder:
// whatever the input, Parse must return cleanly (result or error), never
// panic or hang. `go test -fuzz=FuzzParse ./internal/sqlparse` explores; in
// normal runs the seed corpus executes as regression cases.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"SELECT a FROM R",
		"SELECT a, b FROM R WHERE a = 1 AND b <> 2",
		"SELECT r.a AS x, SUM(s.c) AS t FROM R r, S s WHERE r.b = s.b GROUP BY r.a",
		"SELECT DISTINCT a FROM R",
		"SELECT COUNT(*) FROM R",
		"SELECT a FROM R WHERE a BETWEEN 1 AND 2 OR NOT b = 3",
		"SELECT a FROM R WHERE d < DATE '1995-03-15'",
		"SELECT (a + 2) * 3.5 - -1 FROM R",
		"SELECT a FROM R WHERE name = 'it''s'",
		"CREATE VIEW V AS SELECT a FROM R;",
		"SELECT",
		"SELECT FROM",
		"'",
		"SELECT a FROM R WHERE",
		"SELECT a FROM R GROUP BY",
		"((((((",
		"SELECT a FROM R ORDER BY a LIMIT 3",
		"\x00\xff",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	// Every view name resolves to R's schema so binding paths execute too.
	resolveAny := func(string) (relation.Schema, error) { return testSchemas["R"], nil }
	f.Fuzz(func(t *testing.T, sql string) {
		// All three entry points must be panic-free.
		_, _ = Parse(sql, resolveAny)
		_, _, _ = ParseCreateView(sql, resolveAny)
		_, _ = ParseQuery(sql, resolveAny)
	})
}
