package sqlparse

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/delta"
	"repro/internal/relation"
)

var testSchemas = map[string]relation.Schema{
	"R": {{Name: "a", Kind: relation.KindInt}, {Name: "b", Kind: relation.KindInt}, {Name: "d", Kind: relation.KindDate}},
	"S": {{Name: "b", Kind: relation.KindInt}, {Name: "c", Kind: relation.KindFloat}, {Name: "name", Kind: relation.KindString}},
}

func resolve(view string) (relation.Schema, error) {
	s, ok := testSchemas[view]
	if !ok {
		return nil, fmt.Errorf("unknown view %q", view)
	}
	return s, nil
}

func TestParseSimpleSelect(t *testing.T) {
	cq, err := Parse("SELECT a, b FROM R", resolve)
	if err != nil {
		t.Fatal(err)
	}
	if cq.IsAggregate() || len(cq.Select) != 2 {
		t.Fatalf("cq = %s", cq)
	}
	if cq.OutputSchema().String() != "a INTEGER, b INTEGER" {
		t.Errorf("output = %s", cq.OutputSchema())
	}
}

func TestParseJoinWhere(t *testing.T) {
	cq, err := Parse(`
		SELECT r.a AS key, s.c
		FROM R r, S s
		WHERE r.b = s.b AND s.c > 1.5 AND s.name = 'hello'`, resolve)
	if err != nil {
		t.Fatal(err)
	}
	if len(cq.Refs) != 2 || len(cq.Filters) != 3 {
		t.Fatalf("cq = %s", cq)
	}
	if cq.OutputSchema().String() != "key INTEGER, c FLOAT" {
		t.Errorf("output = %s", cq.OutputSchema())
	}
}

func TestParseGroupByAggregates(t *testing.T) {
	cq, err := Parse(`
		SELECT name, SUM(c) AS total, COUNT(*) AS n, AVG(c), MIN(b), MAX(b)
		FROM S GROUP BY name`, resolve)
	if err != nil {
		t.Fatal(err)
	}
	if !cq.IsAggregate() || len(cq.GroupBy) != 1 || len(cq.Aggs) != 5 {
		t.Fatalf("cq = %s", cq)
	}
	if cq.GroupBy[0].Name != "name" {
		t.Errorf("group name = %q", cq.GroupBy[0].Name)
	}
	wantKinds := []delta.AggKind{delta.AggSum, delta.AggCount, delta.AggAvg, delta.AggMin, delta.AggMax}
	for i, w := range wantKinds {
		if cq.Aggs[i].Spec.Kind != w {
			t.Errorf("agg %d = %v, want %v", i, cq.Aggs[i].Spec.Kind, w)
		}
	}
	// Auto names for unnamed aggregates.
	if cq.Aggs[2].Name == "" {
		t.Errorf("AVG got no name")
	}
}

func TestParseQ3Shape(t *testing.T) {
	// The TPC-D Q3 pattern: dates, arithmetic, multi-way join, group-by.
	cq, err := Parse(`
		SELECT r.a, r.d, SUM(s.c * (1 - 0.05)) AS revenue
		FROM R r, S s
		WHERE r.b = s.b AND r.d < DATE '1995-03-15' AND r.d > DATE '1990-01-01'
		GROUP BY r.a, r.d`, resolve)
	if err != nil {
		t.Fatal(err)
	}
	if len(cq.GroupBy) != 2 || len(cq.Aggs) != 1 {
		t.Fatalf("cq = %s", cq)
	}
	if cq.Aggs[0].Spec.ValueKind != relation.KindFloat {
		t.Errorf("revenue kind = %v", cq.Aggs[0].Spec.ValueKind)
	}
}

func TestParseDistinct(t *testing.T) {
	cq, err := Parse("SELECT DISTINCT a FROM R", resolve)
	if err != nil {
		t.Fatal(err)
	}
	if !cq.IsAggregate() || len(cq.GroupBy) != 1 || len(cq.Aggs) != 0 {
		t.Fatalf("DISTINCT should lower to zero-agg grouping: %s", cq)
	}
}

func TestParseGlobalAggregate(t *testing.T) {
	cq, err := Parse("SELECT SUM(c) FROM S", resolve)
	if err != nil {
		t.Fatal(err)
	}
	if !cq.IsAggregate() || len(cq.GroupBy) != 0 {
		t.Fatalf("global aggregate: %s", cq)
	}
}

func TestParseBetweenAndNot(t *testing.T) {
	cq, err := Parse("SELECT a FROM R WHERE a BETWEEN 1 AND 10 AND NOT b = 5", resolve)
	if err != nil {
		t.Fatal(err)
	}
	// BETWEEN lowers to two conjuncts... as one AND pair plus NOT conjunct.
	if len(cq.Filters) != 3 {
		t.Errorf("filters = %v", cq.Filters)
	}
}

func TestParseOrPrecedence(t *testing.T) {
	cq, err := Parse("SELECT a FROM R WHERE a = 1 OR a = 2 AND b = 3", resolve)
	if err != nil {
		t.Fatal(err)
	}
	if len(cq.Filters) != 1 {
		t.Fatalf("OR must stay one conjunct: %v", cq.Filters)
	}
	if !strings.Contains(cq.Filters[0].String(), "OR") {
		t.Errorf("filter = %s", cq.Filters[0])
	}
}

func TestParseArithmeticAndNegation(t *testing.T) {
	cq, err := Parse("SELECT (a + 2) * b - -3 AS x FROM R", resolve)
	if err != nil {
		t.Fatal(err)
	}
	if cq.Select[0].Name != "x" {
		t.Errorf("name = %q", cq.Select[0].Name)
	}
	got := cq.Select[0].E.Eval(relation.Tuple{relation.NewInt(1), relation.NewInt(4), relation.Null})
	if got.Int() != 15 { // (1+2)*4 - (-3)
		t.Errorf("eval = %v, want 15", got)
	}
}

func TestParseUnqualifiedAmbiguous(t *testing.T) {
	// b exists in both R and S.
	if _, err := Parse("SELECT b FROM R r, S s WHERE r.b = s.b", resolve); err == nil || !strings.Contains(err.Error(), "ambiguous") {
		t.Errorf("ambiguous column accepted: %v", err)
	}
}

func TestParseCreateView(t *testing.T) {
	name, cq, err := ParseCreateView("CREATE VIEW V AS SELECT a FROM R;", resolve)
	if err != nil {
		t.Fatal(err)
	}
	if name != "V" || len(cq.Select) != 1 {
		t.Errorf("name=%q cq=%s", name, cq)
	}
	if _, _, err := ParseCreateView("CREATE TABLE V AS SELECT a FROM R", resolve); err == nil {
		t.Errorf("CREATE TABLE accepted")
	}
	if _, _, err := ParseCreateView("CREATE VIEW AS SELECT a FROM R", resolve); err == nil {
		t.Errorf("missing view name accepted")
	}
}

func TestParseStringEscapes(t *testing.T) {
	cq, err := Parse("SELECT a FROM R WHERE 'it''s' = 'x'", resolve)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(cq.Filters[0].String(), "it's") {
		t.Errorf("filter = %s", cq.Filters[0])
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",                                     // no SELECT
		"SELECT",                               // empty item
		"SELECT a",                             // no FROM
		"SELECT a FROM",                        // no view
		"SELECT a FROM Z",                      // unknown view
		"SELECT zzz FROM R",                    // unknown column
		"SELECT r.zzz FROM R r",                // unknown qualified column
		"SELECT a FROM R WHERE",                // empty predicate
		"SELECT a FROM R GROUP BY",             // empty group list
		"SELECT a, SUM(b) FROM R",              // mixed without GROUP BY
		"SELECT a FROM R extra garbage here()", // trailing input
		"SELECT SUM(*) FROM R",                 // SUM(*)
		"SELECT a FROM R WHERE 'unterminated",  // lexer error
		"SELECT a FROM R WHERE a @ 1",          // bad character
		"SELECT a FROM R WHERE DATE 5",         // DATE needs string
		"SELECT a FROM R WHERE DATE 'nope'",    // bad date
		"SELECT a, b FROM R GROUP BY a",        // b not grouped
		"SELECT a AS x, b AS x FROM R",         // duplicate names
		"SELECT DISTINCT SUM(a) FROM R",        // DISTINCT + aggregate
		"SELECT 99999999999999999999 FROM R",   // int overflow
	}
	for _, sql := range bad {
		if _, err := Parse(sql, resolve); err == nil {
			t.Errorf("accepted %q", sql)
		}
	}
}

func TestParseNotEqualVariants(t *testing.T) {
	for _, op := range []string{"<>", "!="} {
		cq, err := Parse("SELECT a FROM R WHERE a "+op+" 3", resolve)
		if err != nil {
			t.Fatalf("%s: %v", op, err)
		}
		if !strings.Contains(cq.Filters[0].String(), "<>") {
			t.Errorf("%s parsed to %s", op, cq.Filters[0])
		}
	}
}

func TestParseComparisonOperators(t *testing.T) {
	row := relation.Tuple{relation.NewInt(5), relation.NewInt(2), relation.Null}
	cases := map[string]bool{
		"a = 5": true, "a <> 5": false, "a < 6": true,
		"a <= 5": true, "a > 5": false, "a >= 5": true,
	}
	for pred, want := range cases {
		cq, err := Parse("SELECT a FROM R WHERE "+pred, resolve)
		if err != nil {
			t.Fatalf("%s: %v", pred, err)
		}
		got := cq.Filters[0].Eval(row).Bool()
		if got != want {
			t.Errorf("%s = %v, want %v", pred, got, want)
		}
	}
}
