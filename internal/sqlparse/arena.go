package sqlparse

import (
	"repro/internal/algebra"
	"repro/internal/relation"
)

// arena slab-allocates expression nodes for one parse. Nodes of each kind
// are appended into a typed slab and handed out as pointers to the last
// element; when a slab fills, a fresh larger one replaces it and the old
// backing array stays alive exactly as long as the AST that points into it.
// Compared to node-per-new recursive descent this turns ~one allocation per
// operator into ~one per slab.
//
// Ownership: while a parse is running the arena belongs to the pooled
// parser. On success the resulting AST (which may be retained indefinitely
// by the plan cache or the catalog) owns the slabs, so the parser drops
// them instead of returning them to the pool; only a failed parse reuses
// its slabs.
type arena struct {
	bins   []algebra.Binary
	cols   []algebra.Col
	consts []algebra.Const
	nots   []algebra.Not
}

// slab returns s if it has room for one more element, or a fresh, larger
// empty slab. It never copies: pointers into the old slab remain valid.
func slab[T any](s []T) []T {
	if len(s) < cap(s) {
		return s
	}
	c := cap(s) * 2
	if c < 8 {
		c = 8
	}
	return make([]T, 0, c)
}

func (a *arena) binary(op algebra.BinOp, l, r algebra.Expr) *algebra.Binary {
	a.bins = slab(a.bins)
	a.bins = append(a.bins, algebra.Binary{Op: op, L: l, R: r})
	return &a.bins[len(a.bins)-1]
}

func (a *arena) col(index int, name string, typ relation.Kind) *algebra.Col {
	a.cols = slab(a.cols)
	a.cols = append(a.cols, algebra.Col{Index: index, Name: name, Typ: typ})
	return &a.cols[len(a.cols)-1]
}

func (a *arena) constant(v relation.Value) *algebra.Const {
	a.consts = slab(a.consts)
	a.consts = append(a.consts, algebra.Const{Value: v})
	return &a.consts[len(a.consts)-1]
}

func (a *arena) not(e algebra.Expr) *algebra.Not {
	a.nots = slab(a.nots)
	a.nots = append(a.nots, algebra.Not{E: e})
	return &a.nots[len(a.nots)-1]
}

// reset truncates the slabs for reuse after a failed parse (whose discarded
// nodes nothing references). Never call it after a successful parse.
func (a *arena) reset() {
	a.bins = a.bins[:0]
	a.cols = a.cols[:0]
	a.consts = a.consts[:0]
	a.nots = a.nots[:0]
}
