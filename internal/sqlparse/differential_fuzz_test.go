package sqlparse

import (
	"testing"

	"repro/internal/algebra"
	"repro/internal/relation"
	"repro/internal/sqlparse/legacy"
)

// FuzzParseDifferential drives the rewritten front end and the frozen
// pre-rewrite parser (internal/sqlparse/legacy) over the same inputs: the
// two must accept/reject identically and, on the accepted set, bind to the
// same algebra.CQ (same String form, same output schema) and the same
// presentation clauses. The only tolerated divergence is the rewrite's
// deliberate extensions — ORDER BY ordinals and LIMIT n OFFSET m — which
// the new parser may accept where the old one rejected, and nothing else.
func FuzzParseDifferential(f *testing.F) {
	seeds := []string{
		"SELECT a FROM R",
		"SELECT a, b FROM R WHERE a = 1 AND b <> 2",
		"SELECT r.a AS x, SUM(s.c) AS t FROM R r, S s WHERE r.b = s.b GROUP BY r.a",
		"SELECT DISTINCT a FROM R",
		"SELECT COUNT(*) FROM R",
		"SELECT a FROM R WHERE a BETWEEN 1 AND 2 OR NOT b = 3",
		"SELECT a FROM R WHERE NOT NOT a = 1 AND NOT b BETWEEN 1 AND 5",
		"SELECT a FROM R WHERE d < DATE '1995-03-15'",
		"SELECT (a + 2) * 3.5 - -1 FROM R",
		"SELECT a + b * 2 - a / 3 AS v FROM R WHERE a = 1 OR b = 2 AND a < 3",
		"SELECT a FROM R WHERE name = 'it''s'",
		"SELECT a FROM R WHERE a = 1 = 2",
		"CREATE VIEW V AS SELECT a FROM R;",
		"SELECT a FROM R ORDER BY a DESC LIMIT 3",
		"SELECT a, b FROM R ORDER BY 2 DESC, 1 LIMIT 5",
		"SELECT a FROM R LIMIT 10 OFFSET 4",
		"SELECT a AS offset FROM R",
		"SELECT offset FROM R",
		"SELECT a FROM R ORDER BY 0",
		"SELECT a FROM R ORDER BY 1.5",
		"SELECT",
		"SELECT FROM",
		"'",
		"select a from r where a between 1 and 2",
		"SELECT _x, a1 FROM R",
		"((((((",
		"\x00\xff",
		"SELECT \xc2\xaa FROM R",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	// Every view name resolves to R's schema so binding paths execute too.
	resolveAny := func(string) (relation.Schema, error) { return testSchemas["R"], nil }

	cqEqual := func(a, b *algebra.CQ) bool {
		return a.String() == b.String() &&
			a.OutputSchema().String() == b.OutputSchema().String()
	}

	f.Fuzz(func(t *testing.T, sql string) {
		// Parse (view definitions): strict equivalence, no extensions.
		nc, nerr := Parse(sql, resolveAny)
		oc, oerr := legacy.Parse(sql, resolveAny)
		switch {
		case (nerr == nil) != (oerr == nil):
			t.Fatalf("Parse accept/reject diverged on %q: new err=%v, legacy err=%v", sql, nerr, oerr)
		case nerr == nil && !cqEqual(nc, oc):
			t.Fatalf("Parse bound CQs diverged on %q:\nnew    %s :: %s\nlegacy %s :: %s",
				sql, nc, nc.OutputSchema(), oc, oc.OutputSchema())
		}

		// ParseCreateView: strict equivalence.
		nname, ncv, nerr2 := ParseCreateView(sql, resolveAny)
		oname, ocv, oerr2 := legacy.ParseCreateView(sql, resolveAny)
		switch {
		case (nerr2 == nil) != (oerr2 == nil):
			t.Fatalf("ParseCreateView accept/reject diverged on %q: new err=%v, legacy err=%v", sql, nerr2, oerr2)
		case nerr2 == nil && (nname != oname || !cqEqual(ncv, ocv)):
			t.Fatalf("ParseCreateView diverged on %q: new (%s, %s), legacy (%s, %s)", sql, nname, ncv, oname, ocv)
		}

		// ParseQuery: the new parser may accept extension syntax the old
		// one rejects; any other divergence is a bug.
		nq, nqerr := ParseQuery(sql, resolveAny)
		oq, oqerr := legacy.ParseQuery(sql, resolveAny)
		switch {
		case nqerr != nil && oqerr == nil:
			t.Fatalf("ParseQuery rejects %q which legacy accepts: %v", sql, nqerr)
		case nqerr == nil && oqerr != nil:
			if !usesQueryExtensions(sql) {
				t.Fatalf("ParseQuery accepts %q which legacy rejects (%v) without extension syntax", sql, oqerr)
			}
		case nqerr == nil:
			if !cqEqual(nq.CQ, oq.CQ) || nq.Limit != oq.Limit || len(nq.OrderBy) != len(oq.OrderBy) {
				t.Fatalf("ParseQuery diverged on %q", sql)
			}
			for i := range nq.OrderBy {
				if nq.OrderBy[i].Column != oq.OrderBy[i].Column || nq.OrderBy[i].Desc != oq.OrderBy[i].Desc {
					t.Fatalf("ParseQuery ORDER BY key %d diverged on %q", i, sql)
				}
			}
			if nq.Offset != 0 {
				t.Fatalf("ParseQuery produced OFFSET %d on %q which legacy accepted", nq.Offset, sql)
			}
		}
	})
}

// usesQueryExtensions reports whether sql contains syntax only the
// rewritten ParseQuery understands: a numeric ORDER BY key (ordinal) or
// LIMIT n followed by the soft keyword OFFSET. Both constructs can only be
// reached through the query-level clause positions, so matching the token
// shapes anywhere in the stream cannot excuse an unrelated divergence.
func usesQueryExtensions(sql string) bool {
	var lx lexer
	if lx.lex(sql) != nil {
		return false
	}
	toks := lx.toks
	foldEq := func(b []byte, up string) bool {
		if len(b) != len(up) {
			return false
		}
		for i := 0; i < len(up); i++ {
			c := b[i]
			if 'a' <= c && c <= 'z' {
				c -= 'a' - 'A'
			}
			if c != up[i] {
				return false
			}
		}
		return true
	}
	for i := 0; i < len(toks); i++ {
		t := toks[i]
		if t.kind == tokKeyword && t.kw == kwLimit && i+2 < len(toks) &&
			toks[i+1].kind == tokNumber &&
			toks[i+2].kind == tokIdent && foldEq(lx.view(toks[i+2]), "OFFSET") {
			return true
		}
		if t.kind == tokKeyword && t.kw == kwOrder && i+1 < len(toks) &&
			toks[i+1].kind == tokKeyword && toks[i+1].kw == kwBy {
			// Walk the key list: ident [ASC|DESC] (, ...)* — a number in
			// key position is the ordinal extension.
			for j := i + 2; j < len(toks); {
				if toks[j].kind == tokNumber {
					return true
				}
				if toks[j].kind != tokIdent {
					break
				}
				j++
				if j < len(toks) && toks[j].kind == tokKeyword &&
					(toks[j].kw == kwAsc || toks[j].kw == kwDesc) {
					j++
				}
				if j < len(toks) && toks[j].kind == tokSymbol && toks[j].sym == symComma {
					j++
					continue
				}
				break
			}
		}
	}
	return false
}
