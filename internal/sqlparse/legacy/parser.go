package legacy

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/algebra"
	"repro/internal/delta"
	"repro/internal/relation"
)

// Resolver looks up the output schema of a warehouse view by name.
type Resolver func(view string) (relation.Schema, error)

// Parse parses and binds one SELECT statement into an algebra.CQ using the
// resolver for the FROM-clause view schemas.
//
// Supported grammar (the paper's view-definition class):
//
//	SELECT [DISTINCT] item (, item)*
//	FROM view [alias] (, view [alias])*
//	[WHERE conjunctive boolean expression]
//	[GROUP BY expr (, expr)*]
//
// where item is an expression with an optional AS name, or an aggregate
// SUM/AVG/MIN/MAX(expr), COUNT(*).
func Parse(sql string, resolve Resolver) (*algebra.CQ, error) {
	toks, err := lex(sql)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, resolve: resolve}
	cq, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	// Allow a trailing semicolon.
	if p.peek().kind == tokSymbol && p.peek().text == ";" {
		p.next()
	}
	if p.peek().kind != tokEOF {
		return nil, fmt.Errorf("sqlparse: trailing input at %s", p.peek())
	}
	return cq, nil
}

// ParseCreateView parses CREATE VIEW name AS SELECT …, returning the view
// name and its definition.
func ParseCreateView(sql string, resolve Resolver) (string, *algebra.CQ, error) {
	toks, err := lex(sql)
	if err != nil {
		return "", nil, err
	}
	p := &parser{toks: toks, resolve: resolve}
	if err := p.expectKeyword("CREATE"); err != nil {
		return "", nil, err
	}
	if err := p.expectKeyword("VIEW"); err != nil {
		return "", nil, err
	}
	name := p.next()
	if name.kind != tokIdent {
		return "", nil, fmt.Errorf("sqlparse: expected view name, got %s", name)
	}
	if err := p.expectKeyword("AS"); err != nil {
		return "", nil, err
	}
	cq, err := p.parseSelect()
	if err != nil {
		return "", nil, err
	}
	if p.peek().kind == tokSymbol && p.peek().text == ";" {
		p.next()
	}
	if p.peek().kind != tokEOF {
		return "", nil, fmt.Errorf("sqlparse: trailing input at %s", p.peek())
	}
	return name.text, cq, nil
}

// parser is a recursive-descent parser with single-token lookahead. Select
// items are parsed as raw syntax first, then bound once the FROM clause has
// established the reference schemas.
type parser struct {
	toks    []token
	pos     int
	resolve Resolver

	refs   []algebra.Ref
	joined relation.Schema
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) acceptKeyword(kw string) bool {
	if p.peek().kind == tokKeyword && p.peek().text == kw {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return fmt.Errorf("sqlparse: expected %s, got %s", kw, p.peek())
	}
	return nil
}

func (p *parser) acceptSymbol(sym string) bool {
	if p.peek().kind == tokSymbol && p.peek().text == sym {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectSymbol(sym string) error {
	if !p.acceptSymbol(sym) {
		return fmt.Errorf("sqlparse: expected %q, got %s", sym, p.peek())
	}
	return nil
}

// rawItem is an unbound select item.
type rawItem struct {
	agg     string // "" for plain expressions; SUM/COUNT/AVG/MIN/MAX
	star    bool   // COUNT(*)
	start   int    // token range of the inner expression
	end     int
	name    string // explicit AS name, if any
	implied string // fallback name from a bare column reference
}

func (p *parser) parseSelect() (*algebra.CQ, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	distinct := p.acceptKeyword("DISTINCT")

	// Scan select items as token ranges; bind after FROM is known.
	var items []rawItem
	for {
		it, err := p.scanItem()
		if err != nil {
			return nil, err
		}
		items = append(items, it)
		if !p.acceptSymbol(",") {
			break
		}
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	for {
		view := p.next()
		if view.kind != tokIdent {
			return nil, fmt.Errorf("sqlparse: expected view name, got %s", view)
		}
		alias := view.text
		if p.peek().kind == tokIdent {
			alias = p.next().text
		}
		schema, err := p.resolve(view.text)
		if err != nil {
			return nil, fmt.Errorf("sqlparse: FROM %s: %w", view.text, err)
		}
		p.refs = append(p.refs, algebra.Ref{Alias: alias, View: view.text, Schema: schema.Clone()})
		if !p.acceptSymbol(",") {
			break
		}
	}
	for _, r := range p.refs {
		p.joined = append(p.joined, r.Schema.Qualify(r.Alias)...)
	}

	cq := &algebra.CQ{Refs: p.refs}

	if p.acceptKeyword("WHERE") {
		pred, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		cq.Filters = algebra.Conjuncts(pred)
	}

	var groupBy []algebra.NamedExpr
	hasGroup := false
	if p.acceptKeyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		hasGroup = true
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			groupBy = append(groupBy, algebra.NamedExpr{Name: "", E: e})
			if !p.acceptSymbol(",") {
				break
			}
		}
	}

	// Bind the select items now that refs are known.
	var selects []algebra.NamedExpr
	var aggs []algebra.AggExpr
	autoName := 0
	nameOf := func(it rawItem, prefix string) string {
		if it.name != "" {
			return it.name
		}
		if it.implied != "" {
			return it.implied
		}
		autoName++
		return fmt.Sprintf("%s%d", prefix, autoName)
	}
	for _, it := range items {
		if it.agg != "" {
			var input algebra.Expr
			if !it.star {
				e, err := p.bindRange(it.start, it.end)
				if err != nil {
					return nil, err
				}
				input = e
			}
			kind, err := aggKind(it.agg)
			if err != nil {
				return nil, err
			}
			vk := relation.KindInt
			if input != nil {
				vk = input.Kind()
			}
			aggs = append(aggs, algebra.AggExpr{
				Name:  nameOf(it, strings.ToLower(it.agg)),
				Spec:  delta.AggSpec{Kind: kind, ValueKind: vk},
				Input: input,
			})
			continue
		}
		e, err := p.bindRange(it.start, it.end)
		if err != nil {
			return nil, err
		}
		selects = append(selects, algebra.NamedExpr{Name: nameOf(it, "col"), E: e})
	}

	switch {
	case hasGroup:
		if len(selects) > 0 {
			// Non-aggregate select items must match group-by expressions;
			// they become named grouping outputs.
			for _, s := range selects {
				found := false
				for gi, g := range groupBy {
					if g.E.String() == s.E.String() {
						groupBy[gi].Name = s.Name
						found = true
						break
					}
				}
				if !found {
					return nil, fmt.Errorf("sqlparse: select item %s is neither aggregated nor grouped", s.Name)
				}
			}
		}
		for gi := range groupBy {
			if groupBy[gi].Name == "" {
				groupBy[gi].Name = impliedName(groupBy[gi].E)
			}
		}
		cq.GroupBy = groupBy
		cq.Aggs = aggs
	case len(aggs) > 0:
		if len(selects) > 0 {
			return nil, fmt.Errorf("sqlparse: mixing aggregates and plain columns requires GROUP BY")
		}
		cq.GroupBy = []algebra.NamedExpr{} // global aggregate
		cq.Aggs = aggs
	default:
		cq.Select = selects
		if distinct {
			cq.GroupBy = cq.Select
			cq.Select = nil
		}
	}
	if distinct && (hasGroup || len(aggs) > 0) {
		return nil, fmt.Errorf("sqlparse: DISTINCT with GROUP BY or aggregates is not supported")
	}
	if err := cq.Validate(); err != nil {
		return nil, err
	}
	return cq, nil
}

func impliedName(e algebra.Expr) string {
	if c, ok := e.(*algebra.Col); ok {
		if i := strings.LastIndexByte(c.Name, '.'); i >= 0 {
			return c.Name[i+1:]
		}
		return c.Name
	}
	return strings.ReplaceAll(e.String(), " ", "")
}

func aggKind(name string) (delta.AggKind, error) {
	switch name {
	case "SUM":
		return delta.AggSum, nil
	case "COUNT":
		return delta.AggCount, nil
	case "AVG":
		return delta.AggAvg, nil
	case "MIN":
		return delta.AggMin, nil
	case "MAX":
		return delta.AggMax, nil
	default:
		return 0, fmt.Errorf("sqlparse: unknown aggregate %q", name)
	}
}

// scanItem records one select item's token span without binding it.
func (p *parser) scanItem() (rawItem, error) {
	var it rawItem
	t := p.peek()
	if t.kind == tokKeyword {
		switch t.text {
		case "SUM", "COUNT", "AVG", "MIN", "MAX":
			it.agg = t.text
			p.next()
			if err := p.expectSymbol("("); err != nil {
				return it, err
			}
			if p.acceptSymbol("*") {
				if it.agg != "COUNT" {
					return it, fmt.Errorf("sqlparse: %s(*) is not supported", it.agg)
				}
				it.star = true
			} else {
				it.start = p.pos
				depth := 0
				for {
					tok := p.peek()
					if tok.kind == tokEOF {
						return it, fmt.Errorf("sqlparse: unterminated aggregate")
					}
					if tok.kind == tokSymbol {
						if tok.text == "(" {
							depth++
						}
						if tok.text == ")" {
							if depth == 0 {
								break
							}
							depth--
						}
					}
					p.next()
				}
				it.end = p.pos
			}
			if err := p.expectSymbol(")"); err != nil {
				return it, err
			}
		}
	}
	if it.agg == "" {
		it.start = p.pos
		depth := 0
	scan:
		for {
			tok := p.peek()
			switch {
			case tok.kind == tokEOF:
				break scan
			case tok.kind == tokKeyword && (tok.text == "FROM" || tok.text == "AS") && depth == 0:
				break scan
			case tok.kind == tokSymbol && tok.text == "," && depth == 0:
				break scan
			case tok.kind == tokSymbol && tok.text == "(":
				depth++
			case tok.kind == tokSymbol && tok.text == ")":
				depth--
			}
			p.next()
		}
		it.end = p.pos
		if it.end == it.start {
			return it, fmt.Errorf("sqlparse: empty select item at %s", p.peek())
		}
		// A bare (possibly qualified) column gives the implied output name.
		span := p.toks[it.start:it.end]
		if len(span) == 1 && span[0].kind == tokIdent {
			it.implied = span[0].text
		}
		if len(span) == 3 && span[0].kind == tokIdent && span[1].text == "." && span[2].kind == tokIdent {
			it.implied = span[2].text
		}
	}
	if p.acceptKeyword("AS") {
		name := p.next()
		if name.kind != tokIdent {
			return it, fmt.Errorf("sqlparse: expected output name after AS, got %s", name)
		}
		it.name = name.text
	}
	return it, nil
}

// bindRange parses the token subrange [start, end) as an expression.
func (p *parser) bindRange(start, end int) (algebra.Expr, error) {
	sub := &parser{
		toks:    append(append([]token(nil), p.toks[start:end]...), token{kind: tokEOF}),
		resolve: p.resolve,
		refs:    p.refs,
		joined:  p.joined,
	}
	e, err := sub.parseExpr()
	if err != nil {
		return nil, err
	}
	if sub.peek().kind != tokEOF {
		return nil, fmt.Errorf("sqlparse: trailing tokens in expression at %s", sub.peek())
	}
	return e, nil
}

// parseExpr parses OR-expressions (lowest precedence).
func (p *parser) parseExpr() (algebra.Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("OR") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &algebra.Binary{Op: algebra.OpOr, L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseAnd() (algebra.Expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("AND") {
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = &algebra.Binary{Op: algebra.OpAnd, L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseNot() (algebra.Expr, error) {
	if p.acceptKeyword("NOT") {
		e, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &algebra.Not{E: e}, nil
	}
	return p.parseComparison()
}

var cmpOps = map[string]algebra.BinOp{
	"=": algebra.OpEq, "<>": algebra.OpNe, "<": algebra.OpLt,
	"<=": algebra.OpLe, ">": algebra.OpGt, ">=": algebra.OpGe,
}

func (p *parser) parseComparison() (algebra.Expr, error) {
	left, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	if p.acceptKeyword("BETWEEN") {
		lo, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return &algebra.Binary{
			Op: algebra.OpAnd,
			L:  &algebra.Binary{Op: algebra.OpGe, L: left, R: lo},
			R:  &algebra.Binary{Op: algebra.OpLe, L: left, R: hi},
		}, nil
	}
	if p.peek().kind == tokSymbol {
		if op, ok := cmpOps[p.peek().text]; ok {
			p.next()
			right, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			return &algebra.Binary{Op: op, L: left, R: right}, nil
		}
	}
	return left, nil
}

func (p *parser) parseAdditive() (algebra.Expr, error) {
	left, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for p.peek().kind == tokSymbol && (p.peek().text == "+" || p.peek().text == "-") {
		op := algebra.OpAdd
		if p.next().text == "-" {
			op = algebra.OpSub
		}
		right, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		left = &algebra.Binary{Op: op, L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseMultiplicative() (algebra.Expr, error) {
	left, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for p.peek().kind == tokSymbol && (p.peek().text == "*" || p.peek().text == "/") {
		op := algebra.OpMul
		if p.next().text == "/" {
			op = algebra.OpDiv
		}
		right, err := p.parsePrimary()
		if err != nil {
			return nil, err
		}
		left = &algebra.Binary{Op: op, L: left, R: right}
	}
	return left, nil
}

func (p *parser) parsePrimary() (algebra.Expr, error) {
	t := p.next()
	switch {
	case t.kind == tokSymbol && t.text == "(":
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return e, nil
	case t.kind == tokNumber:
		if strings.ContainsRune(t.text, '.') {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, fmt.Errorf("sqlparse: bad number %q: %w", t.text, err)
			}
			return &algebra.Const{Value: relation.NewFloat(f)}, nil
		}
		i, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("sqlparse: bad number %q: %w", t.text, err)
		}
		return &algebra.Const{Value: relation.NewInt(i)}, nil
	case t.kind == tokString:
		return &algebra.Const{Value: relation.NewString(t.text)}, nil
	case t.kind == tokKeyword && t.text == "DATE":
		lit := p.next()
		if lit.kind != tokString {
			return nil, fmt.Errorf("sqlparse: expected date string after DATE, got %s", lit)
		}
		v, err := relation.DateFromString(lit.text)
		if err != nil {
			return nil, err
		}
		return &algebra.Const{Value: v}, nil
	case t.kind == tokSymbol && t.text == "-":
		e, err := p.parsePrimary()
		if err != nil {
			return nil, err
		}
		return &algebra.Binary{Op: algebra.OpSub, L: &algebra.Const{Value: relation.NewInt(0)}, R: e}, nil
	case t.kind == tokIdent:
		name := t.text
		if p.acceptSymbol(".") {
			col := p.next()
			if col.kind != tokIdent {
				return nil, fmt.Errorf("sqlparse: expected column after %q., got %s", name, col)
			}
			return p.bindColumn(name + "." + col.text)
		}
		return p.bindUnqualified(name)
	default:
		return nil, fmt.Errorf("sqlparse: unexpected token %s", t)
	}
}

// bindColumn resolves a qualified alias.column reference.
func (p *parser) bindColumn(qualified string) (algebra.Expr, error) {
	idx := p.joined.ColumnIndex(qualified)
	if idx < 0 {
		return nil, fmt.Errorf("sqlparse: unknown column %q", qualified)
	}
	return &algebra.Col{Index: idx, Name: qualified, Typ: p.joined[idx].Kind}, nil
}

// bindUnqualified resolves a bare column name, requiring it to be
// unambiguous across the FROM-clause references.
func (p *parser) bindUnqualified(name string) (algebra.Expr, error) {
	found := -1
	qname := ""
	for _, r := range p.refs {
		if i := r.Schema.ColumnIndex(name); i >= 0 {
			q := r.Alias + "." + name
			j := p.joined.ColumnIndex(q)
			if found >= 0 {
				return nil, fmt.Errorf("sqlparse: column %q is ambiguous (%s and %s)", name, qname, q)
			}
			found = j
			qname = q
		}
	}
	if found < 0 {
		return nil, fmt.Errorf("sqlparse: unknown column %q", name)
	}
	return &algebra.Col{Index: found, Name: qname, Typ: p.joined[found].Kind}, nil
}
