// Package legacy freezes the pre-PR-7 sqlparse front end (string-token
// lexer with a map keyword table, node-per-new recursive descent) as a
// differential oracle: FuzzParseDifferential in the parent package checks
// that the zero-allocation rewrite accepts/rejects exactly the same inputs
// and binds them to the same algebra.CQ. It is reference-only — nothing on
// the serving path imports it — and can be deleted once the differential
// corpus has aged enough to retire the oracle.
package legacy

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexer output.
type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokKeyword
	tokNumber
	tokString
	tokSymbol // punctuation and operators
)

type token struct {
	kind tokenKind
	text string // keywords upper-cased; idents preserved; symbols literal
	pos  int
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.text)
}

var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"AND": true, "OR": true, "NOT": true, "AS": true, "DISTINCT": true,
	"SUM": true, "COUNT": true, "AVG": true, "MIN": true, "MAX": true,
	"DATE": true, "BETWEEN": true, "CREATE": true, "VIEW": true,
	"ORDER": true, "LIMIT": true, "ASC": true, "DESC": true,
}

// lex splits the input into tokens.
func lex(input string) ([]token, error) {
	var toks []token
	i := 0
	n := len(input)
	for i < n {
		c := input[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '\'':
			j := i + 1
			var sb strings.Builder
			for {
				if j >= n {
					return nil, fmt.Errorf("sqlparse: unterminated string at offset %d", i)
				}
				if input[j] == '\'' {
					if j+1 < n && input[j+1] == '\'' { // escaped quote
						sb.WriteByte('\'')
						j += 2
						continue
					}
					break
				}
				sb.WriteByte(input[j])
				j++
			}
			toks = append(toks, token{kind: tokString, text: sb.String(), pos: i})
			i = j + 1
		case c >= '0' && c <= '9' || (c == '.' && i+1 < n && input[i+1] >= '0' && input[i+1] <= '9'):
			j := i
			seenDot := false
			for j < n && (input[j] >= '0' && input[j] <= '9' || (input[j] == '.' && !seenDot)) {
				if input[j] == '.' {
					seenDot = true
				}
				j++
			}
			toks = append(toks, token{kind: tokNumber, text: input[i:j], pos: i})
			i = j
		case isIdentStart(rune(c)):
			j := i
			for j < n && isIdentPart(rune(input[j])) {
				j++
			}
			word := input[i:j]
			up := strings.ToUpper(word)
			if keywords[up] {
				toks = append(toks, token{kind: tokKeyword, text: up, pos: i})
			} else {
				toks = append(toks, token{kind: tokIdent, text: word, pos: i})
			}
			i = j
		default:
			// Multi-character operators first.
			for _, op := range []string{"<>", "<=", ">=", "!="} {
				if strings.HasPrefix(input[i:], op) {
					text := op
					if op == "!=" {
						text = "<>"
					}
					toks = append(toks, token{kind: tokSymbol, text: text, pos: i})
					i += len(op)
					goto next
				}
			}
			switch c {
			case '(', ')', ',', '=', '<', '>', '+', '-', '*', '/', '.', ';':
				toks = append(toks, token{kind: tokSymbol, text: string(c), pos: i})
				i++
			default:
				return nil, fmt.Errorf("sqlparse: unexpected character %q at offset %d", c, i)
			}
		next:
		}
	}
	toks = append(toks, token{kind: tokEOF, pos: n})
	return toks, nil
}

func isIdentStart(r rune) bool { return r == '_' || unicode.IsLetter(r) }
func isIdentPart(r rune) bool  { return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r) }
