package legacy

import (
	"fmt"
	"strconv"

	"repro/internal/algebra"
)

// OrderKey is one ORDER BY key of an ad-hoc query: an output column index
// and a direction.
type OrderKey struct {
	Column int
	Desc   bool
}

// Query is a parsed ad-hoc (OLAP) query: a view-definition-shaped body plus
// presentation clauses. ORDER BY and LIMIT are presentation only — they are
// meaningful for queries, not for materialized view definitions, which is
// why Parse (the view-definition entry point) rejects them.
type Query struct {
	CQ      *algebra.CQ
	OrderBy []OrderKey
	// Limit caps the returned rows; < 0 means no limit.
	Limit int
}

// ParseQuery parses a SELECT with optional trailing ORDER BY and LIMIT
// clauses, binding against the resolver. ORDER BY keys are output column
// names (optionally followed by ASC or DESC).
func ParseQuery(sql string, resolve Resolver) (*Query, error) {
	toks, err := lex(sql)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, resolve: resolve}
	cq, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	q := &Query{CQ: cq, Limit: -1}
	out := cq.OutputSchema()

	if p.acceptKeyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			col := p.next()
			if col.kind != tokIdent {
				return nil, fmt.Errorf("sqlparse: expected output column in ORDER BY, got %s", col)
			}
			idx := out.ColumnIndex(col.text)
			if idx < 0 {
				return nil, fmt.Errorf("sqlparse: ORDER BY %q is not an output column (have %v)", col.text, out.Names())
			}
			key := OrderKey{Column: idx}
			switch {
			case p.acceptKeyword("ASC"):
			case p.acceptKeyword("DESC"):
				key.Desc = true
			}
			q.OrderBy = append(q.OrderBy, key)
			if !p.acceptSymbol(",") {
				break
			}
		}
	}
	if p.acceptKeyword("LIMIT") {
		n := p.next()
		if n.kind != tokNumber {
			return nil, fmt.Errorf("sqlparse: expected number after LIMIT, got %s", n)
		}
		limit, err := strconv.Atoi(n.text)
		if err != nil || limit < 0 {
			return nil, fmt.Errorf("sqlparse: bad LIMIT %q", n.text)
		}
		q.Limit = limit
	}
	if p.peek().kind == tokSymbol && p.peek().text == ";" {
		p.next()
	}
	if p.peek().kind != tokEOF {
		return nil, fmt.Errorf("sqlparse: trailing input at %s", p.peek())
	}
	return q, nil
}
