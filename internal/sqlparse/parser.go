package sqlparse

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/algebra"
	"repro/internal/delta"
	"repro/internal/relation"
)

// Resolver looks up the output schema of a warehouse view by name.
type Resolver func(view string) (relation.Schema, error)

// parseCalls counts front-end invocations (Parse, ParseCreateView,
// ParseQuery). The serve-level plan-cache tests use it to prove a cache
// hit performs zero parser work.
var parseCalls atomic.Uint64

// ParseCalls returns the process-wide number of parser entry-point calls.
func ParseCalls() uint64 { return parseCalls.Load() }

// parserPool recycles parsers — and with them the lexer's source/token
// buffers and the select-item scratch — across parses. The expression
// arena and the ref slice are only recycled after failed parses: a
// successful parse hands their backing arrays to the returned AST, which
// the plan cache or the catalog may retain indefinitely.
var parserPool = sync.Pool{New: func() any { return new(parser) }}

// Parse parses and binds one SELECT statement into an algebra.CQ using the
// resolver for the FROM-clause view schemas.
//
// Supported grammar (the paper's view-definition class):
//
//	SELECT [DISTINCT] item (, item)*
//	FROM view [alias] (, view [alias])*
//	[WHERE conjunctive boolean expression]
//	[GROUP BY expr (, expr)*]
//
// where item is an expression with an optional AS name, or an aggregate
// SUM/AVG/MIN/MAX(expr), COUNT(*).
func Parse(sql string, resolve Resolver) (*algebra.CQ, error) {
	parseCalls.Add(1)
	p, err := newParser(sql, resolve)
	if err != nil {
		return nil, err
	}
	defer p.release()
	cq, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	if err := p.finish(); err != nil {
		return nil, err
	}
	p.keepAST = true
	return cq, nil
}

// ParseCreateView parses CREATE VIEW name AS SELECT …, returning the view
// name and its definition.
func ParseCreateView(sql string, resolve Resolver) (string, *algebra.CQ, error) {
	parseCalls.Add(1)
	p, err := newParser(sql, resolve)
	if err != nil {
		return "", nil, err
	}
	defer p.release()
	if err := p.expectKeyword(kwCreate); err != nil {
		return "", nil, err
	}
	if err := p.expectKeyword(kwView); err != nil {
		return "", nil, err
	}
	name := p.next()
	if name.kind != tokIdent {
		return "", nil, p.errAt(name, "expected view name, got %s", p.describe(name))
	}
	if err := p.expectKeyword(kwAs); err != nil {
		return "", nil, err
	}
	cq, err := p.parseSelect()
	if err != nil {
		return "", nil, err
	}
	if err := p.finish(); err != nil {
		return "", nil, err
	}
	p.keepAST = true
	return p.text(name), cq, nil
}

// parser owns one parse: the lexer's buffers, a cursor with an expression
// bound (bindRange re-scans select-item token spans in place instead of
// copying them into a sub-parser), the FROM-clause bindings, and the node
// arena. Select items are scanned as raw token spans first and bound once
// the FROM clause has established the reference schemas.
type parser struct {
	lx      lexer
	pos     int
	limit   int // expression sub-parse bound; len(lx.toks) at top level
	resolve Resolver

	refs    []algebra.Ref
	items   []rawItem
	a       arena
	keepAST bool // successful parse: arena and refs escaped into the result
}

func newParser(sql string, resolve Resolver) (*parser, error) {
	p := parserPool.Get().(*parser)
	p.resolve = resolve
	p.pos = 0
	p.keepAST = false
	if err := p.lx.lex(sql); err != nil {
		p.release()
		return nil, err
	}
	p.limit = len(p.lx.toks)
	return p, nil
}

// release returns the parser to the pool, dropping (success) or truncating
// (failure) the buffers that may or may not have escaped into the result.
func (p *parser) release() {
	if p.keepAST {
		p.a = arena{}
		p.refs = nil
	} else {
		p.a.reset()
		p.refs = p.refs[:0]
	}
	p.items = p.items[:0]
	p.resolve = nil
	parserPool.Put(p)
}

// finish consumes an optional trailing semicolon and requires end of input.
func (p *parser) finish() error {
	p.acceptSymbol(symSemi)
	if t := p.peek(); t.kind != tokEOF {
		return p.errAt(t, "trailing input at %s", p.describe(t))
	}
	return nil
}

// peek returns the current token, clamped to an EOF at the expression
// bound so sub-range parses terminate exactly like a top-level parse.
func (p *parser) peek() token {
	if p.pos < p.limit {
		return p.lx.toks[p.pos]
	}
	off := int32(len(p.lx.src))
	if p.limit < len(p.lx.toks) {
		off = p.lx.toks[p.limit].start
	}
	return token{kind: tokEOF, start: off, end: off}
}

func (p *parser) next() token {
	t := p.peek()
	if p.pos < p.limit {
		p.pos++
	}
	return t
}

// text materializes a token's source bytes as a string (a copy — the
// pooled source buffer must not escape the parse).
func (p *parser) text(t token) string { return string(p.lx.view(t)) }

// describe renders a token for error messages: canonical spelling for
// keywords and operators, %q-quoted source text otherwise.
func (p *parser) describe(t token) string {
	switch t.kind {
	case tokEOF:
		return "end of input"
	case tokKeyword:
		return fmt.Sprintf("%q", kwNames[t.kw])
	case tokSymbol:
		return fmt.Sprintf("%q", symStr[t.sym])
	default:
		return fmt.Sprintf("%q", p.lx.view(t))
	}
}

// errAt builds an error carrying t's line:column position.
func (p *parser) errAt(t token, format string, args ...any) error {
	return p.lx.errorf(t.start, format, args...)
}

func (p *parser) acceptKeyword(kw kwID) bool {
	if t := p.peek(); t.kind == tokKeyword && t.kw == kw {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw kwID) error {
	if !p.acceptKeyword(kw) {
		t := p.peek()
		return p.errAt(t, "expected %s, got %s", kwNames[kw], p.describe(t))
	}
	return nil
}

func (p *parser) acceptSymbol(sym symID) bool {
	if t := p.peek(); t.kind == tokSymbol && t.sym == sym {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectSymbol(sym symID) error {
	if !p.acceptSymbol(sym) {
		t := p.peek()
		return p.errAt(t, "expected %q, got %s", symStr[sym], p.describe(t))
	}
	return nil
}

// rawItem is an unbound select item: token spans into the parser's token
// buffer instead of materialized strings.
type rawItem struct {
	agg        kwID // kwNone for plain expressions; SUM/COUNT/AVG/MIN/MAX
	star       bool // COUNT(*)
	start, end int  // token range of the inner expression
	nameTok    int  // explicit AS name token, or -1
	impliedTok int  // bare column token supplying a fallback name, or -1
}

var aggLower = map[kwID]string{
	kwSum: "sum", kwCount: "count", kwAvg: "avg", kwMin: "min", kwMax: "max",
}

func (p *parser) parseSelect() (*algebra.CQ, error) {
	if err := p.expectKeyword(kwSelect); err != nil {
		return nil, err
	}
	distinct := p.acceptKeyword(kwDistinct)

	// Scan select items as token ranges; bind after FROM is known.
	p.items = p.items[:0]
	for {
		it, err := p.scanItem()
		if err != nil {
			return nil, err
		}
		p.items = append(p.items, it)
		if !p.acceptSymbol(symComma) {
			break
		}
	}
	if err := p.expectKeyword(kwFrom); err != nil {
		return nil, err
	}
	for {
		view := p.next()
		if view.kind != tokIdent {
			return nil, p.errAt(view, "expected view name, got %s", p.describe(view))
		}
		viewName := p.text(view)
		alias := viewName
		if p.peek().kind == tokIdent {
			alias = p.text(p.next())
		}
		schema, err := p.resolve(viewName)
		if err != nil {
			return nil, fmt.Errorf("sqlparse: FROM %s: %w", viewName, err)
		}
		p.refs = append(p.refs, algebra.Ref{Alias: alias, View: viewName, Schema: schema.Clone()})
		if !p.acceptSymbol(symComma) {
			break
		}
	}

	cq := &algebra.CQ{Refs: p.refs}

	if p.acceptKeyword(kwWhere) {
		pred, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		cq.Filters = algebra.Conjuncts(pred)
	}

	var groupBy []algebra.NamedExpr
	hasGroup := false
	if p.acceptKeyword(kwGroup) {
		if err := p.expectKeyword(kwBy); err != nil {
			return nil, err
		}
		hasGroup = true
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			groupBy = append(groupBy, algebra.NamedExpr{Name: "", E: e})
			if !p.acceptSymbol(symComma) {
				break
			}
		}
	}

	// Bind the select items now that refs are known.
	var selects []algebra.NamedExpr
	var aggs []algebra.AggExpr
	autoName := 0
	nameOf := func(it rawItem, prefix string) string {
		if it.nameTok >= 0 {
			return p.text(p.lx.toks[it.nameTok])
		}
		if it.impliedTok >= 0 {
			return p.text(p.lx.toks[it.impliedTok])
		}
		autoName++
		return fmt.Sprintf("%s%d", prefix, autoName)
	}
	for _, it := range p.items {
		if it.agg != kwNone {
			var input algebra.Expr
			if !it.star {
				e, err := p.bindRange(it.start, it.end)
				if err != nil {
					return nil, err
				}
				input = e
			}
			kind, err := aggKind(it.agg)
			if err != nil {
				return nil, err
			}
			vk := relation.KindInt
			if input != nil {
				vk = input.Kind()
			}
			aggs = append(aggs, algebra.AggExpr{
				Name:  nameOf(it, aggLower[it.agg]),
				Spec:  delta.AggSpec{Kind: kind, ValueKind: vk},
				Input: input,
			})
			continue
		}
		e, err := p.bindRange(it.start, it.end)
		if err != nil {
			return nil, err
		}
		selects = append(selects, algebra.NamedExpr{Name: nameOf(it, "col"), E: e})
	}

	switch {
	case hasGroup:
		if len(selects) > 0 {
			// Non-aggregate select items must match group-by expressions;
			// they become named grouping outputs.
			for _, s := range selects {
				found := false
				for gi, g := range groupBy {
					if g.E.String() == s.E.String() {
						groupBy[gi].Name = s.Name
						found = true
						break
					}
				}
				if !found {
					return nil, fmt.Errorf("sqlparse: select item %s is neither aggregated nor grouped", s.Name)
				}
			}
		}
		for gi := range groupBy {
			if groupBy[gi].Name == "" {
				groupBy[gi].Name = impliedName(groupBy[gi].E)
			}
		}
		cq.GroupBy = groupBy
		cq.Aggs = aggs
	case len(aggs) > 0:
		if len(selects) > 0 {
			return nil, fmt.Errorf("sqlparse: mixing aggregates and plain columns requires GROUP BY")
		}
		cq.GroupBy = []algebra.NamedExpr{} // global aggregate
		cq.Aggs = aggs
	default:
		cq.Select = selects
		if distinct {
			cq.GroupBy = cq.Select
			cq.Select = nil
		}
	}
	if distinct && (hasGroup || len(aggs) > 0) {
		return nil, fmt.Errorf("sqlparse: DISTINCT with GROUP BY or aggregates is not supported")
	}
	if err := cq.Validate(); err != nil {
		return nil, err
	}
	return cq, nil
}

func impliedName(e algebra.Expr) string {
	if c, ok := e.(*algebra.Col); ok {
		if i := strings.LastIndexByte(c.Name, '.'); i >= 0 {
			return c.Name[i+1:]
		}
		return c.Name
	}
	return strings.ReplaceAll(e.String(), " ", "")
}

func aggKind(kw kwID) (delta.AggKind, error) {
	switch kw {
	case kwSum:
		return delta.AggSum, nil
	case kwCount:
		return delta.AggCount, nil
	case kwAvg:
		return delta.AggAvg, nil
	case kwMin:
		return delta.AggMin, nil
	case kwMax:
		return delta.AggMax, nil
	default:
		return 0, fmt.Errorf("sqlparse: unknown aggregate %q", kwNames[kw])
	}
}

// scanItem records one select item's token span without binding it.
func (p *parser) scanItem() (rawItem, error) {
	it := rawItem{nameTok: -1, impliedTok: -1}
	t := p.peek()
	if t.kind == tokKeyword {
		switch t.kw {
		case kwSum, kwCount, kwAvg, kwMin, kwMax:
			it.agg = t.kw
			p.next()
			if err := p.expectSymbol(symLParen); err != nil {
				return it, err
			}
			if p.acceptSymbol(symStar) {
				if it.agg != kwCount {
					return it, fmt.Errorf("sqlparse: %s(*) is not supported", kwNames[it.agg])
				}
				it.star = true
			} else {
				it.start = p.pos
				depth := 0
				for {
					tok := p.peek()
					if tok.kind == tokEOF {
						return it, fmt.Errorf("sqlparse: unterminated aggregate")
					}
					if tok.kind == tokSymbol {
						if tok.sym == symLParen {
							depth++
						}
						if tok.sym == symRParen {
							if depth == 0 {
								break
							}
							depth--
						}
					}
					p.next()
				}
				it.end = p.pos
			}
			if err := p.expectSymbol(symRParen); err != nil {
				return it, err
			}
		}
	}
	if it.agg == kwNone {
		it.start = p.pos
		depth := 0
	scan:
		for {
			tok := p.peek()
			switch {
			case tok.kind == tokEOF:
				break scan
			case tok.kind == tokKeyword && (tok.kw == kwFrom || tok.kw == kwAs) && depth == 0:
				break scan
			case tok.kind == tokSymbol && tok.sym == symComma && depth == 0:
				break scan
			case tok.kind == tokSymbol && tok.sym == symLParen:
				depth++
			case tok.kind == tokSymbol && tok.sym == symRParen:
				depth--
			}
			p.next()
		}
		it.end = p.pos
		if it.end == it.start {
			return it, p.errAt(p.peek(), "empty select item at %s", p.describe(p.peek()))
		}
		// A bare (possibly qualified) column gives the implied output name.
		span := p.lx.toks[it.start:it.end]
		if len(span) == 1 && span[0].kind == tokIdent {
			it.impliedTok = it.start
		}
		if len(span) == 3 && span[0].kind == tokIdent &&
			span[1].kind == tokSymbol && span[1].sym == symDot && span[2].kind == tokIdent {
			it.impliedTok = it.start + 2
		}
	}
	if p.acceptKeyword(kwAs) {
		name := p.next()
		if name.kind != tokIdent {
			return it, p.errAt(name, "expected output name after AS, got %s", p.describe(name))
		}
		it.nameTok = p.pos - 1
	}
	return it, nil
}

// bindRange parses the token subrange [start, end) as an expression by
// re-aiming the cursor at it — no token copying, no sub-parser.
func (p *parser) bindRange(start, end int) (algebra.Expr, error) {
	savedPos, savedLimit := p.pos, p.limit
	p.pos, p.limit = start, end
	e, err := p.parseExpr()
	if err == nil && p.pos < p.limit {
		t := p.peek()
		err = p.errAt(t, "trailing tokens in expression at %s", p.describe(t))
	}
	p.pos, p.limit = savedPos, savedLimit
	if err != nil {
		return nil, err
	}
	return e, nil
}

// Expression grammar, lowest binding power first. Comparisons (and
// BETWEEN) are non-associative; everything else is left-associative.
const (
	precOr = iota + 1
	precAnd
	precNot
	precCmp
	precAdd
	precMul
)

// binOpOf classifies t as an infix operator: its precedence (0 = not an
// operator), the algebra op, and whether it is BETWEEN (which consumes a
// lo AND hi pair instead of a single right operand).
func binOpOf(t token) (prec int, op algebra.BinOp, between bool) {
	switch t.kind {
	case tokKeyword:
		switch t.kw {
		case kwOr:
			return precOr, algebra.OpOr, false
		case kwAnd:
			return precAnd, algebra.OpAnd, false
		case kwBetween:
			return precCmp, 0, true
		}
	case tokSymbol:
		switch t.sym {
		case symEq:
			return precCmp, algebra.OpEq, false
		case symNe:
			return precCmp, algebra.OpNe, false
		case symLt:
			return precCmp, algebra.OpLt, false
		case symLe:
			return precCmp, algebra.OpLe, false
		case symGt:
			return precCmp, algebra.OpGt, false
		case symGe:
			return precCmp, algebra.OpGe, false
		case symPlus:
			return precAdd, algebra.OpAdd, false
		case symMinus:
			return precAdd, algebra.OpSub, false
		case symStar:
			return precMul, algebra.OpMul, false
		case symSlash:
			return precMul, algebra.OpDiv, false
		}
	}
	return 0, 0, false
}

func (p *parser) parseExpr() (algebra.Expr, error) { return p.parseExprPrec(precOr) }

// parseExprPrec is the Pratt loop: parse a prefix (NOT or a primary), then
// fold in infix operators whose precedence is at least min, each right
// operand parsed one level tighter.
func (p *parser) parseExprPrec(min int) (algebra.Expr, error) {
	var left algebra.Expr
	var err error
	if t := p.peek(); t.kind == tokKeyword && t.kw == kwNot && min <= precNot {
		p.pos++
		operand, err := p.parseExprPrec(precNot)
		if err != nil {
			return nil, err
		}
		left = p.a.not(operand)
	} else {
		left, err = p.parsePrimary()
		if err != nil {
			return nil, err
		}
	}
	sawCmp := false
	for {
		t := p.peek()
		prec, op, between := binOpOf(t)
		if prec == 0 || prec < min {
			return left, nil
		}
		if prec == precCmp {
			if sawCmp {
				// Comparisons don't chain: leave the operator for the
				// caller, which reports it as trailing input.
				return left, nil
			}
			sawCmp = true
		}
		p.pos++
		if between {
			lo, err := p.parseExprPrec(precAdd)
			if err != nil {
				return nil, err
			}
			if err := p.expectKeyword(kwAnd); err != nil {
				return nil, err
			}
			hi, err := p.parseExprPrec(precAdd)
			if err != nil {
				return nil, err
			}
			left = p.a.binary(algebra.OpAnd,
				p.a.binary(algebra.OpGe, left, lo),
				p.a.binary(algebra.OpLe, left, hi))
			continue
		}
		right, err := p.parseExprPrec(prec + 1)
		if err != nil {
			return nil, err
		}
		left = p.a.binary(op, left, right)
	}
}

// parseIntBytes parses a base-10 integer from raw digits, reporting
// overflow. The token is all digits by construction.
func parseIntBytes(b []byte) (int64, bool) {
	var v int64
	for _, c := range b {
		d := int64(c - '0')
		if v > (math.MaxInt64-d)/10 {
			return 0, false
		}
		v = v*10 + d
	}
	return v, true
}

func hasDot(b []byte) bool {
	for _, c := range b {
		if c == '.' {
			return true
		}
	}
	return false
}

func (p *parser) parsePrimary() (algebra.Expr, error) {
	t := p.next()
	switch {
	case t.kind == tokSymbol && t.sym == symLParen:
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol(symRParen); err != nil {
			return nil, err
		}
		return e, nil
	case t.kind == tokNumber:
		view := p.lx.view(t)
		if hasDot(view) {
			f, err := strconv.ParseFloat(string(view), 64)
			if err != nil {
				return nil, p.errAt(t, "bad number %q: %v", view, err)
			}
			return p.a.constant(relation.NewFloat(f)), nil
		}
		i, ok := parseIntBytes(view)
		if !ok {
			return nil, p.errAt(t, "bad number %q: integer overflow", view)
		}
		return p.a.constant(relation.NewInt(i)), nil
	case t.kind == tokString:
		return p.a.constant(relation.NewString(p.lx.unquote(t))), nil
	case t.kind == tokKeyword && t.kw == kwDate:
		lit := p.next()
		if lit.kind != tokString {
			return nil, p.errAt(lit, "expected date string after DATE, got %s", p.describe(lit))
		}
		v, err := relation.DateFromString(p.lx.unquote(lit))
		if err != nil {
			return nil, err
		}
		return p.a.constant(v), nil
	case t.kind == tokSymbol && t.sym == symMinus:
		e, err := p.parsePrimary()
		if err != nil {
			return nil, err
		}
		return p.a.binary(algebra.OpSub, p.a.constant(relation.NewInt(0)), e), nil
	case t.kind == tokIdent:
		if p.acceptSymbol(symDot) {
			col := p.next()
			if col.kind != tokIdent {
				return nil, p.errAt(col, "expected column after %q., got %s", p.lx.view(t), p.describe(col))
			}
			return p.bindQualified(t, col)
		}
		return p.bindUnqualified(t)
	default:
		return nil, p.errAt(t, "unexpected token %s", p.describe(t))
	}
}

// qualifiedIndex returns the index in the flattened join schema of the
// first column matching alias.col across the FROM references, plus its
// kind; -1 if absent. Structural comparison against (Ref.Alias, column
// name) is exactly string equality on the old qualified names, since
// aliases and query-side column references never contain dots.
func (p *parser) qualifiedIndex(alias, col []byte) (int, relation.Kind) {
	off := 0
	for _, r := range p.refs {
		if string(alias) == r.Alias { // comparison only; no allocation
			for ci := range r.Schema {
				if string(col) == r.Schema[ci].Name {
					return off + ci, r.Schema[ci].Kind
				}
			}
		}
		off += len(r.Schema)
	}
	return -1, 0
}

// bindQualified resolves a qualified alias.column reference.
func (p *parser) bindQualified(aliasTok, colTok token) (algebra.Expr, error) {
	alias, col := p.lx.view(aliasTok), p.lx.view(colTok)
	idx, kind := p.qualifiedIndex(alias, col)
	if idx < 0 {
		return nil, fmt.Errorf("sqlparse: unknown column %q", string(alias)+"."+string(col))
	}
	return p.a.col(idx, string(alias)+"."+string(col), kind), nil
}

// bindUnqualified resolves a bare column name, requiring it to be
// unambiguous across the FROM-clause references.
func (p *parser) bindUnqualified(nameTok token) (algebra.Expr, error) {
	name := p.lx.view(nameTok)
	matched := false
	var matchAlias string
	for _, r := range p.refs {
		has := false
		for ci := range r.Schema {
			if string(name) == r.Schema[ci].Name { // comparison only; no allocation
				has = true
				break
			}
		}
		if has {
			if matched {
				return nil, fmt.Errorf("sqlparse: column %q is ambiguous (%s.%s and %s.%s)",
					name, matchAlias, name, r.Alias, name)
			}
			matched = true
			matchAlias = r.Alias
		}
	}
	if !matched {
		return nil, fmt.Errorf("sqlparse: unknown column %q", name)
	}
	idx, kind := p.qualifiedIndex([]byte(matchAlias), name)
	return p.a.col(idx, matchAlias+"."+string(name), kind), nil
}
