// Package sqlparse provides the SQL front end for view definitions and
// ad-hoc queries: a zero-allocation byte-scan lexer, a Pratt-style
// expression parser that emits into a per-parse arena, and a binder that
// resolves a SELECT-FROM-WHERE-GROUPBY statement against a catalog into a
// bound algebra.CQ. This is the definition language class of the paper's
// warehouse model (projection, selection, join, aggregation — the shape of
// the TPC-D summary tables), plus the presentation clauses (ORDER BY,
// LIMIT, OFFSET) that only ad-hoc queries use.
//
// The lexer produces tokens as (kind, start, end) views into the source
// bytes — no per-token string is materialized — and classifies keywords
// through a length-bucketed table with an ASCII case-fold fast path.
// Identifier classification is byte-wise Latin-1 (matching the historical
// lexer in the legacy subpackage exactly, as enforced by
// FuzzParseDifferential): ASCII bytes take the table fast path and bytes
// ≥ 0x80 fall back to the unicode tables for their Latin-1 codepoint.
// Steady-state tokenization performs zero heap allocations; the scratch
// buffers live in the pooled parser.
package sqlparse

import (
	"fmt"
	"math"
	"unicode"
)

// tokenKind classifies lexer output.
type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokKeyword
	tokNumber
	tokString
	tokSymbol // punctuation and operators
)

// kwID identifies a recognized keyword; kwNone marks non-keyword tokens.
type kwID uint8

const (
	kwNone kwID = iota
	kwSelect
	kwFrom
	kwWhere
	kwGroup
	kwBy
	kwAnd
	kwOr
	kwNot
	kwAs
	kwDistinct
	kwSum
	kwCount
	kwAvg
	kwMin
	kwMax
	kwDate
	kwBetween
	kwCreate
	kwView
	kwOrder
	kwLimit
	kwAsc
	kwDesc
)

var kwNames = [...]string{
	kwSelect: "SELECT", kwFrom: "FROM", kwWhere: "WHERE", kwGroup: "GROUP",
	kwBy: "BY", kwAnd: "AND", kwOr: "OR", kwNot: "NOT", kwAs: "AS",
	kwDistinct: "DISTINCT", kwSum: "SUM", kwCount: "COUNT", kwAvg: "AVG",
	kwMin: "MIN", kwMax: "MAX", kwDate: "DATE", kwBetween: "BETWEEN",
	kwCreate: "CREATE", kwView: "VIEW", kwOrder: "ORDER", kwLimit: "LIMIT",
	kwAsc: "ASC", kwDesc: "DESC",
}

// symID identifies a punctuation or operator token.
type symID uint8

const (
	symNone symID = iota
	symLParen
	symRParen
	symComma
	symSemi
	symDot
	symEq
	symNe
	symLt
	symLe
	symGt
	symGe
	symPlus
	symMinus
	symStar
	symSlash
)

var symStr = [...]string{
	symLParen: "(", symRParen: ")", symComma: ",", symSemi: ";", symDot: ".",
	symEq: "=", symNe: "<>", symLt: "<", symLe: "<=", symGt: ">", symGe: ">=",
	symPlus: "+", symMinus: "-", symStar: "*", symSlash: "/",
}

// token is a view into the lexer's source buffer: [start, end) bytes of
// lx.src. Keywords and symbols additionally carry their resolved ID so the
// parser never re-examines the text.
type token struct {
	kind       tokenKind
	kw         kwID
	sym        symID
	start, end int32
}

// kwBuckets indexes the keyword table by word length: a candidate word is
// compared (ASCII case-folded) only against the handful of keywords of its
// exact length, replacing the old map[string]bool + strings.ToUpper lookup
// that allocated the upper-cased copy.
var kwBuckets [16][]kwID

// identStartTab / identPartTab classify single bytes for identifier
// scanning with the byte-as-Latin-1-rune semantics of the original lexer:
// '_' plus unicode.IsLetter (and IsDigit for parts) of rune(b). ASCII and
// high bytes share one 256-entry table, so the fast path is a single load.
var identStartTab, identPartTab [256]bool

func init() {
	for id, name := range kwNames {
		if name != "" {
			kwBuckets[len(name)] = append(kwBuckets[len(name)], kwID(id))
		}
	}
	for i := 0; i < 256; i++ {
		r := rune(i)
		identStartTab[i] = r == '_' || unicode.IsLetter(r)
		identPartTab[i] = r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
	}
}

// lookupKeyword resolves word against the length bucket for len(word),
// folding ASCII lowercase on the fly. Non-ASCII bytes never fold, which
// matches the old ToUpper-based lookup: no byte-wise-scanned identifier
// containing a non-ASCII byte can upper-case into an ASCII keyword.
func lookupKeyword(word []byte) kwID {
	if len(word) >= len(kwBuckets) {
		return kwNone
	}
bucket:
	for _, id := range kwBuckets[len(word)] {
		name := kwNames[id]
		for i := 0; i < len(name); i++ {
			c := word[i]
			if 'a' <= c && c <= 'z' {
				c -= 'a' - 'A'
			}
			if c != name[i] {
				continue bucket
			}
		}
		return id
	}
	return kwNone
}

// lookupSymbol matches the operator starting at src[i], longest first.
func lookupSymbol(src []byte, i int) (symID, int) {
	c := src[i]
	if i+1 < len(src) {
		d := src[i+1]
		switch {
		case c == '<' && d == '>':
			return symNe, 2
		case c == '<' && d == '=':
			return symLe, 2
		case c == '>' && d == '=':
			return symGe, 2
		case c == '!' && d == '=':
			return symNe, 2 // != normalizes to <>
		}
	}
	switch c {
	case '(':
		return symLParen, 1
	case ')':
		return symRParen, 1
	case ',':
		return symComma, 1
	case ';':
		return symSemi, 1
	case '.':
		return symDot, 1
	case '=':
		return symEq, 1
	case '<':
		return symLt, 1
	case '>':
		return symGt, 1
	case '+':
		return symPlus, 1
	case '-':
		return symMinus, 1
	case '*':
		return symStar, 1
	case '/':
		return symSlash, 1
	}
	return symNone, 0
}

// lexer scans SQL bytes into tokens. Both buffers are owned by the pooled
// parser and reused across parses; a steady-state lex allocates nothing.
type lexer struct {
	src  []byte
	toks []token
}

// lineCol converts a byte offset into a 1-based line:column position.
// Only the error paths pay for the scan.
func (lx *lexer) lineCol(off int32) (line, col int) {
	line, col = 1, 1
	for i := int32(0); i < off && i < int32(len(lx.src)); i++ {
		if lx.src[i] == '\n' {
			line++
			col = 1
		} else {
			col++
		}
	}
	return line, col
}

// errorf builds a position-carrying error: "sqlparse: line L:C: ...".
func (lx *lexer) errorf(off int32, format string, args ...any) error {
	line, col := lx.lineCol(off)
	return fmt.Errorf("sqlparse: line %d:%d: %s", line, col, fmt.Sprintf(format, args...))
}

// view returns the source bytes of a token. The slice aliases the pooled
// buffer: copy (string(...)) anything that outlives the parse.
func (lx *lexer) view(t token) []byte { return lx.src[t.start:t.end] }

// unquote decodes a string token's contents, collapsing doubled quotes.
// The common no-escape case is a single copy.
func (lx *lexer) unquote(t token) string {
	raw := lx.view(t)
	esc := false
	for _, c := range raw {
		if c == '\'' {
			esc = true
			break
		}
	}
	if !esc {
		return string(raw)
	}
	out := make([]byte, 0, len(raw))
	for i := 0; i < len(raw); i++ {
		out = append(out, raw[i])
		if raw[i] == '\'' { // lexer guarantees quotes only appear doubled
			i++
		}
	}
	return string(out)
}

func (lx *lexer) push(kind tokenKind, kw kwID, sym symID, start, end int) {
	lx.toks = append(lx.toks, token{kind: kind, kw: kw, sym: sym, start: int32(start), end: int32(end)})
}

// lex scans input into lx.toks, reusing both scratch buffers. String
// tokens span the raw quoted contents (doubled quotes included) so no
// unescaped copy is built unless the parser consumes the literal.
func (lx *lexer) lex(input string) error {
	if len(input) > math.MaxInt32 {
		return fmt.Errorf("sqlparse: input too large (%d bytes)", len(input))
	}
	lx.src = append(lx.src[:0], input...)
	lx.toks = lx.toks[:0]
	src := lx.src
	i, n := 0, len(src)
	for i < n {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '\'':
			j := i + 1
			for {
				if j >= n {
					return lx.errorf(int32(i), "unterminated string")
				}
				if src[j] == '\'' {
					if j+1 < n && src[j+1] == '\'' { // escaped quote
						j += 2
						continue
					}
					break
				}
				j++
			}
			lx.push(tokString, kwNone, symNone, i+1, j)
			i = j + 1
		case c >= '0' && c <= '9' || (c == '.' && i+1 < n && src[i+1] >= '0' && src[i+1] <= '9'):
			j := i
			seenDot := false
			for j < n && (src[j] >= '0' && src[j] <= '9' || (src[j] == '.' && !seenDot)) {
				if src[j] == '.' {
					seenDot = true
				}
				j++
			}
			lx.push(tokNumber, kwNone, symNone, i, j)
			i = j
		case identStartTab[c]:
			j := i + 1
			for j < n && identPartTab[src[j]] {
				j++
			}
			if kw := lookupKeyword(src[i:j]); kw != kwNone {
				lx.push(tokKeyword, kw, symNone, i, j)
			} else {
				lx.push(tokIdent, kwNone, symNone, i, j)
			}
			i = j
		default:
			sym, w := lookupSymbol(src, i)
			if sym == symNone {
				return lx.errorf(int32(i), "unexpected character %q", c)
			}
			lx.push(tokSymbol, kwNone, sym, i, i+w)
			i += w
		}
	}
	lx.push(tokEOF, kwNone, symNone, n, n)
	return nil
}
