package parallel

// Differential-testing harness for the concurrent executors: for ~100 seeded
// random VDAGs (mixed join/aggregate views, 1–4 derivation levels, diamond
// sharing) with random insert/delete/mixed change batches, DAG-scheduled
// execution, staged Execute, sequential exec.Execute and a full recompute
// must all leave bag-identical warehouse states. The comparison is the
// exec.ExactStats discipline — every view's sorted (tuple, count) bag —
// applied across executors instead of against the cost model.

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/algebra"
	"repro/internal/core"
	"repro/internal/delta"
	"repro/internal/exec"
	"repro/internal/planner"
	"repro/internal/relation"
	"repro/internal/strategy"
)

// diffWarehouse builds a random leveled warehouse: 2–3 integer bases at
// level 0, then 1–4 derivation levels of 1–2 views each. Every view's first
// child comes from the previous level (so the VDAG really is that deep) and
// a second child, when present, from any earlier level — which makes
// diamonds (two parents sharing a child, later rejoined) common.
func diffWarehouse(t *testing.T, rng *rand.Rand) *core.Warehouse {
	t.Helper()
	w := core.New(core.Options{})
	type viewInfo struct {
		name   string
		schema relation.Schema
	}
	var all []viewInfo
	prev := []viewInfo{} // views of the previous level

	nBase := 2 + rng.Intn(2)
	for i := 0; i < nBase; i++ {
		name := fmt.Sprintf("B%d", i)
		cols := 2 + rng.Intn(2)
		schema := make(relation.Schema, cols)
		for c := 0; c < cols; c++ {
			schema[c] = relation.Column{Name: fmt.Sprintf("c%d", c), Kind: relation.KindInt}
		}
		if err := w.DefineBase(name, schema); err != nil {
			t.Fatal(err)
		}
		var rows []relation.Tuple
		for r := 0; r < 8+rng.Intn(20); r++ {
			tup := make(relation.Tuple, cols)
			for c := range tup {
				tup[c] = relation.NewInt(rng.Int63n(5))
			}
			rows = append(rows, tup)
		}
		if err := w.LoadBase(name, rows); err != nil {
			t.Fatal(err)
		}
		all = append(all, viewInfo{name, schema})
		prev = append(prev, viewInfo{name, schema})
	}

	levels := 1 + rng.Intn(4)
	id := 0
	for level := 1; level <= levels; level++ {
		var cur []viewInfo
		for k := 0; k < 1+rng.Intn(2); k++ {
			refs := []viewInfo{prev[rng.Intn(len(prev))]}
			if rng.Intn(2) == 0 {
				other := all[rng.Intn(len(all))]
				if other.name != refs[0].name {
					refs = append(refs, other)
				}
			}
			b := algebra.NewBuilder()
			var aliases []string
			for r, child := range refs {
				alias := fmt.Sprintf("t%d", r)
				b.From(alias, child.name, child.schema)
				aliases = append(aliases, alias)
			}
			randCol := func(r int) string {
				return aliases[r] + "." + refs[r].schema[rng.Intn(len(refs[r].schema))].Name
			}
			for r := 1; r < len(refs); r++ {
				b.Join(randCol(r-1), randCol(r))
			}
			if rng.Intn(3) == 0 {
				b.Where(&algebra.Binary{
					Op: algebra.OpLe,
					L:  b.Col(randCol(0)),
					R:  &algebra.Const{Value: relation.NewInt(rng.Int63n(5) + 1)},
				})
			}
			if rng.Intn(2) == 0 {
				// Aggregate view (SUM/COUNT: exactly comparable integers).
				b.GroupByCol(randCol(0), "g")
				b.Agg("s", delta.AggSum, b.Col(randCol(len(refs)-1)))
				b.Agg("n", delta.AggCount, nil)
			} else {
				b.SelectCol(randCol(0), "p0")
				b.SelectCol(randCol(len(refs)-1), "p1")
			}
			def, err := b.Build()
			if err != nil {
				t.Fatal(err)
			}
			name := fmt.Sprintf("D%d", id)
			id++
			if err := w.DefineDerived(name, def); err != nil {
				t.Fatal(err)
			}
			cur = append(cur, viewInfo{name, def.OutputSchema()})
			all = append(all, viewInfo{name, def.OutputSchema()})
		}
		prev = cur
	}
	if err := w.RefreshAll(); err != nil {
		t.Fatal(err)
	}
	return w
}

// stageDiffChanges stages a change batch on every base view in one of three
// shapes: inserts only, deletes only, or mixed.
func stageDiffChanges(t *testing.T, w *core.Warehouse, rng *rand.Rand) {
	t.Helper()
	kind := rng.Intn(3) // 0 = inserts, 1 = deletes, 2 = mixed
	for _, name := range w.ViewNames() {
		v := w.MustView(name)
		if !v.IsBase() {
			continue
		}
		d := delta.New(v.Schema())
		if kind != 0 {
			for _, r := range v.SortedRows() {
				if rng.Intn(4) == 0 {
					n := int64(1)
					if r.Count > 1 && rng.Intn(2) == 0 {
						n = r.Count
					}
					d.Add(r.Tuple, -n)
				}
			}
		}
		if kind != 1 {
			for i := 0; i < 1+rng.Intn(5); i++ {
				tup := make(relation.Tuple, len(v.Schema()))
				for c := range tup {
					tup[c] = relation.NewInt(rng.Int63n(5))
				}
				d.Add(tup, 1)
			}
		}
		if err := w.StageDelta(name, d); err != nil {
			t.Fatal(err)
		}
	}
}

// viewBags snapshots every view's sorted (tuple, count) bag.
func viewBags(w *core.Warehouse) map[string][]string {
	bags := make(map[string][]string)
	for _, v := range w.ViewNames() {
		for _, r := range w.MustView(v).SortedRows() {
			bags[v] = append(bags[v], fmt.Sprintf("%v x%d", r.Tuple, r.Count))
		}
	}
	return bags
}

func compareBags(t *testing.T, trial int, name string, ref, got map[string][]string) {
	t.Helper()
	for v := range ref {
		a, b := ref[v], got[v]
		if len(a) != len(b) {
			t.Fatalf("trial %d %s: %s has %d rows, reference %d", trial, name, v, len(b), len(a))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("trial %d %s: %s row %d: %s vs reference %s", trial, name, v, i, b[i], a[i])
			}
		}
	}
}

// TestDifferentialExecutors is the harness entry point.
func TestDifferentialExecutors(t *testing.T) {
	trials := 100
	if testing.Short() {
		trials = 15
	}
	rng := rand.New(rand.NewSource(20260806))
	for trial := 0; trial < trials; trial++ {
		base := diffWarehouse(t, rng)
		stageDiffChanges(t, base, rng)

		g, err := exec.Graph(base)
		if err != nil {
			t.Fatal(err)
		}
		var s strategy.Strategy
		if trial%2 == 0 {
			s = strategy.DualStageVDAG(g)
		} else {
			stats, err := exec.PlanningStats(base)
			if err != nil {
				t.Fatal(err)
			}
			mw, err := planner.MinWork(g, stats)
			if err != nil {
				t.Fatalf("trial %d (%s): %v", trial, g, err)
			}
			s = mw.Strategy
		}

		// Reference: sequential exec.Execute.
		seq := base.Clone()
		seqRep, err := exec.Execute(seq, s, exec.Options{Validate: true})
		if err != nil {
			t.Fatalf("trial %d sequential (%s): %v\nstrategy: %s", trial, g, err, s)
		}
		if err := seq.VerifyAll(); err != nil {
			t.Fatalf("trial %d sequential: %v", trial, err)
		}
		ref := viewBags(seq)

		// Term-parallel engine under sequential scheduling: same strategy,
		// but each Comp runs concurrent terms with morsel-parallel probes
		// and the shared build cache. Bags must match, and — because the
		// cache saves physical scans, not modeled ones — every step's Work
		// and Terms must equal the sequential report exactly.
		tp := base.Clone()
		tp.SetOptions(core.Options{ParallelTerms: true, Workers: 1 + rng.Intn(8)})
		tpRep, err := exec.Execute(tp, s, exec.Options{Validate: true})
		if err != nil {
			t.Fatalf("trial %d term-parallel: %v", trial, err)
		}
		compareBags(t, trial, "term-parallel", ref, viewBags(tp))
		if len(tpRep.Steps) != len(seqRep.Steps) {
			t.Fatalf("trial %d term-parallel: %d steps vs %d sequential",
				trial, len(tpRep.Steps), len(seqRep.Steps))
		}
		for i, step := range tpRep.Steps {
			want := seqRep.Steps[i]
			if step.Work != want.Work || step.Terms != want.Terms {
				t.Fatalf("trial %d term-parallel step %s: work=%d terms=%d, sequential work=%d terms=%d (build cache must not change the linear work metric)",
					trial, step.Expr, step.Work, step.Terms, want.Work, want.Terms)
			}
		}

		// Staged parallel.Execute.
		staged := base.Clone()
		if _, err := Execute(staged, Parallelize(s, staged.Children)); err != nil {
			t.Fatalf("trial %d staged: %v", trial, err)
		}
		compareBags(t, trial, "staged", ref, viewBags(staged))

		// DAG-scheduled, random pool size.
		dag := base.Clone()
		if _, err := Run(dag, s, dag.Children, exec.ModeDAG, Options{
			Workers:  1 + rng.Intn(8),
			Validate: true,
		}); err != nil {
			t.Fatalf("trial %d dag: %v", trial, err)
		}
		compareBags(t, trial, "dag", ref, viewBags(dag))

		// Both levels composed: DAG scheduling across expressions and the
		// term-parallel engine inside each Comp, sharing one worker budget.
		both := base.Clone()
		workers := 1 + rng.Intn(8)
		both.SetOptions(core.Options{ParallelTerms: true, Workers: workers})
		if _, err := Run(both, s, both.Children, exec.ModeDAG, Options{
			Workers:  workers,
			Validate: true,
		}); err != nil {
			t.Fatalf("trial %d dag+term-parallel: %v", trial, err)
		}
		compareBags(t, trial, "dag+term-parallel", ref, viewBags(both))

		// Window-wide shared computation under sequential scheduling: the
		// cross-view registry serves build tables across Comps. Bags must
		// match, and — sharing elides physical scans, never modeled ones —
		// every step's Work and Terms must equal the sequential report.
		shared := base.Clone()
		shared.SetOptions(core.Options{ShareComputation: true})
		shRep, err := exec.Execute(shared, s, exec.Options{Validate: true})
		if err != nil {
			t.Fatalf("trial %d shared: %v", trial, err)
		}
		compareBags(t, trial, "shared", ref, viewBags(shared))
		for i, step := range shRep.Steps {
			want := seqRep.Steps[i]
			if step.Work != want.Work || step.Terms != want.Terms {
				t.Fatalf("trial %d shared step %s: work=%d terms=%d, sequential work=%d terms=%d (the shared registry must not change the linear work metric)",
					trial, step.Expr, step.Work, step.Terms, want.Work, want.Terms)
			}
		}

		// Sharing composed with the concurrent schedulers (and, on even
		// trials, the term-parallel engine inside each Comp): per-step work
		// must still match the sequential reference.
		wantWork := make(map[string]int64, len(seqRep.Steps))
		for _, step := range seqRep.Steps {
			wantWork[fmt.Sprint(step.Expr)] = step.Work
		}
		shMode := exec.ModeDAG
		if trial%2 == 0 {
			shMode = exec.ModeStaged
		}
		shPar := base.Clone()
		wk := 1 + rng.Intn(8)
		shPar.SetOptions(core.Options{ShareComputation: true, ParallelTerms: trial%2 == 0, Workers: wk})
		shParRep, err := Run(shPar, s, shPar.Children, shMode, Options{
			Workers:  wk,
			Validate: true,
		})
		if err != nil {
			t.Fatalf("trial %d shared+%s: %v", trial, shMode, err)
		}
		compareBags(t, trial, "shared+"+string(shMode), ref, viewBags(shPar))
		for _, stage := range shParRep.Steps {
			for _, step := range stage {
				if want, ok := wantWork[fmt.Sprint(step.Expr)]; !ok || step.Work != want {
					t.Fatalf("trial %d shared+%s step %s: work=%d, sequential work=%d",
						trial, shMode, step.Expr, step.Work, want)
				}
			}
		}

		// Full recompute: fold the base deltas in, rebuild every derived view
		// from scratch.
		rec := base.Clone()
		for _, name := range rec.ViewNames() {
			if rec.MustView(name).IsBase() {
				if _, err := rec.Install(name); err != nil {
					t.Fatalf("trial %d recompute install %s: %v", trial, name, err)
				}
			}
		}
		if err := rec.RefreshAll(); err != nil {
			t.Fatalf("trial %d recompute: %v", trial, err)
		}
		compareBags(t, trial, "recompute", ref, viewBags(rec))
	}
}
