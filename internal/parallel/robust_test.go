package parallel

import (
	"context"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/algebra"
	"repro/internal/core"
	"repro/internal/delta"
	"repro/internal/exec"
	"repro/internal/faults"
	"repro/internal/relation"
	"repro/internal/strategy"
)

// bombExpr is a boolean operator that, once armed, panics with err on every
// Eval — an injected misbehaving operator for the worker panic-recovery
// tests. It stays inert during setup (initial view refresh).
type bombExpr struct {
	armed atomic.Bool
	err   error
}

func (b *bombExpr) Eval(relation.Tuple) relation.Value {
	if b.armed.Load() {
		panic(b.err)
	}
	return relation.NewBool(true)
}
func (b *bombExpr) Kind() relation.Kind     { return relation.KindBool }
func (b *bombExpr) Columns(dst []int) []int { return dst }
func (b *bombExpr) String() string          { return "bomb()" }

// newBombSetup builds base R, derived V = σ_bomb(R) with staged changes,
// and the strategy C(V,{R}); I(V); I(R).
func newBombSetup(t *testing.T, bomb algebra.Expr) (*core.Warehouse, strategy.Strategy) {
	t.Helper()
	w := core.New(core.Options{})
	if err := w.DefineBase("R", schemaR); err != nil {
		t.Fatal(err)
	}
	vb := algebra.NewBuilder().From("r", "R", schemaR)
	if bomb != nil {
		vb.Where(bomb)
	}
	vb.SelectCol("r.a").SelectCol("r.b")
	v, err := vb.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := w.DefineDerived("V", v); err != nil {
		t.Fatal(err)
	}
	if err := w.LoadBase("R", []relation.Tuple{intRow(1, 10), intRow(2, 20)}); err != nil {
		t.Fatal(err)
	}
	if err := w.RefreshAll(); err != nil {
		t.Fatal(err)
	}
	d := delta.New(schemaR)
	d.Add(intRow(3, 30), 1)
	d.Add(intRow(4, 40), 1)
	if err := w.StageDelta("R", d); err != nil {
		t.Fatal(err)
	}
	s := strategy.Strategy{
		strategy.Comp{View: "V", Over: []string{"R"}},
		strategy.Inst{View: "V"},
		strategy.Inst{View: "R"},
	}
	return w, s
}

var robustModes = []exec.Mode{exec.ModeSequential, exec.ModeStaged, exec.ModeDAG}

// TestWorkerPanicBecomesError: a panicking operator inside any execution
// mode's worker surfaces as an error naming the expression, with the panic
// value's identity intact — never as a process crash.
func TestWorkerPanicBecomesError(t *testing.T) {
	for _, mode := range robustModes {
		t.Run(string(mode), func(t *testing.T) {
			boom := errors.New("boom")
			bomb := &bombExpr{err: boom}
			w, s := newBombSetup(t, bomb)
			bomb.armed.Store(true)
			_, err := Run(w, s, w.Children, mode, Options{Workers: 4, Validate: true})
			if err == nil {
				t.Fatal("panicking operator did not fail the run")
			}
			if !strings.Contains(err.Error(), "panic") || !strings.Contains(err.Error(), "Comp(V") {
				t.Fatalf("error lacks panic/expression context: %v", err)
			}
			if !errors.Is(err, boom) {
				t.Fatalf("panic value identity lost: %v", err)
			}
		})
	}
}

// TestInjectedStepFaults: faults wired through Options fire at step
// boundaries in every mode, including panic-flavoured ones, and stay
// recognizable through the scheduler's wrapping.
func TestInjectedStepFaults(t *testing.T) {
	for _, mode := range robustModes {
		t.Run(string(mode)+"/fail", func(t *testing.T) {
			w, s := newBombSetup(t, nil)
			inj := faults.New(1)
			inj.FailAt("step", 2)
			_, err := Run(w, s, w.Children, mode, Options{Workers: 4, Validate: true, Faults: inj})
			var f *faults.Fault
			if !errors.As(err, &f) {
				t.Fatalf("injected fault not surfaced: %v", err)
			}
			if f.Point != "step" || f.Hit != 2 {
				t.Fatalf("wrong fault surfaced: %+v", f)
			}
		})
		t.Run(string(mode)+"/panic", func(t *testing.T) {
			w, s := newBombSetup(t, nil)
			inj := faults.New(1)
			inj.PanicAt("step", 1)
			_, err := Run(w, s, w.Children, mode, Options{Workers: 4, Validate: true, Faults: inj})
			var f *faults.Fault
			if !errors.As(err, &f) {
				t.Fatalf("injected panic not surfaced as fault: %v", err)
			}
			if !f.Panicked {
				t.Fatalf("fault lost its panic flavour: %+v", f)
			}
		})
	}
}

// TestOnStepNotification: OnStep sees every completed step exactly once
// with its strategy index, in every mode; an OnStep error fails the window.
func TestOnStepNotification(t *testing.T) {
	for _, mode := range robustModes {
		t.Run(string(mode), func(t *testing.T) {
			w, s := newBombSetup(t, nil)
			var mu sync.Mutex
			seen := make(map[int]string)
			_, err := Run(w, s, w.Children, mode, Options{
				Workers: 4, Validate: true,
				OnStep: func(idx int, step exec.StepReport) error {
					mu.Lock()
					seen[idx] = step.Expr.Key()
					mu.Unlock()
					return nil
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			if len(seen) != len(s) {
				t.Fatalf("OnStep saw %d steps, want %d: %v", len(seen), len(s), seen)
			}
			for idx, key := range seen {
				if s[idx].Key() != key {
					t.Fatalf("step %d reported as %s, strategy has %s", idx, key, s[idx].Key())
				}
			}
		})
		t.Run(string(mode)+"/error", func(t *testing.T) {
			w, s := newBombSetup(t, nil)
			boom := errors.New("journal full")
			_, err := Run(w, s, w.Children, mode, Options{
				Workers: 4, Validate: true,
				OnStep: func(idx int, step exec.StepReport) error { return boom },
			})
			if !errors.Is(err, boom) {
				t.Fatalf("OnStep error did not fail the run: %v", err)
			}
		})
	}
}

// TestCancelledContextStopsModes: a pre-cancelled context stops every mode
// before it mutates the warehouse.
func TestCancelledContextStopsModes(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, mode := range robustModes {
		t.Run(string(mode), func(t *testing.T) {
			w, s := newBombSetup(t, nil)
			var steps atomic.Int64
			_, err := Run(w, s, w.Children, mode, Options{
				Workers: 4, Validate: true, Context: ctx,
				OnStep: func(int, exec.StepReport) error { steps.Add(1); return nil },
			})
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("want context.Canceled, got %v", err)
			}
			if steps.Load() != 0 {
				t.Fatalf("%d steps ran under a cancelled context", steps.Load())
			}
		})
	}
}
