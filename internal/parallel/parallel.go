// Package parallel implements Section 9 of the paper: VDAG strategies
// modeled as sequences of expression *sets*, where the expressions of a set
// run against the database concurrently.
//
// A sequential strategy is parallelized by conflict analysis: expression F
// must wait for an earlier expression E iff they touch overlapping state
// (E installs a view F reads, E produces a delta F consumes, or both write
// the same pending delta). Every stage then executes with one goroutine per
// expression — safe because non-conflicting expressions read shared tables
// and write disjoint state.
//
// The paper's two parallelism-increasing techniques are also provided:
// dual-stage view strategies (fewer intra-view dependencies) and VDAG
// flattening (algebra.Inline applied until derived views reference only
// base views), both of which trade extra total work for a shorter critical
// path.
package parallel

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/strategy"
)

// Stage is a set of expressions that may execute concurrently.
type Stage []strategy.Expr

// Plan is a sequence of stages.
type Plan []Stage

// String renders the plan stage by stage.
func (p Plan) String() string {
	s := ""
	for i, st := range p {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("[%d:", i+1)
		for _, e := range st {
			s += " " + e.String()
		}
		s += "]"
	}
	return s
}

// Stages returns the number of stages (the depth of the plan).
func (p Plan) Stages() int { return len(p) }

// Exprs returns the total number of expressions.
func (p Plan) Exprs() int {
	n := 0
	for _, st := range p {
		n += len(st)
	}
	return n
}

// childrenFn resolves the views a derived view is defined over.
type childrenFn func(view string) []string

// conflicts reports whether expression b must wait for earlier expression a.
func conflicts(a, b strategy.Expr, children childrenFn) bool {
	switch x := a.(type) {
	case strategy.Inst:
		switch y := b.(type) {
		case strategy.Inst:
			return x.View == y.View
		case strategy.Comp:
			// The Comp reads the state (or delta) of every referenced view.
			for _, c := range children(y.View) {
				if c == x.View {
					return true
				}
			}
			return y.View == x.View // Inst(V) consumes δV that Comp(V,·) writes
		}
	case strategy.Comp:
		switch y := b.(type) {
		case strategy.Inst:
			// Inst(V) after Comp(V,·) (consumes its output); Inst(X) after
			// Comp(·,{…X…}) (C3: the Comp reads δX before it is folded in).
			if y.View == x.View {
				return true
			}
			return x.Uses(y.View)
		case strategy.Comp:
			if x.View == y.View {
				return true // both write δ(View)
			}
			// C8: a Comp consuming δX waits for the Comps producing it.
			return y.Uses(x.View) || x.Uses(y.View)
		}
	}
	return false
}

// Parallelize converts a correct sequential strategy into a staged plan:
// each expression lands in the earliest stage after all earlier conflicting
// expressions. The sequential semantics are preserved exactly.
func Parallelize(s strategy.Strategy, children childrenFn) Plan {
	stageOf := make([]int, len(s))
	maxStage := -1
	for i, e := range s {
		st := 0
		for j := 0; j < i; j++ {
			if conflicts(s[j], e, children) && stageOf[j]+1 > st {
				st = stageOf[j] + 1
			}
		}
		stageOf[i] = st
		if st > maxStage {
			maxStage = st
		}
	}
	plan := make(Plan, maxStage+1)
	for i, e := range s {
		plan[stageOf[i]] = append(plan[stageOf[i]], e)
	}
	return plan
}

// Report summarizes a parallel execution.
type Report struct {
	Plan Plan
	// Mode records how the strategy was scheduled (sequential, staged, DAG).
	Mode exec.Mode
	// Workers is the scheduling width: the worker-pool size in DAG mode,
	// the widest stage in staged mode, 1 for sequential runs.
	Workers int
	// TotalWork is the sum of all expressions' measured work — what the
	// warehouse pays.
	TotalWork int64
	// SpanWork is the barrier-plan span: the sum over stages of the largest
	// single-expression work in the stage — what the update window costs
	// under staged execution with unlimited parallelism.
	SpanWork int64
	// CriticalPathWork is the longest work-weighted path through the
	// precedence DAG — what the window costs under barrier-free scheduling
	// with unlimited parallelism. Always ≤ SpanWork: dropping barriers can
	// only shorten the schedule.
	CriticalPathWork int64
	// SharedBytesPeak is the high-water transient footprint of the window's
	// shared-computation registry (0 when sharing is off).
	SharedBytesPeak int64
	// SharedDetail lists every shared entry's planned-vs-observed life
	// (operands and join intermediates), sorted by name; nil when sharing
	// is off.
	SharedDetail []core.SharedEntryStats
	// PeakReservedBytes is the high-water mark of the window memory budget's
	// reserved build-state bytes (0 when no budget is attached).
	PeakReservedBytes int64
	// Elapsed is the measured wall-clock update window.
	Elapsed time.Duration
	// Steps holds the per-expression reports, per stage (per DAG level for
	// DAG runs).
	Steps [][]exec.StepReport
}

// Speedup returns TotalWork/SpanWork, the work-based parallelism achieved.
func (r Report) Speedup() float64 {
	if r.SpanWork == 0 {
		return 1
	}
	return float64(r.TotalWork) / float64(r.SpanWork)
}

// Execute runs the plan against the warehouse, each stage's expressions in
// parallel goroutines with a barrier between stages. The report's
// CriticalPathWork equals SpanWork: under a barrier schedule the executed
// critical path *is* the chain of stage maxima (use Run with ModeDAG, or
// ExecuteDAG, for barrier-free scheduling and the tighter path metric).
func Execute(w *core.Warehouse, plan Plan) (rep Report, err error) {
	rep = Report{Plan: plan, Mode: exec.ModeStaged}
	// Flattening the plan in stage order preserves every conflicting pair's
	// relative order, so the sharing analysis sees the versions stages run.
	var flat strategy.Strategy
	for _, stage := range plan {
		flat = append(flat, stage...)
	}
	detach := exec.AttachSharing(w, flat)
	defer func() {
		st := detach()
		rep.SharedBytesPeak = st.BytesPeak
		rep.SharedDetail = st.Detail
	}()
	detachMem, merr := exec.AttachMemory(w, "", nil)
	if merr != nil {
		return rep, fmt.Errorf("parallel: %w", merr)
	}
	defer func() { rep.PeakReservedBytes = detachMem().PeakReservedBytes }()
	start := time.Now()
	for _, stage := range plan {
		results := make([]exec.StepReport, len(stage))
		errs := make([]error, len(stage))
		var wg sync.WaitGroup
		for i, e := range stage {
			wg.Add(1)
			go func(i int, e strategy.Expr) {
				defer wg.Done()
				results[i], errs[i] = runExpr(nil, w, e, i, nil)
			}(i, e)
		}
		wg.Wait()
		var stageMax int64
		for i := range stage {
			if errs[i] != nil {
				rep.Elapsed = time.Since(start)
				return rep, fmt.Errorf("parallel: %s: %w", stage[i], errs[i])
			}
			rep.TotalWork += results[i].Work
			if results[i].Work > stageMax {
				stageMax = results[i].Work
			}
		}
		rep.SpanWork += stageMax
		rep.Steps = append(rep.Steps, results)
		if len(stage) > rep.Workers {
			rep.Workers = len(stage)
		}
	}
	rep.Elapsed = time.Since(start)
	rep.CriticalPathWork = rep.SpanWork
	return rep, nil
}
