package parallel

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/cost"
	"repro/internal/exec"
	"repro/internal/planner"
	"repro/internal/relation"
	"repro/internal/strategy"
)

// TestBuildDAGMatchesParallelize: the DAG's levels are exactly the stages
// Parallelize computes, and every conflict is an edge.
func TestBuildDAGMatchesParallelize(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 40; trial++ {
		g := randomGraph(rng)
		stats := make(cost.Stats)
		for _, v := range g.Views() {
			stats[v] = cost.ViewStat{Size: rng.Int63n(100) + 10, DeltaPlus: rng.Int63n(10), DeltaMinus: rng.Int63n(10)}
		}
		res, err := planner.MinWork(g, stats)
		if err != nil {
			t.Fatal(err)
		}
		s := res.Strategy
		plan := Parallelize(s, g.Children)
		d := BuildDAG(s, g.Children)
		if d.Len() != len(s) {
			t.Fatalf("trial %d: DAG has %d nodes, strategy %d", trial, d.Len(), len(s))
		}
		if d.Levels() != plan.Stages() {
			t.Fatalf("trial %d: %d levels vs %d stages", trial, d.Levels(), plan.Stages())
		}
		if got := d.StagedPlan().String(); got != plan.String() {
			t.Fatalf("trial %d: StagedPlan %s != Parallelize %s", trial, got, plan.String())
		}
		for i := 0; i < len(s); i++ {
			for j := 0; j < i; j++ {
				want := conflicts(s[j], s[i], g.Children)
				if d.HasEdge(j, i) != want {
					t.Fatalf("trial %d: edge %d→%d = %v, conflict = %v", trial, j, i, d.HasEdge(j, i), want)
				}
			}
		}
		if !d.Acyclic() {
			t.Fatalf("trial %d: DAG not acyclic", trial)
		}
	}
}

// TestExecuteDAGMatchesSequential: DAG-scheduled execution at several pool
// sizes yields the same final state and total work as sequential execution.
func TestExecuteDAGMatchesSequential(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 8, 0} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			seqW := newWarehouse(t)
			stageChanges(t, seqW)
			dagW := seqW.Clone()

			s := dualStage(seqW)
			seqRep, err := exec.Execute(seqW, s, exec.Options{Validate: true})
			if err != nil {
				t.Fatal(err)
			}
			rep, err := Run(dagW, s, dagW.Children, exec.ModeDAG, Options{Workers: workers, Validate: true})
			if err != nil {
				t.Fatal(err)
			}
			if rep.TotalWork != seqRep.TotalWork() {
				t.Errorf("DAG total work %d != sequential %d", rep.TotalWork, seqRep.TotalWork())
			}
			if rep.Mode != exec.ModeDAG {
				t.Errorf("mode = %q", rep.Mode)
			}
			if workers > 0 && rep.Workers > workers {
				t.Errorf("pool reported %d workers, bound was %d", rep.Workers, workers)
			}
			if err := dagW.VerifyAll(); err != nil {
				t.Fatal(err)
			}
			for _, v := range []string{"R", "S", "J1", "J2"} {
				a, b := seqW.MustView(v).SortedRows(), dagW.MustView(v).SortedRows()
				if len(a) != len(b) {
					t.Fatalf("%s: %d vs %d rows", v, len(a), len(b))
				}
				for i := range a {
					if relation.CompareTuples(a[i].Tuple, b[i].Tuple) != 0 || a[i].Count != b[i].Count {
						t.Fatalf("%s row %d differs", v, i)
					}
				}
			}
		})
	}
}

// TestRunModesAgree: sequential, staged and DAG modes through Run leave
// identical states and report consistent metrics on the same measured run.
func TestRunModesAgree(t *testing.T) {
	base := newWarehouse(t)
	stageChanges(t, base)
	s := dualStage(base)

	var reports []Report
	var rows []string
	for _, mode := range []exec.Mode{exec.ModeSequential, exec.ModeStaged, exec.ModeDAG} {
		w := base.Clone()
		rep, err := Run(w, s, w.Children, mode, Options{Workers: 4, Validate: true})
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		if err := w.VerifyAll(); err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		var sig strings.Builder
		for _, v := range []string{"R", "S", "J1", "J2"} {
			for _, r := range w.MustView(v).SortedRows() {
				fmt.Fprintf(&sig, "%s:%s*%d;", v, r.Tuple, r.Count)
			}
		}
		reports = append(reports, rep)
		rows = append(rows, sig.String())
	}
	for i := 1; i < len(rows); i++ {
		if rows[i] != rows[0] {
			t.Fatalf("mode %s final state differs from sequential", reports[i].Mode)
		}
		if reports[i].TotalWork != reports[0].TotalWork {
			t.Errorf("mode %s total work %d != %d", reports[i].Mode, reports[i].TotalWork, reports[0].TotalWork)
		}
	}
	for _, rep := range reports {
		if rep.CriticalPathWork <= 0 || rep.SpanWork <= 0 {
			t.Errorf("%s: missing metrics: span=%d critpath=%d", rep.Mode, rep.SpanWork, rep.CriticalPathWork)
		}
		if rep.CriticalPathWork > rep.SpanWork {
			t.Errorf("%s: critical path %d exceeds span %d", rep.Mode, rep.CriticalPathWork, rep.SpanWork)
		}
		if rep.SpanWork > rep.TotalWork {
			t.Errorf("%s: span %d exceeds total %d", rep.Mode, rep.SpanWork, rep.TotalWork)
		}
		if rep.Elapsed <= 0 {
			t.Errorf("%s: report Elapsed not set", rep.Mode)
		}
	}
}

// TestStepElapsedPopulated asserts the fix for the staged executor never
// filling StepReport.Elapsed: both staged and DAG paths must measure every
// step.
func TestStepElapsedPopulated(t *testing.T) {
	staged := newWarehouse(t)
	stageChanges(t, staged)
	dag := staged.Clone()

	s := dualStage(staged)
	stagedRep, err := Execute(staged, Parallelize(s, staged.Children))
	if err != nil {
		t.Fatal(err)
	}
	dagRep, err := Run(dag, s, dag.Children, exec.ModeDAG, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for name, rep := range map[string]Report{"staged": stagedRep, "dag": dagRep} {
		n := 0
		for _, stage := range rep.Steps {
			for _, step := range stage {
				n++
				if step.Elapsed <= 0 {
					t.Errorf("%s: %s has zero Elapsed", name, step.Expr)
				}
			}
		}
		if n != len(s) {
			t.Errorf("%s: %d steps reported, want %d", name, n, len(s))
		}
		if rep.Elapsed <= 0 {
			t.Errorf("%s: report Elapsed not set", name)
		}
	}
	// DAG steps carry a worker id within the pool bound.
	for _, stage := range dagRep.Steps {
		for _, step := range stage {
			if step.Worker < 0 || step.Worker >= 2 {
				t.Errorf("dag: %s ran on worker %d, pool size 2", step.Expr, step.Worker)
			}
		}
	}
}

// failingStrategy puts one mid-DAG failure (Comp on a base view is rejected
// by the engine) among healthy expressions.
func failingStrategy() strategy.Strategy {
	return strategy.Strategy{
		strategy.Comp{View: "J1", Over: []string{"R"}},
		strategy.Comp{View: "R", Over: []string{"R"}}, // fails: R is base
		strategy.Comp{View: "J2", Over: []string{"R"}},
		strategy.Inst{View: "R"},
		strategy.Comp{View: "J1", Over: []string{"S"}},
		strategy.Inst{View: "S"},
		strategy.Inst{View: "J1"}, strategy.Inst{View: "J2"},
	}
}

// TestExecuteDAGErrorDeterministic: a Comp failing mid-DAG cancels
// scheduling and the same error comes back on every run, across repeated
// trials and pool sizes.
func TestExecuteDAGErrorDeterministic(t *testing.T) {
	for trial := 0; trial < 30; trial++ {
		w := newWarehouse(t)
		stageChanges(t, w)
		d := BuildDAG(failingStrategy(), w.Children)
		_, err := ExecuteDAG(w, d, Options{Workers: 1 + trial%4})
		if err == nil {
			t.Fatal("failing strategy executed without error")
		}
		if !strings.Contains(err.Error(), "Comp(R, {R})") {
			t.Fatalf("trial %d: first error not deterministic: %v", trial, err)
		}
	}
}

// TestExecuteDAGFirstErrorSmallestIndex: when several expressions fail in
// one run, the error reported is the one earliest in strategy order (the
// tie-break that makes concurrent failures deterministic).
func TestExecuteDAGFirstErrorSmallestIndex(t *testing.T) {
	s := strategy.Strategy{
		strategy.Comp{View: "R", Over: []string{"R"}}, // fails first in order
		strategy.Comp{View: "S", Over: []string{"S"}}, // also fails
		strategy.Inst{View: "R"}, strategy.Inst{View: "S"},
	}
	for trial := 0; trial < 20; trial++ {
		w := newWarehouse(t)
		stageChanges(t, w)
		d := BuildDAG(s, w.Children)
		// One worker: the ready queue is FIFO in strategy order, so the run
		// itself is deterministic and both failures race only in index.
		_, err := ExecuteDAG(w, d, Options{Workers: 1})
		if err == nil || !strings.Contains(err.Error(), "Comp(R, {R})") {
			t.Fatalf("trial %d: err = %v, want Comp(R, {R}) failure", trial, err)
		}
	}
}

// TestExecuteDAGNoGoroutineLeak: after many failing and cancelled runs, the
// goroutine count returns to its baseline — no worker is left blocked on
// the ready queue.
func TestExecuteDAGNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 50; i++ {
		w := newWarehouse(t)
		stageChanges(t, w)
		d := BuildDAG(failingStrategy(), w.Children)
		if _, err := ExecuteDAG(w, d, Options{Workers: 4}); err == nil {
			t.Fatal("expected error")
		}
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		w2 := newWarehouse(t)
		stageChanges(t, w2)
		d2 := BuildDAG(dualStage(w2), w2.Children)
		if _, err := ExecuteDAG(w2, d2, Options{Workers: 4, Context: ctx}); err == nil {
			t.Fatal("cancelled run reported success")
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC() // give exited goroutines a chance to be reaped
		after := runtime.NumGoroutine()
		if after <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after", before, after)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestExecuteDAGCancelledContext: a pre-cancelled context runs nothing.
func TestExecuteDAGCancelledContext(t *testing.T) {
	w := newWarehouse(t)
	stageChanges(t, w)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	d := BuildDAG(dualStage(w), w.Children)
	rep, err := ExecuteDAG(w, d, Options{Context: ctx})
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if rep.TotalWork != 0 {
		t.Errorf("cancelled run did work: %d", rep.TotalWork)
	}
}

// TestRunValidateRejects: Run refuses an incorrect strategy before touching
// the warehouse.
func TestRunValidateRejects(t *testing.T) {
	w := newWarehouse(t)
	stageChanges(t, w)
	// Install(R) before Comp(J1,{R}) violates C3: the comp reads δR after
	// it was folded in.
	bad := strategy.Strategy{
		strategy.Inst{View: "R"},
		strategy.Comp{View: "J1", Over: []string{"R"}},
		strategy.Comp{View: "J1", Over: []string{"S"}},
		strategy.Comp{View: "J2", Over: []string{"R"}},
		strategy.Inst{View: "S"},
		strategy.Inst{View: "J1"}, strategy.Inst{View: "J2"},
	}
	if _, err := Run(w, bad, w.Children, exec.ModeDAG, Options{Validate: true}); err == nil {
		t.Fatal("incorrect strategy accepted")
	}
	if _, err := Run(w, dualStage(w), w.Children, "bogus", Options{}); err == nil {
		t.Fatal("unknown mode accepted")
	}
}

// TestExecuteDAGEmpty: a zero-node DAG completes trivially.
func TestExecuteDAGEmpty(t *testing.T) {
	w := newWarehouse(t)
	rep, err := ExecuteDAG(w, BuildDAG(nil, w.Children), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalWork != 0 || len(rep.Steps) != 0 {
		t.Errorf("empty DAG produced work: %+v", rep)
	}
}
