package parallel

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/algebra"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/delta"
	"repro/internal/exec"
	"repro/internal/planner"
	"repro/internal/relation"
	"repro/internal/strategy"
	"repro/internal/vdag"
)

var (
	schemaR = relation.Schema{{Name: "a", Kind: relation.KindInt}, {Name: "b", Kind: relation.KindInt}}
	schemaS = relation.Schema{{Name: "b", Kind: relation.KindInt}, {Name: "c", Kind: relation.KindInt}}
)

func intRow(vals ...int64) relation.Tuple {
	t := make(relation.Tuple, len(vals))
	for i, v := range vals {
		t[i] = relation.NewInt(v)
	}
	return t
}

// newWarehouse builds two independent derived views over shared bases:
// J1 = R⋈S (on b), J2 = σ(R). Their comps can run in parallel.
func newWarehouse(t *testing.T) *core.Warehouse {
	t.Helper()
	w := core.New(core.Options{})
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(w.DefineBase("R", schemaR))
	must(w.DefineBase("S", schemaS))
	j1 := algebra.NewBuilder().From("r", "R", schemaR).From("s", "S", schemaS)
	j1.Join("r.b", "s.b").SelectCol("r.a").SelectCol("s.c")
	must(w.DefineDerived("J1", j1.MustBuild()))
	j2 := algebra.NewBuilder().From("r", "R", schemaR)
	j2.Where(&algebra.Binary{Op: algebra.OpGt, L: j2.Col("r.a"), R: &algebra.Const{Value: relation.NewInt(1)}}).
		SelectCol("r.a").SelectCol("r.b")
	must(w.DefineDerived("J2", j2.MustBuild()))
	must(w.LoadBase("R", []relation.Tuple{intRow(1, 10), intRow(2, 10), intRow(3, 20), intRow(4, 20)}))
	must(w.LoadBase("S", []relation.Tuple{intRow(10, 100), intRow(20, 200)}))
	must(w.RefreshAll())
	return w
}

func stageChanges(t *testing.T, w *core.Warehouse) {
	t.Helper()
	dR := delta.New(schemaR)
	dR.Add(intRow(2, 10), -1)
	dR.Add(intRow(5, 20), 1)
	if err := w.StageDelta("R", dR); err != nil {
		t.Fatal(err)
	}
	dS := delta.New(schemaS)
	dS.Add(intRow(20, 200), -1)
	if err := w.StageDelta("S", dS); err != nil {
		t.Fatal(err)
	}
}

func dualStage(w *core.Warehouse) strategy.Strategy {
	return strategy.Strategy{
		strategy.Comp{View: "J1", Over: []string{"R", "S"}},
		strategy.Comp{View: "J2", Over: []string{"R"}},
		strategy.Inst{View: "R"}, strategy.Inst{View: "S"},
		strategy.Inst{View: "J1"}, strategy.Inst{View: "J2"},
	}
}

func TestParallelizeDualStage(t *testing.T) {
	w := newWarehouse(t)
	plan := Parallelize(dualStage(w), w.Children)
	// Both comps are independent → stage 1; all installs conflict with the
	// comps → stage 2.
	if plan.Stages() != 2 {
		t.Fatalf("stages = %d (%s)", plan.Stages(), plan)
	}
	if len(plan[0]) != 2 || len(plan[1]) != 4 {
		t.Errorf("stage sizes wrong: %s", plan)
	}
	if plan.Exprs() != 6 {
		t.Errorf("Exprs = %d", plan.Exprs())
	}
	if !strings.Contains(plan.String(), "[1:") {
		t.Errorf("String = %q", plan.String())
	}
}

func TestParallelizeOneWayKeepsOrder(t *testing.T) {
	w := newWarehouse(t)
	s := strategy.Strategy{
		strategy.Comp{View: "J1", Over: []string{"R"}},
		strategy.Comp{View: "J2", Over: []string{"R"}},
		strategy.Inst{View: "R"},
		strategy.Comp{View: "J1", Over: []string{"S"}},
		strategy.Inst{View: "S"},
		strategy.Inst{View: "J1"}, strategy.Inst{View: "J2"},
	}
	plan := Parallelize(s, w.Children)
	// Stage 1: both comps over R. Stage 2: Inst(R). Stage 3: Comp(J1,{S}),
	// Inst(J2)? Inst(J2) conflicts with Comp(J2,{R}) (stage 1) only → could
	// land in stage 2 alongside Inst(R).
	if plan.Stages() < 4 {
		t.Fatalf("expected ≥4 stages, got %d (%s)", plan.Stages(), plan)
	}
	// First stage holds the two independent comps.
	if len(plan[0]) != 2 {
		t.Errorf("stage 1 = %v", plan[0])
	}
}

func TestExecuteParallelMatchesSequential(t *testing.T) {
	seqW := newWarehouse(t)
	stageChanges(t, seqW)
	parW := seqW.Clone()

	s := dualStage(seqW)
	seqRep, err := exec.Execute(seqW, s, exec.Options{Validate: true})
	if err != nil {
		t.Fatal(err)
	}
	plan := Parallelize(s, parW.Children)
	parRep, err := Execute(parW, plan)
	if err != nil {
		t.Fatal(err)
	}
	if parRep.TotalWork != seqRep.TotalWork() {
		t.Errorf("parallel total work %d != sequential %d", parRep.TotalWork, seqRep.TotalWork())
	}
	if parRep.SpanWork > parRep.TotalWork || parRep.SpanWork <= 0 {
		t.Errorf("span work %d out of range", parRep.SpanWork)
	}
	if parRep.Speedup() < 1 {
		t.Errorf("speedup = %v", parRep.Speedup())
	}
	if err := parW.VerifyAll(); err != nil {
		t.Fatal(err)
	}
	// Final states identical.
	for _, v := range []string{"R", "S", "J1", "J2"} {
		a, b := seqW.MustView(v).SortedRows(), parW.MustView(v).SortedRows()
		if len(a) != len(b) {
			t.Fatalf("%s: %d vs %d rows", v, len(a), len(b))
		}
		for i := range a {
			if relation.CompareTuples(a[i].Tuple, b[i].Tuple) != 0 || a[i].Count != b[i].Count {
				t.Fatalf("%s row %d differs", v, i)
			}
		}
	}
}

func TestExecuteErrorPropagates(t *testing.T) {
	w := newWarehouse(t)
	plan := Plan{{strategy.Comp{View: "nope", Over: []string{"R"}}}}
	if _, err := Execute(w, plan); err == nil {
		t.Errorf("unknown view accepted")
	}
	if _, err := Execute(w, Plan{{nil}}); err == nil {
		t.Errorf("nil expression accepted")
	}
}

// TestParallelizePropertyRandom checks, for random VDAGs and their MinWork
// strategies, that staging (a) preserves the expression multiset and (b)
// never reorders a conflicting pair across stages.
func TestParallelizePropertyRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 60; trial++ {
		g := randomGraph(rng)
		stats := make(cost.Stats)
		for _, v := range g.Views() {
			stats[v] = cost.ViewStat{Size: rng.Int63n(100) + 10, DeltaPlus: rng.Int63n(10), DeltaMinus: rng.Int63n(10)}
		}
		res, err := planner.MinWork(g, stats)
		if err != nil {
			t.Fatal(err)
		}
		plan := Parallelize(res.Strategy, g.Children)
		// (a) same multiset of expressions.
		if plan.Exprs() != len(res.Strategy) {
			t.Fatalf("trial %d: %d exprs staged, strategy has %d", trial, plan.Exprs(), len(res.Strategy))
		}
		seen := make(map[string]int)
		for _, e := range res.Strategy {
			seen[e.Key()]++
		}
		stageOf := make(map[string]int)
		for si, stage := range plan {
			for _, e := range stage {
				seen[e.Key()]--
				stageOf[e.Key()] = si
			}
		}
		for k, n := range seen {
			if n != 0 {
				t.Fatalf("trial %d: expression %s count off by %d", trial, k, n)
			}
		}
		// (b) conflicting pairs keep their order across stages.
		for i := 0; i < len(res.Strategy); i++ {
			for j := i + 1; j < len(res.Strategy); j++ {
				if conflicts(res.Strategy[i], res.Strategy[j], g.Children) {
					si, sj := stageOf[res.Strategy[i].Key()], stageOf[res.Strategy[j].Key()]
					if si >= sj {
						t.Fatalf("trial %d: conflict %s ≺ %s but stages %d ≥ %d",
							trial, res.Strategy[i], res.Strategy[j], si, sj)
					}
				}
			}
		}
	}
}

func randomGraph(rng *rand.Rand) *vdag.Graph {
	b := vdag.NewBuilder()
	var names []string
	nBase := 2 + rng.Intn(3)
	for i := 0; i < nBase; i++ {
		n := fmt.Sprintf("B%d", i)
		if err := b.Add(n, nil); err != nil {
			panic(err)
		}
		names = append(names, n)
	}
	for i := 0; i < 1+rng.Intn(3); i++ {
		var over []string
		for _, c := range names {
			if rng.Intn(2) == 0 {
				over = append(over, c)
			}
		}
		if len(over) == 0 {
			over = names[:1]
		}
		n := fmt.Sprintf("D%d", i)
		if err := b.Add(n, over); err != nil {
			panic(err)
		}
		names = append(names, n)
	}
	return b.Build()
}

func TestSpeedupEmptyPlan(t *testing.T) {
	var r Report
	if r.Speedup() != 1 {
		t.Errorf("zero-span speedup = %v", r.Speedup())
	}
}

// TestInlineFlatteningEnablesTwoStagePlan reproduces the Section 9
// flattening example: a level-2 view inlined down to base views lets every
// comp run in the first stage.
func TestInlineFlatteningEnablesTwoStagePlan(t *testing.T) {
	// Chain: R → J (σ over R) → K (σ over J).
	w := core.New(core.Options{})
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(w.DefineBase("R", schemaR))
	jb := algebra.NewBuilder().From("r", "R", schemaR)
	jb.SelectCol("r.a").SelectCol("r.b")
	jDef := jb.MustBuild()
	must(w.DefineDerived("J", jDef))
	kb := algebra.NewBuilder().From("j", "J", jDef.OutputSchema())
	kb.Where(&algebra.Binary{Op: algebra.OpGt, L: kb.Col("j.a"), R: &algebra.Const{Value: relation.NewInt(2)}}).
		SelectCol("j.a")
	kDef := kb.MustBuild()
	must(w.DefineDerived("K", kDef))

	// Unflattened: Comp(K,{J}) must follow Comp(J,{R}) → ≥2 comp stages.
	s := strategy.Strategy{
		strategy.Comp{View: "J", Over: []string{"R"}},
		strategy.Comp{View: "K", Over: []string{"J"}},
		strategy.Inst{View: "R"}, strategy.Inst{View: "J"}, strategy.Inst{View: "K"},
	}
	plan := Parallelize(s, w.Children)
	if len(plan[0]) != 1 {
		t.Fatalf("unflattened first stage = %v", plan[0])
	}

	// Flatten K over J: K now references R directly.
	flat, err := algebra.Inline(kDef, 0, jDef)
	if err != nil {
		t.Fatal(err)
	}
	if flat.BaseViews()[0] != "R" {
		t.Fatalf("flattened refs = %v", flat.BaseViews())
	}
	w2 := core.New(core.Options{})
	must(w2.DefineBase("R", schemaR))
	must(w2.DefineDerived("J", jDef))
	must(w2.DefineDerived("K", flat))
	must(w2.LoadBase("R", []relation.Tuple{intRow(1, 10), intRow(3, 30), intRow(4, 40)}))
	must(w2.RefreshAll())
	dR := delta.New(schemaR)
	dR.Add(intRow(3, 30), -1)
	dR.Add(intRow(9, 90), 1)
	must(w2.StageDelta("R", dR))

	sf := strategy.Strategy{
		strategy.Comp{View: "J", Over: []string{"R"}},
		strategy.Comp{View: "K", Over: []string{"R"}},
		strategy.Inst{View: "R"}, strategy.Inst{View: "J"}, strategy.Inst{View: "K"},
	}
	planF := Parallelize(sf, w2.Children)
	if len(planF[0]) != 2 {
		t.Fatalf("flattened first stage = %v (%s)", planF[0], planF)
	}
	rep, err := Execute(w2, planF)
	if err != nil {
		t.Fatal(err)
	}
	if err := w2.VerifyAll(); err != nil {
		t.Fatal(err)
	}
	if rep.Plan.Stages() != planF.Stages() {
		t.Errorf("report plan mismatch")
	}
	// K must reflect the change: row 9 (>2) present, 3 gone.
	rows := w2.MustView("K").SortedRows()
	want := "(4)(9)"
	got := ""
	for _, r := range rows {
		got += r.Tuple.String()
	}
	if got != want {
		t.Errorf("K = %v", rows)
	}
}
