package parallel

import (
	"testing"

	"repro/internal/strategy"
)

// fuzzVDAG is a small fixed VDAG for the fuzz harness:
//
//	R, S          bases
//	J1 ← {R, S}   join
//	J2 ← {R}      selection
//	K  ← {J1}     level-2 view
var fuzzVDAG = map[string][]string{
	"R": nil, "S": nil,
	"J1": {"R", "S"},
	"J2": {"R"},
	"K":  {"J1"},
}

func fuzzChildren(view string) []string { return fuzzVDAG[view] }

// fuzzVocab is the expression alphabet fuzzed strategies are decoded from:
// every Inst plus every 1-way and combined Comp over the fuzz VDAG.
var fuzzVocab = []strategy.Expr{
	strategy.Inst{View: "R"}, strategy.Inst{View: "S"},
	strategy.Inst{View: "J1"}, strategy.Inst{View: "J2"}, strategy.Inst{View: "K"},
	strategy.Comp{View: "J1", Over: []string{"R"}},
	strategy.Comp{View: "J1", Over: []string{"S"}},
	strategy.Comp{View: "J1", Over: []string{"R", "S"}},
	strategy.Comp{View: "J2", Over: []string{"R"}},
	strategy.Comp{View: "K", Over: []string{"J1"}},
}

// decodeStrategy maps fuzz bytes to a strategy: one expression per byte,
// length capped so the quadratic conflict checks stay fast.
func decodeStrategy(data []byte) strategy.Strategy {
	if len(data) > 24 {
		data = data[:24]
	}
	s := make(strategy.Strategy, 0, len(data))
	for _, b := range data {
		s = append(s, fuzzVocab[int(b)%len(fuzzVocab)])
	}
	return s
}

// FuzzParallelizeRespectsConflicts asserts, for arbitrary expression
// sequences, the two structural invariants the executors rely on: staging
// and DAG construction keep every conflicting pair in its original relative
// order, and the precedence DAG is acyclic. (Parallelize and BuildDAG are
// purely syntactic — they must uphold this for incorrect strategies too.)
func FuzzParallelizeRespectsConflicts(f *testing.F) {
	f.Add([]byte{5, 8, 0, 6, 1, 9, 2, 4, 3})     // a sensible 1-way strategy
	f.Add([]byte{7, 8, 0, 1, 2, 3, 4})           // dual-stage-like
	f.Add([]byte{0, 0, 0, 5, 5, 5})              // heavy duplication
	f.Add([]byte{9, 4, 3, 2, 1, 0, 8, 7, 6, 5})  // reversed nonsense order
	f.Add([]byte{})                              // empty strategy
	f.Add([]byte{255, 128, 64, 32, 16, 8, 4, 2}) // out-of-range bytes wrap
	f.Fuzz(func(t *testing.T, data []byte) {
		s := decodeStrategy(data)
		plan := Parallelize(s, fuzzChildren)
		d := BuildDAG(s, fuzzChildren)

		if plan.Exprs() != len(s) || d.Len() != len(s) {
			t.Fatalf("expression count changed: plan %d, dag %d, strategy %d",
				plan.Exprs(), d.Len(), len(s))
		}
		if d.Levels() != plan.Stages() {
			t.Fatalf("dag levels %d != plan stages %d", d.Levels(), plan.Stages())
		}

		// Positions are not unique keys (duplicates allowed), so recover each
		// node's stage from the plan by walking it in order: expressions
		// within a stage preserve strategy order, which pins duplicates.
		stageOf := make([]int, len(s))
		used := make([]bool, len(s))
		for si, stage := range plan {
			for _, e := range stage {
				found := false
				for i := range s {
					if !used[i] && s[i].Key() == e.Key() {
						stageOf[i], used[i] = si, true
						found = true
						break
					}
				}
				if !found {
					t.Fatalf("stage %d holds %s not in strategy", si, e)
				}
			}
		}

		for i := 0; i < len(s); i++ {
			for j := i + 1; j < len(s); j++ {
				if !conflicts(s[i], s[j], fuzzChildren) {
					continue
				}
				// Staging must strictly order the pair…
				if stageOf[i] >= stageOf[j] {
					t.Fatalf("conflict %s ≺ %s but stages %d ≥ %d",
						s[i], s[j], stageOf[i], stageOf[j])
				}
				// …and the DAG must carry the edge, in the original direction.
				if !d.HasEdge(i, j) {
					t.Fatalf("conflict %s ≺ %s has no DAG edge %d→%d", s[i], s[j], i, j)
				}
				if d.HasEdge(j, i) {
					t.Fatalf("reversed DAG edge %d→%d", j, i)
				}
			}
		}
		if !d.Acyclic() {
			t.Fatalf("DAG not acyclic for strategy %s", s)
		}
	})
}
