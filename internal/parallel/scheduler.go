// Barrier-free DAG scheduling. Parallelize (parallel.go) collapses the
// conflict relation into stage numbers, which inserts a barrier between
// consecutive stages: every expression of stage k waits for the *slowest*
// expression of stage k−1 even when its own predecessors finished long ago.
// BuildDAG keeps the precedence edges instead, and ExecuteDAG runs them with
// a bounded worker pool where each expression becomes runnable the moment
// its last predecessor completes — the executed schedule's length approaches
// the critical path rather than the sum of stage maxima.
package parallel

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/faults"
	"repro/internal/strategy"
)

// DAG is the precedence graph of a correct sequential strategy: node i is
// the strategy's i-th expression; an edge j→i (j < i) means expression i
// conflicts with earlier expression j and must wait for it. Because edges
// only point from lower to higher strategy positions, the graph is acyclic
// by construction.
type DAG struct {
	exprs strategy.Strategy
	preds [][]int // preds[i]: nodes i waits for (each < i)
	succs [][]int // succs[j]: nodes waiting for j (each > j)
	level []int   // barrier-stage index: 1 + max level over preds
}

// BuildDAG converts a correct sequential strategy into its precedence DAG
// using the same conflict relation Parallelize stages with. The edge set is
// the full conflict relation (no transitive reduction): redundant edges do
// not change the schedule, only the in-degree bookkeeping.
func BuildDAG(s strategy.Strategy, children childrenFn) *DAG {
	n := len(s)
	d := &DAG{
		exprs: s.Clone(),
		preds: make([][]int, n),
		succs: make([][]int, n),
		level: make([]int, n),
	}
	for i := 0; i < n; i++ {
		for j := 0; j < i; j++ {
			if conflicts(s[j], s[i], children) {
				d.preds[i] = append(d.preds[i], j)
				d.succs[j] = append(d.succs[j], i)
				if d.level[j]+1 > d.level[i] {
					d.level[i] = d.level[j] + 1
				}
			}
		}
	}
	return d
}

// Len returns the number of expressions (nodes).
func (d *DAG) Len() int { return len(d.exprs) }

// Expr returns the i-th expression.
func (d *DAG) Expr(i int) strategy.Expr { return d.exprs[i] }

// Preds returns the predecessors of node i (a copy).
func (d *DAG) Preds(i int) []int { return append([]int(nil), d.preds[i]...) }

// HasEdge reports whether node i waits for node j.
func (d *DAG) HasEdge(j, i int) bool {
	for _, p := range d.preds[i] {
		if p == j {
			return true
		}
	}
	return false
}

// Level returns the barrier-stage index of node i: the stage Parallelize
// would put the expression in.
func (d *DAG) Level(i int) int { return d.level[i] }

// Levels returns the number of barrier stages (the plan depth).
func (d *DAG) Levels() int {
	m := 0
	for _, l := range d.level {
		if l+1 > m {
			m = l + 1
		}
	}
	return m
}

// Edges returns the number of precedence edges.
func (d *DAG) Edges() int {
	n := 0
	for _, p := range d.preds {
		n += len(p)
	}
	return n
}

// StagedPlan collapses the DAG back to the barrier plan: expressions grouped
// by level. The result equals Parallelize on the original strategy.
func (d *DAG) StagedPlan() Plan {
	plan := make(Plan, d.Levels())
	for i, e := range d.exprs {
		plan[d.level[i]] = append(plan[d.level[i]], e)
	}
	return plan
}

// Acyclic verifies by Kahn's algorithm that every node is reachable through
// in-degree-zero elimination. BuildDAG guarantees this (edges point forward
// in strategy order); the check backs the fuzz harness.
func (d *DAG) Acyclic() bool {
	n := d.Len()
	indeg := make([]int, n)
	var queue []int
	for i := 0; i < n; i++ {
		indeg[i] = len(d.preds[i])
		if indeg[i] == 0 {
			queue = append(queue, i)
		}
	}
	removed := 0
	for len(queue) > 0 {
		j := queue[0]
		queue = queue[1:]
		removed++
		for _, i := range d.succs[j] {
			indeg[i]--
			if indeg[i] == 0 {
				queue = append(queue, i)
			}
		}
	}
	return removed == n
}

// spanWork computes the barrier-plan span from measured per-node work: the
// sum over levels of the largest single-node work in the level.
func (d *DAG) spanWork(work []int64) int64 {
	maxAt := make([]int64, d.Levels())
	for i := range d.exprs {
		if work[i] > maxAt[d.level[i]] {
			maxAt[d.level[i]] = work[i]
		}
	}
	var span int64
	for _, m := range maxAt {
		span += m
	}
	return span
}

// criticalPathWork computes the longest work-weighted path through the DAG
// from measured per-node work — the update window a barrier-free schedule
// approaches with unlimited workers. Nodes are in topological (strategy)
// order, so one forward pass suffices.
func (d *DAG) criticalPathWork(work []int64) int64 {
	cp := make([]int64, d.Len())
	var longest int64
	for i := range d.exprs {
		var best int64
		for _, j := range d.preds[i] {
			if cp[j] > best {
				best = cp[j]
			}
		}
		cp[i] = best + work[i]
		if cp[i] > longest {
			longest = cp[i]
		}
	}
	return longest
}

// Options configure Run and ExecuteDAG.
type Options struct {
	// Workers bounds the worker pool in DAG mode; 0 means
	// runtime.GOMAXPROCS(0). Staged mode ignores it (one goroutine per
	// stage expression, the Section 9 model).
	Workers int
	// Context cancels scheduling early; nil means context.Background().
	// In-flight expressions finish, unstarted ones are abandoned.
	Context context.Context
	// Validate checks the strategy against the correctness conditions
	// (C1–C8, relaxed by the quiescent set) before executing.
	Validate bool
	// OnStep, when non-nil, is called after each expression completes
	// successfully, with the expression's strategy index and its measured
	// step. An error fails the step (the window journal uses this to make
	// a failed journal append fail the window). Staged and DAG execution
	// call it from concurrent workers: it must be safe for concurrent use.
	OnStep func(idx int, step exec.StepReport) error
	// Faults, when non-nil, is consulted at every step boundary (point
	// "step") before the expression runs, and at the spill I/O points when
	// a memory budget is attached. Injected failures, panics and crashes
	// surface exactly as real ones would.
	Faults *faults.Injector
	// SpillDir is where over-budget builds spill when the warehouse
	// configures a memory budget; empty means a per-run temp directory.
	SpillDir string
}

// notify invokes OnStep if set.
func (o Options) notify(idx int, step exec.StepReport) error {
	if o.OnStep == nil {
		return nil
	}
	return o.OnStep(idx, step)
}

// Run executes the strategy under the given mode and returns a Report whose
// TotalWork/SpanWork/CriticalPathWork are all computed from the same
// measured run, so sequential, staged and DAG execution compare directly.
func Run(w *core.Warehouse, s strategy.Strategy, children childrenFn, mode exec.Mode, opts Options) (Report, error) {
	if opts.Validate {
		if err := exec.Validate(w, s); err != nil {
			return Report{}, err
		}
	}
	changed := exec.ChangedViews(w)
	d := BuildDAG(s, children)
	detach := exec.AttachSharing(w, s)
	detachMem, merr := exec.AttachMemory(w, opts.SpillDir, opts.Faults)
	if merr != nil {
		detach()
		return Report{}, fmt.Errorf("parallel: %w", merr)
	}
	var (
		rep Report
		err error
	)
	switch mode {
	case exec.ModeSequential, "":
		mode = exec.ModeSequential
		rep, err = executeSequential(w, d, opts)
	case exec.ModeStaged:
		rep, err = executeStaged(w, d, opts)
	case exec.ModeDAG:
		rep, err = ExecuteDAG(w, d, opts)
	default:
		detach()
		detachMem()
		return Report{}, fmt.Errorf("parallel: unknown execution mode %q", mode)
	}
	rep.Mode = mode
	st := detach()
	rep.SharedBytesPeak = st.BytesPeak
	rep.SharedDetail = st.Detail
	rep.PeakReservedBytes = detachMem().PeakReservedBytes
	if err != nil {
		return rep, err
	}
	if err := exec.MarkSkippedStale(w, s, changed); err != nil {
		return rep, err
	}
	return rep, nil
}

// runExpr executes one expression against the warehouse, measuring its work
// and wall-clock duration. A panic anywhere inside — the expression itself
// or an injected fault — is recovered into an error, so a panicking operator
// in a worker goroutine fails its step instead of killing the process.
func runExpr(ctx context.Context, w *core.Warehouse, e strategy.Expr, worker int, inj *faults.Injector) (step exec.StepReport, err error) {
	step = exec.StepReport{Expr: e, Worker: worker}
	defer func() {
		if p := recover(); p != nil {
			err = exec.PanicError(p)
		}
	}()
	if ferr := inj.Hit("step"); ferr != nil {
		return step, ferr
	}
	step, err = exec.RunStep(ctx, w, e)
	step.Worker = worker
	return step, err
}

// finishReport assembles a Report from per-node step reports: steps are
// grouped by barrier level and the three work metrics are derived from the
// same measured works. ran[i] marks nodes that actually executed (all of
// them on the success path).
func (d *DAG) finishReport(rep *Report, steps []exec.StepReport, ran []bool) {
	work := make([]int64, d.Len())
	rep.Steps = make([][]exec.StepReport, d.Levels())
	for i := range steps {
		if !ran[i] {
			continue
		}
		work[i] = steps[i].Work
		rep.TotalWork += steps[i].Work
		rep.Steps[d.level[i]] = append(rep.Steps[d.level[i]], steps[i])
	}
	rep.SpanWork = d.spanWork(work)
	rep.CriticalPathWork = d.criticalPathWork(work)
	rep.Plan = d.StagedPlan()
}

// executeSequential runs the nodes one at a time in strategy order. The
// report still carries SpanWork and CriticalPathWork, predicting what the
// same run would cost staged or DAG-scheduled.
func executeSequential(w *core.Warehouse, d *DAG, opts Options) (Report, error) {
	rep := Report{Workers: 1}
	ctx := opts.Context
	steps := make([]exec.StepReport, d.Len())
	ran := make([]bool, d.Len())
	start := time.Now()
	for i := 0; i < d.Len(); i++ {
		var err error
		if ctx != nil && ctx.Err() != nil {
			err = ctx.Err()
		} else {
			var step exec.StepReport
			step, err = runExpr(ctx, w, d.Expr(i), 0, opts.Faults)
			if err == nil {
				steps[i], ran[i] = step, true
				err = opts.notify(i, step)
			}
		}
		if err != nil {
			d.finishReport(&rep, steps, ran)
			rep.Elapsed = time.Since(start)
			return rep, fmt.Errorf("parallel: %s: %w", d.Expr(i), err)
		}
	}
	rep.Elapsed = time.Since(start)
	d.finishReport(&rep, steps, ran)
	return rep, nil
}

// executeStaged runs the barrier plan of the DAG: each level's expressions
// in parallel goroutines, a barrier between levels (the Section 9 model,
// with per-step Elapsed and worker ids filled in).
func executeStaged(w *core.Warehouse, d *DAG, opts Options) (Report, error) {
	rep := Report{}
	ctx := opts.Context
	steps := make([]exec.StepReport, d.Len())
	ran := make([]bool, d.Len())
	byLevel := make([][]int, d.Levels())
	for i := 0; i < d.Len(); i++ {
		byLevel[d.level[i]] = append(byLevel[d.level[i]], i)
	}
	start := time.Now()
	for _, nodes := range byLevel {
		if ctx != nil && ctx.Err() != nil {
			d.finishReport(&rep, steps, ran)
			rep.Elapsed = time.Since(start)
			return rep, fmt.Errorf("parallel: %s: %w", d.Expr(nodes[0]), ctx.Err())
		}
		errs := make([]error, len(nodes))
		var wg sync.WaitGroup
		for slot, idx := range nodes {
			wg.Add(1)
			go func(slot, idx int) {
				defer wg.Done()
				step, err := runExpr(ctx, w, d.Expr(idx), slot, opts.Faults)
				if err == nil {
					steps[idx] = step
					err = opts.notify(idx, step)
				}
				errs[slot] = err
			}(slot, idx)
		}
		wg.Wait()
		for slot, idx := range nodes {
			if errs[slot] != nil {
				d.finishReport(&rep, steps, ran)
				rep.Elapsed = time.Since(start)
				return rep, fmt.Errorf("parallel: %s: %w", d.Expr(idx), errs[slot])
			}
			ran[idx] = true
		}
		if len(nodes) > rep.Workers {
			rep.Workers = len(nodes)
		}
	}
	rep.Elapsed = time.Since(start)
	d.finishReport(&rep, steps, ran)
	return rep, nil
}

// ExecuteDAG runs the precedence DAG with a bounded worker pool and no
// inter-stage barriers: a node is pushed onto the ready queue the moment its
// in-degree counter reaches zero. The first expression error cancels
// scheduling (in-flight expressions finish, unstarted ones are abandoned)
// and is returned deterministically: among the failures of a run, the one
// whose expression is earliest in the strategy wins.
func ExecuteDAG(w *core.Warehouse, d *DAG, opts Options) (Report, error) {
	n := d.Len()
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	rep := Report{Workers: workers}
	if n == 0 {
		rep.Steps = [][]exec.StepReport{}
		rep.Plan = Plan{}
		return rep, nil
	}
	ctx := opts.Context
	if ctx == nil {
		ctx = context.Background()
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	indeg := make([]int32, n)
	ready := make(chan int, n)
	for i := 0; i < n; i++ {
		indeg[i] = int32(len(d.preds[i]))
		if indeg[i] == 0 {
			ready <- i
		}
	}

	steps := make([]exec.StepReport, n)
	ran := make([]bool, n)
	var (
		pending  = int64(n)
		errMu    sync.Mutex
		firstErr error
		firstIdx = n
	)
	record := func(idx int, err error) {
		errMu.Lock()
		if err != nil && idx < firstIdx {
			firstIdx, firstErr = idx, err
		}
		errMu.Unlock()
		cancel()
	}

	start := time.Now()
	var wg sync.WaitGroup
	for worker := 0; worker < workers; worker++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for idx := range ready {
				// Once cancelled, keep draining (so every node flows
				// through and the queue closes) without executing.
				if ctx.Err() == nil {
					step, err := runExpr(ctx, w, d.Expr(idx), worker, opts.Faults)
					if err == nil {
						steps[idx], ran[idx] = step, true
						err = opts.notify(idx, step)
					}
					if err != nil {
						record(idx, err)
					}
				}
				for _, succ := range d.succs[idx] {
					if atomic.AddInt32(&indeg[succ], -1) == 0 {
						ready <- succ
					}
				}
				if atomic.AddInt64(&pending, -1) == 0 {
					close(ready)
				}
			}
		}(worker)
	}
	wg.Wait()
	rep.Elapsed = time.Since(start)
	d.finishReport(&rep, steps, ran)
	if firstErr != nil {
		return rep, fmt.Errorf("parallel: %s: %w", d.Expr(firstIdx), firstErr)
	}
	if err := ctx.Err(); err != nil {
		return rep, fmt.Errorf("parallel: execution cancelled: %w", err)
	}
	return rep, nil
}
