package journal

import (
	"bytes"
	"context"
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/delta"
	"repro/internal/relation"
	"repro/internal/strategy"
)

func testBegin() BeginRecord {
	return BeginRecord{
		Seq:             3,
		Planner:         "minwork",
		Mode:            "dag",
		Workers:         4,
		SkipEmptyDeltas: true,
		StateDigest:     0xdeadbeefcafe,
		BatchDigest:     0x1234,
		Strategy: strategy.Strategy{
			strategy.Comp{View: "V", Over: []string{"A", "B"}},
			strategy.Comp{View: "W", Over: []string{"A"}},
			strategy.Inst{View: "V"},
			strategy.Inst{View: "W"},
		},
		Batch: []ViewBatch{
			{View: "A", Rows: []RowChange{{Key: "k1", Count: 2}, {Key: "k2", Count: -1}}},
			{View: "B", Rows: []RowChange{{Key: "k3", Count: 1}}},
		},
	}
}

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	b := testBegin()
	if err := w.Begin(b); err != nil {
		t.Fatal(err)
	}
	steps := []StepRecord{
		{Index: 0, Key: "C:V:A,B", Work: 42, Terms: 3},
		{Index: 2, Key: "I:V", Work: 7, Digest: 0xabcdef},
		{Index: 1, Key: "C:W:A", Work: 0, Terms: 1, Skipped: true},
	}
	for _, s := range steps {
		if err := w.Step(s); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Commit(CommitRecord{TotalWork: 49, ElapsedNS: 12345}); err != nil {
		t.Fatal(err)
	}

	lg, err := ReadLog(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if lg.Truncated {
		t.Fatal("intact journal reported truncated")
	}
	if len(lg.Windows) != 1 {
		t.Fatalf("%d windows, want 1", len(lg.Windows))
	}
	wl := lg.Windows[0]
	if !wl.Committed() || wl.Abort != nil {
		t.Fatalf("window not committed: %+v", wl)
	}
	got := wl.Begin
	if got.Seq != b.Seq || got.Planner != b.Planner || got.Mode != b.Mode ||
		got.Workers != b.Workers || !got.SkipEmptyDeltas || got.UseIndexes ||
		got.StateDigest != b.StateDigest || got.BatchDigest != b.BatchDigest {
		t.Fatalf("begin mismatch: %+v vs %+v", got, b)
	}
	if got.Strategy.String() != b.Strategy.String() {
		t.Fatalf("strategy %s, want %s", got.Strategy, b.Strategy)
	}
	if len(got.Batch) != 2 || got.Batch[0].View != "A" || len(got.Batch[0].Rows) != 2 ||
		got.Batch[0].Rows[1].Count != -1 || got.Batch[1].Rows[0].Key != "k3" {
		t.Fatalf("batch mismatch: %+v", got.Batch)
	}
	if len(wl.Steps) != 3 {
		t.Fatalf("%d steps, want 3", len(wl.Steps))
	}
	if wl.Steps[1].Digest != 0xabcdef || !wl.Steps[2].Skipped || wl.Steps[0].Terms != 3 {
		t.Fatalf("steps mismatch: %+v", wl.Steps)
	}
	if wl.Commit.TotalWork != 49 || wl.Commit.ElapsedNS != 12345 {
		t.Fatalf("commit mismatch: %+v", wl.Commit)
	}
	if lg.InFlight() != nil {
		t.Fatal("committed journal reports in-flight window")
	}
	if lg.CommittedCount() != 1 {
		t.Fatalf("CommittedCount = %d", lg.CommittedCount())
	}
}

func TestInFlightDetection(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Begin(testBegin()); err != nil {
		t.Fatal(err)
	}
	if err := w.Step(StepRecord{Index: 0, Key: "C:V:A,B", Work: 10}); err != nil {
		t.Fatal(err)
	}
	lg, err := ReadLog(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	wl := lg.InFlight()
	if wl == nil {
		t.Fatal("crashed journal has no in-flight window")
	}
	if len(wl.Steps) != 1 || wl.Steps[0].Work != 10 {
		t.Fatalf("in-flight steps: %+v", wl.Steps)
	}

	// An aborted window is closed, not in-flight.
	if err := w.Abort(AbortRecord{Reason: "boom"}); err != nil {
		t.Fatal(err)
	}
	lg, err = ReadLog(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if lg.InFlight() != nil {
		t.Fatal("aborted window reported in-flight")
	}
	if lg.Windows[0].Abort.Reason != "boom" {
		t.Fatalf("abort reason %q", lg.Windows[0].Abort.Reason)
	}
}

func TestTornTailTolerated(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Begin(testBegin()); err != nil {
		t.Fatal(err)
	}
	if err := w.Step(StepRecord{Index: 0, Key: "C:V:A,B"}); err != nil {
		t.Fatal(err)
	}
	intact := buf.Len()
	if err := w.Step(StepRecord{Index: 1, Key: "C:W:A"}); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Every strict prefix that cuts into the last record must parse to the
	// first two records with Truncated set.
	for cut := intact + 1; cut < len(full); cut++ {
		lg, err := ReadLog(bytes.NewReader(full[:cut]))
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if !lg.Truncated {
			t.Fatalf("cut %d: torn tail not reported", cut)
		}
		if len(lg.Windows) != 1 || len(lg.Windows[0].Steps) != 1 {
			t.Fatalf("cut %d: parsed %+v", cut, lg.Windows)
		}
	}
}

func TestCorruptByteDropsTail(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Begin(testBegin()); err != nil {
		t.Fatal(err)
	}
	mark := buf.Len()
	if err := w.Step(StepRecord{Index: 0, Key: "C:V:A,B", Work: 5}); err != nil {
		t.Fatal(err)
	}
	raw := append([]byte(nil), buf.Bytes()...)
	raw[mark+3] ^= 0xff // corrupt the step record's body
	lg, err := ReadLog(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if !lg.Truncated || len(lg.Windows[0].Steps) != 0 {
		t.Fatalf("corrupt record not dropped: truncated=%v steps=%d", lg.Truncated, len(lg.Windows[0].Steps))
	}
}

func TestStepOutsideWindowIsError(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Step(StepRecord{Index: 0, Key: "C:V:A"}); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadLog(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("step before begin accepted")
	}
}

func TestWriterStickyError(t *testing.T) {
	w := NewWriter(failWriter{})
	if err := w.Commit(CommitRecord{}); err == nil {
		t.Fatal("write to failing sink succeeded")
	}
	if err := w.Err(); err == nil {
		t.Fatal("sticky error not recorded")
	}
	if err := w.Abort(AbortRecord{}); err == nil {
		t.Fatal("append after failure succeeded")
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, bytes.ErrTooLarge }

func TestBatchRoundTripThroughWarehouse(t *testing.T) {
	schema := relation.Schema{
		{Name: "a", Kind: relation.KindInt},
		{Name: "b", Kind: relation.KindInt},
	}
	build := func() *core.Warehouse {
		w := core.New(core.Options{})
		if err := w.DefineBase("B0", schema); err != nil {
			t.Fatal(err)
		}
		return w
	}
	w := build()
	d := delta.New(schema)
	d.Add(relation.Tuple{relation.NewInt(1), relation.NewInt(2)}, 3)
	d.Add(relation.Tuple{relation.NewInt(4), relation.NewInt(5)}, -1)
	if err := w.StageDelta("B0", d); err != nil {
		t.Fatal(err)
	}
	batch, err := BatchOf(w)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != 1 || batch[0].View != "B0" || len(batch[0].Rows) != 2 {
		t.Fatalf("batch: %+v", batch)
	}
	w2 := build()
	if err := RestoreBatch(w2, batch); err != nil {
		t.Fatal(err)
	}
	d2, err := w2.DeltaOf("B0")
	if err != nil {
		t.Fatal(err)
	}
	if d2.Digest() != d.Digest() || d2.Size() != d.Size() {
		t.Fatalf("restored delta digest %x size %d, want %x size %d",
			d2.Digest(), d2.Size(), d.Digest(), d.Size())
	}
	if BatchDigest(batch) == 0 {
		t.Fatal("batch digest is zero for a non-empty batch")
	}
}

func TestStateDigestDetectsChanges(t *testing.T) {
	schema := relation.Schema{{Name: "a", Kind: relation.KindInt}}
	w := core.New(core.Options{})
	if err := w.DefineBase("B0", schema); err != nil {
		t.Fatal(err)
	}
	if err := w.LoadBase("B0", []relation.Tuple{{relation.NewInt(1)}, {relation.NewInt(2)}}); err != nil {
		t.Fatal(err)
	}
	h1 := StateDigest(w)
	clone := w.Clone()
	if StateDigest(clone) != h1 {
		t.Fatal("clone digests differently")
	}
	// Pending changes do not contribute until installed.
	d := delta.New(schema)
	d.Add(relation.Tuple{relation.NewInt(9)}, 1)
	if err := clone.StageDelta("B0", d); err != nil {
		t.Fatal(err)
	}
	if StateDigest(clone) != h1 {
		t.Fatal("staged-but-uninstalled delta changed the state digest")
	}
	if _, err := clone.Install("B0"); err != nil {
		t.Fatal(err)
	}
	if StateDigest(clone) == h1 {
		t.Fatal("installed delta did not change the state digest")
	}
}

// TestWriterSetContext: with a cancelled context attached, Begin and Step
// are refused (a dead window must not open or extend journal windows) while
// Abort and Commit still land — they close a window that already executed.
// The refusal is not sticky, and detaching the context restores appends.
func TestWriterSetContext(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Begin(testBegin()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	w.SetContext(ctx)
	if err := w.Step(StepRecord{Index: 0, Key: "C:V:A", Work: 1}); !errors.Is(err, context.Canceled) {
		t.Fatalf("step under cancelled ctx: %v", err)
	}
	if err := w.Begin(testBegin()); !errors.Is(err, context.Canceled) {
		t.Fatalf("begin under cancelled ctx: %v", err)
	}
	if err := w.Abort(AbortRecord{Reason: "cancelled"}); err != nil {
		t.Fatalf("abort must land under cancelled ctx: %v", err)
	}
	if w.Err() != nil {
		t.Fatalf("context refusal became sticky: %v", w.Err())
	}
	w.SetContext(nil)
	if err := w.Begin(testBegin()); err != nil {
		t.Fatal(err)
	}
	if err := w.Commit(CommitRecord{TotalWork: 1}); err != nil {
		t.Fatal(err)
	}

	lg, err := ReadLog(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if lg.InFlight() != nil || lg.CommittedCount() != 1 || len(lg.Windows) != 2 {
		t.Fatalf("log shape: windows=%d committed=%d inflight=%v",
			len(lg.Windows), lg.CommittedCount(), lg.InFlight() != nil)
	}
}
