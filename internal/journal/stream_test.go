package journal

import (
	"bytes"
	"errors"
	"testing"
)

// writeSampleLog journals two windows (one committed, one aborted) and
// returns the raw bytes.
func writeSampleLog(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(w.Begin(BeginRecord{Seq: 1, Planner: "minwork", Mode: "dag", StateDigest: 7, BatchDigest: BatchDigest(nil)}))
	must(w.Step(StepRecord{Index: 0, Key: "comp:J", Work: 12, Digest: 99}))
	must(w.Step(StepRecord{Index: 1, Key: "inst:J", Work: 3}))
	must(w.Commit(CommitRecord{TotalWork: 15}))
	must(w.Begin(BeginRecord{Seq: 2, Mode: "sequential"}))
	must(w.Abort(AbortRecord{Reason: "deadline"}))
	return buf.Bytes()
}

// TestDecodeRecordIncremental: feeding the stream one byte at a time yields
// exactly the frames ReadLog sees — n==0 until a frame completes, never an
// error on a clean prefix.
func TestDecodeRecordIncremental(t *testing.T) {
	raw := writeSampleLog(t)
	var types []byte
	buf := []byte{}
	for i := 0; i < len(raw); i++ {
		buf = append(buf, raw[i])
		for {
			typ, _, n, err := DecodeRecord(buf)
			if err != nil {
				t.Fatalf("byte %d: %v", i, err)
			}
			if n == 0 {
				break
			}
			types = append(types, typ)
			buf = buf[n:]
		}
	}
	if len(buf) != 0 {
		t.Fatalf("%d undecoded trailing bytes", len(buf))
	}
	want := []byte{TypeBegin, TypeStep, TypeStep, TypeCommit, TypeBegin, TypeAbort}
	if len(types) != len(want) {
		t.Fatalf("decoded %d records, want %d", len(types), len(want))
	}
	for i := range want {
		if types[i] != want[i] {
			t.Fatalf("record %d: type %d, want %d", i, types[i], want[i])
		}
	}
}

// TestDecodeRecordCorruption: a bit flip anywhere inside a complete frame is
// ErrCorruptFrame, not "incomplete".
func TestDecodeRecordCorruption(t *testing.T) {
	raw := writeSampleLog(t)
	// Flip a payload bit in the first frame (offset 3 is inside the begin
	// record's payload for any plausible encoding).
	for _, off := range []int{3, 10, len(raw) / 2 % 20} {
		mut := append([]byte(nil), raw...)
		mut[off] ^= 0x40
		_, _, _, err := DecodeRecord(mut)
		if err == nil {
			// The flip may have landed in the length varint making the frame
			// look longer — then it must decode as incomplete, never as a
			// valid frame with different content.
			typ, _, n, _ := DecodeRecord(mut)
			if n != 0 && mut[0] == raw[0] && typ == raw[0] {
				t.Fatalf("offset %d: corrupted frame decoded as valid", off)
			}
			continue
		}
		if !errors.Is(err, ErrCorruptFrame) {
			t.Fatalf("offset %d: error %v does not wrap ErrCorruptFrame", off, err)
		}
	}
	// Unknown record type.
	mut := append([]byte(nil), raw...)
	mut[0] = 42
	if _, _, _, err := DecodeRecord(mut); !errors.Is(err, ErrCorruptFrame) {
		t.Fatalf("unknown type: %v", err)
	}
}

// TestAssemblerReassemblesWindows: records fed in stream order yield the
// same windows ReadLog parses.
func TestAssemblerReassemblesWindows(t *testing.T) {
	raw := writeSampleLog(t)
	ref, err := ReadLog(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}

	var got []*WindowLog
	var asm Assembler
	buf := raw
	for len(buf) > 0 {
		typ, payload, n, err := DecodeRecord(buf)
		if err != nil || n == 0 {
			t.Fatalf("decode: n=%d err=%v", n, err)
		}
		wl, err := asm.Feed(typ, payload)
		if err != nil {
			t.Fatal(err)
		}
		if wl != nil {
			got = append(got, wl)
		}
		buf = buf[n:]
	}
	if asm.InFlight() {
		t.Fatal("assembler left a window open")
	}
	if len(got) != len(ref.Windows) {
		t.Fatalf("assembled %d windows, ReadLog parsed %d", len(got), len(ref.Windows))
	}
	for i, wl := range got {
		rw := ref.Windows[i]
		if wl.Begin.Seq != rw.Begin.Seq || wl.Committed() != rw.Committed() || len(wl.Steps) != len(rw.Steps) {
			t.Fatalf("window %d: assembled %+v, parsed %+v", i, wl, rw)
		}
		for j := range wl.Steps {
			if wl.Steps[j] != rw.Steps[j] {
				t.Fatalf("window %d step %d: %+v vs %+v", i, j, wl.Steps[j], rw.Steps[j])
			}
		}
	}
	if !got[0].Committed() || got[0].Commit.TotalWork != 15 {
		t.Fatalf("window 0: %+v", got[0].Commit)
	}
	if got[1].Abort == nil || got[1].Abort.Reason != "deadline" {
		t.Fatalf("window 1: %+v", got[1].Abort)
	}
}

// TestAssemblerGrammar: out-of-grammar records are errors, and Reset clears
// an open window.
func TestAssemblerGrammar(t *testing.T) {
	raw := writeSampleLog(t)
	var frames [][2]any // typ, payload
	buf := raw
	for len(buf) > 0 {
		typ, payload, n, _ := DecodeRecord(buf)
		frames = append(frames, [2]any{typ, append([]byte(nil), payload...)})
		buf = buf[n:]
	}
	feed := func(a *Assembler, i int) (*WindowLog, error) {
		return a.Feed(frames[i][0].(byte), frames[i][1].([]byte))
	}

	var a Assembler
	if _, err := feed(&a, 1); err == nil { // step with no begin
		t.Fatal("step outside a window accepted")
	}
	if _, err := feed(&a, 3); err == nil { // commit with no begin
		t.Fatal("commit outside a window accepted")
	}
	if _, err := feed(&a, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := feed(&a, 0); err == nil { // begin inside open window
		t.Fatal("nested begin accepted")
	}
	if !a.InFlight() {
		t.Fatal("window not open after begin")
	}
	a.Reset()
	if a.InFlight() {
		t.Fatal("Reset left the window open")
	}
}

// TestChunkCRC: the chunk checksum detects any single-bit flip.
func TestChunkCRC(t *testing.T) {
	raw := writeSampleLog(t)
	sum := ChunkCRC(raw)
	for off := 0; off < len(raw); off += 13 {
		mut := append([]byte(nil), raw...)
		mut[off] ^= 1
		if ChunkCRC(mut) == sum {
			t.Fatalf("bit flip at %d not detected", off)
		}
	}
}
