package journal

// Streaming support: replication ships journal frames over the network, so
// the reader side needs to (a) decode records incrementally from a byte
// stream that may end mid-frame, and (b) reassemble records into windows as
// they arrive — without the whole log in hand, which is what ReadLog wants.
// DecodeRecord is the incremental frame parser; Assembler folds a record
// sequence back into WindowLogs, yielding each window the moment its commit
// or abort record lands.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc64"
)

// Exported record type tags, for callers that route on DecodeRecord's typ
// (the values match the on-disk frame type byte).
const (
	TypeBegin  = typeBegin
	TypeStep   = typeStep
	TypeCommit = typeCommit
	TypeAbort  = typeAbort
)

// ErrCorruptFrame reports a frame that is definitely damaged — a CRC
// mismatch, an unknown record type, or an implausible length — as opposed to
// one that is merely incomplete. Streaming readers re-fetch on corruption
// and wait for more bytes on incompleteness; ReadLog's file-oriented policy
// (treat both as a torn tail) is wrong for a network stream, where a
// bit-flip must not be mistaken for "the rest hasn't arrived yet".
var ErrCorruptFrame = errors.New("journal: corrupt frame")

// ChunkCRC fingerprints a shipped byte range with the journal's CRC64
// polynomial, so a transfer can be verified end-to-end independently of the
// per-record CRCs (a truncated response, for instance, still ends on a valid
// record boundary).
func ChunkCRC(p []byte) uint64 { return crc64.Checksum(p, crcTable) }

// DecodeRecord parses the first complete frame of buf. It returns the
// record's type byte, its payload (aliasing buf — copy to retain), and the
// frame's total encoded length. n == 0 with a nil error means buf holds only
// a prefix of a valid frame: the caller should wait for more bytes. A frame
// that can never become valid — CRC failure, unknown type, oversized length
// — returns an error wrapping ErrCorruptFrame.
func DecodeRecord(buf []byte) (typ byte, payload []byte, n int, err error) {
	typ, payload, n, err = DecodeFrame(buf)
	if err != nil || n == 0 {
		return typ, payload, n, err
	}
	if typ < typeBegin || typ > typeAbort {
		return 0, nil, 0, fmt.Errorf("%w: unknown record type %d", ErrCorruptFrame, typ)
	}
	return typ, payload, n, nil
}

// EncodeFrame wraps a payload in the journal's frame format —
// [type][uvarint len][payload][CRC64] — without appending it anywhere.
// Sibling journals (the ingest journal's accept/cut records) reuse the
// window journal's framing and torn-tail semantics by encoding their own
// record types with this and parsing them back with DecodeFrame.
func EncodeFrame(typ byte, payload []byte) []byte {
	frame := make([]byte, 0, 1+binary.MaxVarintLen64+len(payload)+8)
	frame = append(frame, typ)
	frame = binary.AppendUvarint(frame, uint64(len(payload)))
	frame = append(frame, payload...)
	sum := crc64.Checksum(frame, crcTable)
	return binary.BigEndian.AppendUint64(frame, sum)
}

// DecodeFrame is DecodeRecord without the window-record type check: any type
// byte whose frame passes the length and CRC checks is returned. Journals
// with their own record vocabulary decode with this and route on typ
// themselves.
func DecodeFrame(buf []byte) (typ byte, payload []byte, n int, err error) {
	if len(buf) == 0 {
		return 0, nil, 0, nil
	}
	typ = buf[0]
	plen, ulen := binary.Uvarint(buf[1:])
	if ulen == 0 {
		return 0, nil, 0, nil // length varint incomplete
	}
	if ulen < 0 || plen > maxFrame {
		return 0, nil, 0, fmt.Errorf("%w: implausible payload length", ErrCorruptFrame)
	}
	head := 1 + ulen
	total := head + int(plen) + 8
	if len(buf) < total {
		return 0, nil, 0, nil
	}
	sum := crc64.Checksum(buf[:head+int(plen)], crcTable)
	if binary.BigEndian.Uint64(buf[head+int(plen):total]) != sum {
		return 0, nil, 0, fmt.Errorf("%w: CRC mismatch on type-%d record", ErrCorruptFrame, typ)
	}
	return typ, buf[head : head+int(plen)], total, nil
}

// Assembler folds a sequence of decoded records back into windows. Feed it
// each record in stream order; it returns the completed WindowLog when a
// commit or abort record closes the open window, nil otherwise. Records that
// violate the window grammar (a step outside any window, a begin inside an
// open one) are errors: on a verified stream they indicate a protocol bug,
// not line noise.
type Assembler struct {
	cur *WindowLog
}

// InFlight reports whether a window is open (a begin has been fed without
// its commit or abort).
func (a *Assembler) InFlight() bool { return a.cur != nil }

// Reset discards any partially assembled window — used when the stream
// position is rewound (e.g. a corrupt chunk is dropped and re-fetched).
func (a *Assembler) Reset() { a.cur = nil }

// Feed consumes one decoded record. When the record closes a window, the
// assembled WindowLog is returned and the assembler becomes idle.
func (a *Assembler) Feed(typ byte, payload []byte) (*WindowLog, error) {
	switch typ {
	case typeBegin:
		if a.cur != nil {
			return nil, fmt.Errorf("journal: begin record arrived inside open window %d", a.cur.Begin.Seq)
		}
		b, err := decodeBegin(payload)
		if err != nil {
			return nil, err
		}
		a.cur = &WindowLog{Begin: b}
		return nil, nil
	case typeStep:
		if a.cur == nil {
			return nil, errors.New("journal: step record outside any window")
		}
		s, err := decodeStep(payload)
		if err != nil {
			return nil, err
		}
		a.cur.Steps = append(a.cur.Steps, s)
		return nil, nil
	case typeCommit:
		if a.cur == nil {
			return nil, errors.New("journal: commit record outside any window")
		}
		c, err := decodeCommit(payload)
		if err != nil {
			return nil, err
		}
		wl := a.cur
		wl.Commit = &c
		a.cur = nil
		return wl, nil
	case typeAbort:
		if a.cur == nil {
			return nil, errors.New("journal: abort record outside any window")
		}
		ab, err := decodeAbort(payload)
		if err != nil {
			return nil, err
		}
		wl := a.cur
		wl.Abort = &ab
		a.cur = nil
		return wl, nil
	default:
		return nil, fmt.Errorf("%w: unknown record type %d", ErrCorruptFrame, typ)
	}
}
