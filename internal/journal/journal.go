// Package journal implements the append-only window journal that makes
// update windows crash-safe. Every journaled window writes a Begin record
// (sequence number, planner, execution mode, a fingerprint of the
// pre-window materialized state, the full strategy and the staged change
// batch), one Step record per completed Comp/Inst expression (with the
// installed delta's digest for Inst steps), and a Commit — or an Abort when
// the window failed in-process. A crash leaves the journal with a Begin
// and some Steps but neither Commit nor Abort; package recovery detects
// that in-flight window, restores the pre-window state, re-stages the
// journaled batch and re-executes the strategy, verifying each replayed
// step against the journaled digests.
//
// The on-disk format reuses the snapshot package's framing idioms: varint
// lengths, length-prefixed strings, and CRC64 (ECMA) integrity. Each record
// is one self-delimiting frame
//
//	[type byte][payload length uvarint][payload][CRC64 big-endian]
//
// where the CRC covers the type byte, the length bytes and the payload, so
// a torn tail — the normal artifact of a crash mid-append — is detected and
// tolerated: ReadLog returns every intact record and sets Truncated.
package journal

import (
	"bufio"
	"bytes"
	"context"
	"encoding/binary"
	"fmt"
	"hash/crc64"
	"io"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/delta"
	"repro/internal/relation"
	"repro/internal/strategy"
)

// Record type tags.
const (
	typeBegin  byte = 1
	typeStep   byte = 2
	typeCommit byte = 3
	typeAbort  byte = 4
)

// Frame and payload guards: a corrupt or adversarial length never causes a
// large allocation.
const (
	maxFrame = 1 << 30
	maxItems = 1 << 24
)

var crcTable = crc64.MakeTable(crc64.ECMA)

// RowChange is one signed tuple change of a journaled batch, keyed by the
// tuple's encoded form (relation.Tuple.Encode).
type RowChange struct {
	Key   string
	Count int64
}

// ViewBatch is the staged delta of one base view.
type ViewBatch struct {
	View string
	Rows []RowChange
}

// BeginRecord opens a window: everything recovery needs to re-create and
// re-execute it against the restored pre-window state.
type BeginRecord struct {
	// Seq is the window's sequence number (informational).
	Seq int
	// Planner names the planner that produced the strategy (informational).
	Planner string
	// Mode is the execution mode the window ran under ("sequential",
	// "staged", "dag", or "recompute" for the degradation path).
	Mode string
	// Workers is the worker bound of the original run (informational;
	// results are mode- and worker-invariant).
	Workers int
	// SkipEmptyDeltas and UseIndexes record the work-affecting warehouse
	// options, so a replay reproduces the journaled Work figures exactly.
	SkipEmptyDeltas bool
	UseIndexes      bool
	// StateDigest fingerprints the materialized (installed) state the
	// window started from; recovery verifies the restored snapshot against
	// it before re-executing.
	StateDigest uint64
	// BatchDigest fingerprints Batch (cross-check; the batch itself is
	// stored in full).
	BatchDigest uint64
	// Strategy is the full expression sequence of the window.
	Strategy strategy.Strategy
	// Batch is the staged change batch, one entry per base view with
	// pending changes, sorted by view name.
	Batch []ViewBatch
}

// StepRecord marks one completed expression.
type StepRecord struct {
	// Index is the expression's position in the Begin record's strategy.
	Index int
	// Key is the expression's strategy key (sanity cross-check).
	Key string
	// Work is the step's measured work (operand tuples for Comp, rows
	// installed for Inst).
	Work int64
	// Terms is the Comp's maintenance-term count (0 for Inst).
	Terms int
	// Skipped marks a Comp elided by the empty-delta optimization.
	Skipped bool
	// Digest fingerprints the delta an Inst step installed; 0 when not
	// digested (Comp steps, and views whose float-valued aggregates make
	// bit-exact digests unsound across evaluation orders).
	Digest uint64
}

// CommitRecord closes a window successfully.
type CommitRecord struct {
	// TotalWork is the window's measured work.
	TotalWork int64
	// ElapsedNS is the window's wall-clock duration in nanoseconds.
	ElapsedNS int64
	// UnixNano is the commit's wall-clock time (0 when unrecorded — journals
	// written before commit times existed decode with zeros).
	UnixNano int64
	// AcceptUnixNano is when the window's change batch was accepted from the
	// stream (0 for operator-invoked windows). Commit minus accept is the
	// freshness a replica can report against the leader.
	AcceptUnixNano int64
}

// AbortRecord closes a window that failed in-process (the failure was
// observed and handled; nothing is left to recover). A crashed window by
// definition has no Abort.
type AbortRecord struct {
	Reason string
}

// Writer appends records to a journal sink. Methods are safe for
// concurrent use (DAG workers journal steps as they complete). Errors are
// sticky: once an append fails the journal tail is suspect, so every later
// append reports the first error.
type Writer struct {
	mu  sync.Mutex
	out io.Writer
	err error
	ctx context.Context // when non-nil, gates begin/step appends
}

// NewWriter creates a journal writer appending to out. If out has a
// Sync() error method (an *os.File), every record is synced after the
// write.
func NewWriter(out io.Writer) *Writer { return &Writer{out: out} }

// Err returns the sticky error, if any append has failed.
func (w *Writer) Err() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}

// SetContext attaches ctx to the writer: once ctx is cancelled, Begin and
// Step appends are refused with ctx's error, so a dead window cannot keep
// opening or extending journal windows. Commit and Abort stay exempt — they
// are how an already-executed window closes its journal record, and
// refusing them would manufacture a phantom in-flight window. The refusal
// is not sticky (the journal tail is intact). Pass nil to detach.
func (w *Writer) SetContext(ctx context.Context) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.ctx = ctx
}

func (w *Writer) append(typ byte, payload []byte) error {
	frame := make([]byte, 0, len(payload)+binary.MaxVarintLen64+9)
	frame = append(frame, typ)
	frame = binary.AppendUvarint(frame, uint64(len(payload)))
	frame = append(frame, payload...)
	sum := crc64.Checksum(frame, crcTable)
	frame = binary.BigEndian.AppendUint64(frame, sum)

	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	if w.ctx != nil && (typ == typeBegin || typ == typeStep) {
		if err := w.ctx.Err(); err != nil {
			return fmt.Errorf("journal: append cancelled: %w", err)
		}
	}
	if _, err := w.out.Write(frame); err != nil {
		w.err = fmt.Errorf("journal: append: %w", err)
		return w.err
	}
	if s, ok := w.out.(interface{ Sync() error }); ok {
		if err := s.Sync(); err != nil {
			w.err = fmt.Errorf("journal: sync: %w", err)
			return w.err
		}
	}
	return nil
}

// Begin appends a window-begin record.
func (w *Writer) Begin(b BeginRecord) error {
	var buf bytes.Buffer
	writeUvarint(&buf, uint64(b.Seq))
	writeString(&buf, b.Planner)
	writeString(&buf, b.Mode)
	writeUvarint(&buf, uint64(b.Workers))
	var flags byte
	if b.SkipEmptyDeltas {
		flags |= 1
	}
	if b.UseIndexes {
		flags |= 2
	}
	buf.WriteByte(flags)
	writeUint64(&buf, b.StateDigest)
	writeUint64(&buf, b.BatchDigest)
	writeUvarint(&buf, uint64(len(b.Strategy)))
	for _, e := range b.Strategy {
		switch x := e.(type) {
		case strategy.Comp:
			buf.WriteByte(0)
			writeString(&buf, x.View)
			writeUvarint(&buf, uint64(len(x.Over)))
			for _, o := range x.Over {
				writeString(&buf, o)
			}
		case strategy.Inst:
			buf.WriteByte(1)
			writeString(&buf, x.View)
		default:
			return fmt.Errorf("journal: unknown expression type %T", e)
		}
	}
	writeUvarint(&buf, uint64(len(b.Batch)))
	for _, vb := range b.Batch {
		writeString(&buf, vb.View)
		writeUvarint(&buf, uint64(len(vb.Rows)))
		for _, r := range vb.Rows {
			writeString(&buf, r.Key)
			writeVarint(&buf, r.Count)
		}
	}
	return w.append(typeBegin, buf.Bytes())
}

// Step appends a completed-step record.
func (w *Writer) Step(s StepRecord) error {
	var buf bytes.Buffer
	writeUvarint(&buf, uint64(s.Index))
	writeString(&buf, s.Key)
	writeVarint(&buf, s.Work)
	writeUvarint(&buf, uint64(s.Terms))
	var flags byte
	if s.Skipped {
		flags = 1
	}
	buf.WriteByte(flags)
	writeUint64(&buf, s.Digest)
	return w.append(typeStep, buf.Bytes())
}

// Commit appends a window-commit record.
func (w *Writer) Commit(c CommitRecord) error {
	var buf bytes.Buffer
	writeVarint(&buf, c.TotalWork)
	writeVarint(&buf, c.ElapsedNS)
	writeVarint(&buf, c.UnixNano)
	writeVarint(&buf, c.AcceptUnixNano)
	return w.append(typeCommit, buf.Bytes())
}

// Abort appends a window-abort record.
func (w *Writer) Abort(a AbortRecord) error {
	var buf bytes.Buffer
	writeString(&buf, a.Reason)
	return w.append(typeAbort, buf.Bytes())
}

// WindowLog is one window's records as read back from a journal.
type WindowLog struct {
	Begin  BeginRecord
	Steps  []StepRecord
	Commit *CommitRecord
	Abort  *AbortRecord
}

// Committed reports whether the window closed successfully.
func (wl *WindowLog) Committed() bool { return wl.Commit != nil }

// Closed reports whether the window finished (committed or aborted).
func (wl *WindowLog) Closed() bool { return wl.Commit != nil || wl.Abort != nil }

// Log is the parsed content of a journal.
type Log struct {
	Windows []WindowLog
	// Truncated reports that the journal ended in a torn or corrupt frame
	// (dropped); the expected artifact of a crash mid-append.
	Truncated bool
}

// InFlight returns the journal's in-flight window: the last window, when
// it has neither Commit nor Abort — the signature of a crash. Earlier
// unclosed windows followed by later activity are considered abandoned.
func (lg *Log) InFlight() *WindowLog {
	if len(lg.Windows) == 0 {
		return nil
	}
	last := &lg.Windows[len(lg.Windows)-1]
	if last.Closed() {
		return nil
	}
	return last
}

// CommittedCount returns how many windows committed.
func (lg *Log) CommittedCount() int {
	n := 0
	for i := range lg.Windows {
		if lg.Windows[i].Committed() {
			n++
		}
	}
	return n
}

// ReadLog parses a journal. Torn or corrupt trailing frames are tolerated
// (Truncated is set and reading stops); a CRC-valid record that fails to
// decode, or a record outside any window, is a format error.
func ReadLog(in io.Reader) (Log, error) {
	var lg Log
	br := bufio.NewReader(in)
	for {
		typ, payload, status := readFrame(br)
		if status == frameEOF {
			return lg, nil
		}
		if status == frameTruncated {
			lg.Truncated = true
			return lg, nil
		}
		switch typ {
		case typeBegin:
			b, err := decodeBegin(payload)
			if err != nil {
				return lg, err
			}
			lg.Windows = append(lg.Windows, WindowLog{Begin: b})
		case typeStep, typeCommit, typeAbort:
			if len(lg.Windows) == 0 {
				return lg, fmt.Errorf("journal: record type %d before any window begin", typ)
			}
			wl := &lg.Windows[len(lg.Windows)-1]
			switch typ {
			case typeStep:
				s, err := decodeStep(payload)
				if err != nil {
					return lg, err
				}
				wl.Steps = append(wl.Steps, s)
			case typeCommit:
				c, err := decodeCommit(payload)
				if err != nil {
					return lg, err
				}
				wl.Commit = &c
			case typeAbort:
				a, err := decodeAbort(payload)
				if err != nil {
					return lg, err
				}
				wl.Abort = &a
			}
		}
	}
}

type frameStatus uint8

const (
	frameOK frameStatus = iota
	frameEOF
	frameTruncated
)

// readFrame reads one frame. A clean end of input is frameEOF; any torn,
// short or CRC-failing frame — including an unknown record type — is
// frameTruncated, the normal artifact of a crash mid-append.
func readFrame(br *bufio.Reader) (typ byte, payload []byte, status frameStatus) {
	typ, rerr := br.ReadByte()
	if rerr != nil {
		return 0, nil, frameEOF
	}
	head := []byte{typ}
	n, lenBytes, rerr := readUvarintBytes(br)
	if rerr != nil || n > maxFrame {
		return 0, nil, frameTruncated
	}
	head = append(head, lenBytes...)
	payload = make([]byte, n)
	if _, rerr := io.ReadFull(br, payload); rerr != nil {
		return 0, nil, frameTruncated
	}
	var tail [8]byte
	if _, rerr := io.ReadFull(br, tail[:]); rerr != nil {
		return 0, nil, frameTruncated
	}
	sum := crc64.Checksum(head, crcTable)
	sum = crc64.Update(sum, crcTable, payload)
	if binary.BigEndian.Uint64(tail[:]) != sum {
		return 0, nil, frameTruncated
	}
	if typ < typeBegin || typ > typeAbort {
		return 0, nil, frameTruncated
	}
	return typ, payload, frameOK
}

func decodeBegin(p []byte) (BeginRecord, error) {
	r := bytes.NewReader(p)
	var b BeginRecord
	seq, err := readUvarint(r)
	if err != nil {
		return b, fmt.Errorf("journal: begin seq: %w", err)
	}
	b.Seq = int(seq)
	if b.Planner, err = readString(r); err != nil {
		return b, fmt.Errorf("journal: begin planner: %w", err)
	}
	if b.Mode, err = readString(r); err != nil {
		return b, fmt.Errorf("journal: begin mode: %w", err)
	}
	workers, err := readUvarint(r)
	if err != nil {
		return b, fmt.Errorf("journal: begin workers: %w", err)
	}
	b.Workers = int(workers)
	flags, err := r.ReadByte()
	if err != nil {
		return b, fmt.Errorf("journal: begin flags: %w", err)
	}
	b.SkipEmptyDeltas = flags&1 != 0
	b.UseIndexes = flags&2 != 0
	if b.StateDigest, err = readUint64(r); err != nil {
		return b, fmt.Errorf("journal: begin state digest: %w", err)
	}
	if b.BatchDigest, err = readUint64(r); err != nil {
		return b, fmt.Errorf("journal: begin batch digest: %w", err)
	}
	nExpr, err := readCount(r)
	if err != nil {
		return b, fmt.Errorf("journal: begin strategy length: %w", err)
	}
	for i := 0; i < nExpr; i++ {
		kind, err := r.ReadByte()
		if err != nil {
			return b, fmt.Errorf("journal: begin expr kind: %w", err)
		}
		view, err := readString(r)
		if err != nil {
			return b, fmt.Errorf("journal: begin expr view: %w", err)
		}
		switch kind {
		case 0:
			nOver, err := readCount(r)
			if err != nil {
				return b, fmt.Errorf("journal: begin comp over count: %w", err)
			}
			over := make([]string, 0, min(nOver, 64))
			for j := 0; j < nOver; j++ {
				o, err := readString(r)
				if err != nil {
					return b, fmt.Errorf("journal: begin comp over: %w", err)
				}
				over = append(over, o)
			}
			b.Strategy = append(b.Strategy, strategy.Comp{View: view, Over: over})
		case 1:
			b.Strategy = append(b.Strategy, strategy.Inst{View: view})
		default:
			return b, fmt.Errorf("journal: unknown expression kind %d", kind)
		}
	}
	nViews, err := readCount(r)
	if err != nil {
		return b, fmt.Errorf("journal: begin batch view count: %w", err)
	}
	for i := 0; i < nViews; i++ {
		var vb ViewBatch
		if vb.View, err = readString(r); err != nil {
			return b, fmt.Errorf("journal: begin batch view: %w", err)
		}
		nRows, err := readCount(r)
		if err != nil {
			return b, fmt.Errorf("journal: begin batch row count: %w", err)
		}
		vb.Rows = make([]RowChange, 0, min(nRows, 4096))
		for j := 0; j < nRows; j++ {
			var rc RowChange
			if rc.Key, err = readString(r); err != nil {
				return b, fmt.Errorf("journal: begin batch row: %w", err)
			}
			if rc.Count, err = binary.ReadVarint(r); err != nil {
				return b, fmt.Errorf("journal: begin batch count: %w", err)
			}
			vb.Rows = append(vb.Rows, rc)
		}
		b.Batch = append(b.Batch, vb)
	}
	if r.Len() != 0 {
		return b, fmt.Errorf("journal: begin record has %d trailing bytes", r.Len())
	}
	return b, nil
}

func decodeStep(p []byte) (StepRecord, error) {
	r := bytes.NewReader(p)
	var s StepRecord
	idx, err := readUvarint(r)
	if err != nil {
		return s, fmt.Errorf("journal: step index: %w", err)
	}
	s.Index = int(idx)
	if s.Key, err = readString(r); err != nil {
		return s, fmt.Errorf("journal: step key: %w", err)
	}
	if s.Work, err = binary.ReadVarint(r); err != nil {
		return s, fmt.Errorf("journal: step work: %w", err)
	}
	terms, err := readUvarint(r)
	if err != nil {
		return s, fmt.Errorf("journal: step terms: %w", err)
	}
	s.Terms = int(terms)
	flags, err := r.ReadByte()
	if err != nil {
		return s, fmt.Errorf("journal: step flags: %w", err)
	}
	s.Skipped = flags&1 != 0
	if s.Digest, err = readUint64(r); err != nil {
		return s, fmt.Errorf("journal: step digest: %w", err)
	}
	if r.Len() != 0 {
		return s, fmt.Errorf("journal: step record has %d trailing bytes", r.Len())
	}
	return s, nil
}

// DecodeCommitRecord decodes a commit-record payload. Replication reads the
// stable tip's wall-clock timestamps straight off the byte log with it, so
// the leader's HTTP handlers never touch the (unsynchronized) parsed journal.
func DecodeCommitRecord(p []byte) (CommitRecord, error) { return decodeCommit(p) }

func decodeCommit(p []byte) (CommitRecord, error) {
	r := bytes.NewReader(p)
	var c CommitRecord
	var err error
	if c.TotalWork, err = binary.ReadVarint(r); err != nil {
		return c, fmt.Errorf("journal: commit work: %w", err)
	}
	if c.ElapsedNS, err = binary.ReadVarint(r); err != nil {
		return c, fmt.Errorf("journal: commit elapsed: %w", err)
	}
	if r.Len() == 0 {
		// Pre-timestamp commit record: times stay zero.
		return c, nil
	}
	if c.UnixNano, err = binary.ReadVarint(r); err != nil {
		return c, fmt.Errorf("journal: commit time: %w", err)
	}
	if c.AcceptUnixNano, err = binary.ReadVarint(r); err != nil {
		return c, fmt.Errorf("journal: commit accept time: %w", err)
	}
	if r.Len() != 0 {
		return c, fmt.Errorf("journal: commit record has %d trailing bytes", r.Len())
	}
	return c, nil
}

func decodeAbort(p []byte) (AbortRecord, error) {
	r := bytes.NewReader(p)
	var a AbortRecord
	var err error
	if a.Reason, err = readString(r); err != nil {
		return a, fmt.Errorf("journal: abort reason: %w", err)
	}
	if r.Len() != 0 {
		return a, fmt.Errorf("journal: abort record has %d trailing bytes", r.Len())
	}
	return a, nil
}

// BatchOf collects a warehouse's staged base-view deltas as a journaled
// batch, sorted by view name (and rows by key) for deterministic bytes.
func BatchOf(w *core.Warehouse) ([]ViewBatch, error) {
	var out []ViewBatch
	for _, name := range w.ViewNames() {
		v := w.MustView(name)
		if !v.IsBase() || !v.HasPending() {
			continue
		}
		d, err := w.DeltaOf(name)
		if err != nil {
			return nil, err
		}
		vb := ViewBatch{View: name}
		d.ScanEncoded(func(key string, count int64) bool {
			vb.Rows = append(vb.Rows, RowChange{Key: key, Count: count})
			return true
		})
		sort.Slice(vb.Rows, func(i, j int) bool { return vb.Rows[i].Key < vb.Rows[j].Key })
		out = append(out, vb)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].View < out[j].View })
	return out, nil
}

// RestoreBatch re-stages a journaled batch onto a warehouse whose catalog
// matches the journal's (the inverse of BatchOf).
func RestoreBatch(w *core.Warehouse, batch []ViewBatch) error {
	for _, vb := range batch {
		v := w.View(vb.View)
		if v == nil {
			return fmt.Errorf("journal: batch names unknown view %q", vb.View)
		}
		d := delta.New(v.Schema())
		for _, rc := range vb.Rows {
			d.AddEncoded(rc.Key, rc.Count)
		}
		if err := w.StageDelta(vb.View, d); err != nil {
			return fmt.Errorf("journal: re-staging %s: %w", vb.View, err)
		}
	}
	return nil
}

// BatchDigest fingerprints a journaled batch, order-independently within
// each view and dependent on view assignment.
func BatchDigest(batch []ViewBatch) uint64 {
	var h uint64
	var buf [binary.MaxVarintLen64]byte
	for _, vb := range batch {
		var vh uint64
		for _, rc := range vb.Rows {
			crc := crc64.Update(0, crcTable, []byte(rc.Key))
			n := binary.PutVarint(buf[:], rc.Count)
			crc = crc64.Update(crc, crcTable, buf[:n])
			vh ^= crc
		}
		h ^= nameFold(vb.View, vh)
	}
	return h
}

// StateDigest fingerprints the materialized (installed) state of every
// view: the XOR over views of a name-keyed fold of each view's
// order-independent row digest. Pending (uninstalled) changes do not
// contribute — the digest identifies the state a snapshot of the warehouse
// would capture.
func StateDigest(w *core.Warehouse) uint64 {
	var h uint64
	var buf [binary.MaxVarintLen64]byte
	for _, name := range w.ViewNames() {
		var vh uint64
		w.MustView(name).Scan(func(tup relation.Tuple, count int64) bool {
			crc := crc64.Update(0, crcTable, []byte(tup.Encode()))
			n := binary.PutVarint(buf[:], count)
			crc = crc64.Update(crc, crcTable, buf[:n])
			vh ^= crc
			return true
		})
		h ^= nameFold(name, vh)
	}
	return h
}

// nameFold binds a per-view digest to the view's name so identical row
// bags on different views do not cancel.
func nameFold(name string, vh uint64) uint64 {
	crc := crc64.Update(0, crcTable, []byte(name))
	var vb [8]byte
	binary.BigEndian.PutUint64(vb[:], vh)
	return crc64.Update(crc, crcTable, vb[:])
}

func writeUvarint(buf *bytes.Buffer, v uint64) {
	var b [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(b[:], v)
	buf.Write(b[:n])
}

func writeVarint(buf *bytes.Buffer, v int64) {
	var b [binary.MaxVarintLen64]byte
	n := binary.PutVarint(b[:], v)
	buf.Write(b[:n])
}

func writeString(buf *bytes.Buffer, s string) {
	writeUvarint(buf, uint64(len(s)))
	buf.WriteString(s)
}

func writeUint64(buf *bytes.Buffer, v uint64) {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	buf.Write(b[:])
}

func readUvarint(r *bytes.Reader) (uint64, error) { return binary.ReadUvarint(r) }

func readCount(r *bytes.Reader) (int, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return 0, err
	}
	if n > maxItems {
		return 0, fmt.Errorf("implausible count %d", n)
	}
	return int(n), nil
}

func readString(r *bytes.Reader) (string, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return "", err
	}
	if n > uint64(r.Len()) {
		return "", fmt.Errorf("string length %d exceeds remaining %d bytes", n, r.Len())
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

func readUint64(r *bytes.Reader) (uint64, error) {
	var b [8]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint64(b[:]), nil
}

// readUvarintBytes reads a uvarint while capturing its raw bytes (for CRC
// reconstruction).
func readUvarintBytes(br *bufio.Reader) (uint64, []byte, error) {
	var raw []byte
	var v uint64
	var shift uint
	for {
		b, err := br.ReadByte()
		if err != nil {
			return 0, nil, err
		}
		raw = append(raw, b)
		if shift >= 64 {
			return 0, nil, fmt.Errorf("uvarint overflow")
		}
		v |= uint64(b&0x7f) << shift
		if b < 0x80 {
			return v, raw, nil
		}
		shift += 7
	}
}
