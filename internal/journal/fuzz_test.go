package journal

import (
	"bytes"
	"testing"
)

// FuzzJournal feeds arbitrary bytes to ReadLog: it must never panic, and
// whatever it does parse must re-encode to a journal that parses back to
// the same shape (windows, steps, closure).
func FuzzJournal(f *testing.F) {
	var seed bytes.Buffer
	w := NewWriter(&seed)
	_ = w.Begin(testBegin())
	_ = w.Step(StepRecord{Index: 0, Key: "C:V:A,B", Work: 42, Terms: 3})
	_ = w.Step(StepRecord{Index: 2, Key: "I:V", Work: 7, Digest: 0xabcdef})
	_ = w.Commit(CommitRecord{TotalWork: 49, ElapsedNS: 1})
	_ = w.Begin(BeginRecord{Seq: 2, Mode: "sequential"})
	_ = w.Abort(AbortRecord{Reason: "boom"})
	f.Add(seed.Bytes())
	f.Add(seed.Bytes()[:seed.Len()-3])
	f.Add([]byte{})
	f.Add([]byte{typeBegin, 0xff, 0xff, 0xff, 0xff})

	f.Fuzz(func(t *testing.T, data []byte) {
		lg, err := ReadLog(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		w := NewWriter(&out)
		for _, wl := range lg.Windows {
			if err := w.Begin(wl.Begin); err != nil {
				t.Fatalf("re-encoding begin: %v", err)
			}
			for _, s := range wl.Steps {
				if err := w.Step(s); err != nil {
					t.Fatalf("re-encoding step: %v", err)
				}
			}
			if wl.Commit != nil {
				if err := w.Commit(*wl.Commit); err != nil {
					t.Fatalf("re-encoding commit: %v", err)
				}
			}
			if wl.Abort != nil {
				if err := w.Abort(*wl.Abort); err != nil {
					t.Fatalf("re-encoding abort: %v", err)
				}
			}
		}
		lg2, err := ReadLog(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-encoded journal unreadable: %v", err)
		}
		if lg2.Truncated {
			t.Fatal("re-encoded journal truncated")
		}
		if len(lg2.Windows) != len(lg.Windows) {
			t.Fatalf("round trip lost windows: %d vs %d", len(lg2.Windows), len(lg.Windows))
		}
		for i := range lg.Windows {
			a, b := &lg.Windows[i], &lg2.Windows[i]
			if len(a.Steps) != len(b.Steps) || a.Committed() != b.Committed() ||
				(a.Abort == nil) != (b.Abort == nil) {
				t.Fatalf("window %d shape changed", i)
			}
		}
	})
}
