package delta

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"repro/internal/relation"
)

// AppendBinary serializes the accumulator's state (not its spec — the spec
// is part of the view definition and is re-supplied at decode time) in a
// self-delimiting binary form, used by warehouse snapshots.
func (a *Accum) AppendBinary(dst []byte) []byte {
	dst = binary.AppendVarint(dst, a.sumI)
	dst = binary.AppendUvarint(dst, math.Float64bits(a.sumF))
	dst = binary.AppendUvarint(dst, uint64(len(a.vals)))
	for k, v := range a.vals {
		dst = binary.AppendUvarint(dst, uint64(len(k)))
		dst = append(dst, k...)
		dst = binary.AppendVarint(dst, v)
	}
	return dst
}

// DecodeAccum reads an accumulator state produced by AppendBinary from r,
// attaching the given spec.
func DecodeAccum(r io.ByteReader, spec AggSpec) (*Accum, error) {
	a := NewAccum(spec)
	sumI, err := binary.ReadVarint(r)
	if err != nil {
		return nil, fmt.Errorf("delta: decoding accumulator: %w", err)
	}
	a.sumI = sumI
	bits, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, fmt.Errorf("delta: decoding accumulator: %w", err)
	}
	a.sumF = math.Float64frombits(bits)
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, fmt.Errorf("delta: decoding accumulator: %w", err)
	}
	if n > 0 && a.vals == nil {
		a.vals = make(map[string]int64, n)
	}
	for i := uint64(0); i < n; i++ {
		klen, err := binary.ReadUvarint(r)
		if err != nil {
			return nil, fmt.Errorf("delta: decoding accumulator value: %w", err)
		}
		key := make([]byte, klen)
		for j := range key {
			b, err := r.ReadByte()
			if err != nil {
				return nil, fmt.Errorf("delta: decoding accumulator value: %w", err)
			}
			key[j] = b
		}
		// Validate the key decodes as a value encoding.
		if _, derr := relation.DecodeTuple(string(key)); derr != nil {
			return nil, fmt.Errorf("delta: corrupt accumulator value key: %w", derr)
		}
		count, err := binary.ReadVarint(r)
		if err != nil {
			return nil, fmt.Errorf("delta: decoding accumulator count: %w", err)
		}
		a.vals[string(key)] = count
	}
	return a, nil
}
