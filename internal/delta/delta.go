// Package delta implements change sets ("delta relations") for warehouse
// views. A Delta holds inserted tuples ("plus tuples") and deleted tuples
// ("minus tuples") as signed multiplicities, following the counting
// representation of [GL95]. For aggregate views, the package also provides
// GroupPartials — per-group partial aggregate changes that are accumulated
// across the Comp expressions of a strategy and finalized into plus/minus
// tuples against the pre-install view state.
package delta

import (
	"encoding/binary"
	"fmt"
	"hash/crc64"
	"sort"

	"repro/internal/relation"
)

// Delta is a set of signed tuple changes: positive counts are insertions
// (plus tuples), negative counts are deletions (minus tuples). Entries with
// count zero are removed eagerly, so Size is always the number of tuples
// that actually change.
type Delta struct {
	schema relation.Schema
	rows   map[string]int64
	plus   int64 // total multiplicity of plus tuples
	minus  int64 // total multiplicity of minus tuples (as a positive number)
}

// New creates an empty delta over the given schema.
func New(schema relation.Schema) *Delta {
	return &Delta{schema: schema.Clone(), rows: make(map[string]int64)}
}

// Schema returns the delta's schema.
func (d *Delta) Schema() relation.Schema { return d.schema }

// Add records count signed copies of the tuple (positive = insert, negative
// = delete). Adding zero is a no-op. Opposite-signed additions cancel.
func (d *Delta) Add(tup relation.Tuple, count int64) {
	if count == 0 {
		return
	}
	key := tup.Encode()
	d.addKey(key, count)
}

// AddEncoded is Add for callers that already hold the tuple's Encode key,
// sparing a second encoding on the sink path. key must be a valid
// Tuple.Encode result over the delta's schema; Scan decodes it back.
func (d *Delta) AddEncoded(key string, count int64) {
	if count == 0 {
		return
	}
	d.addKey(key, count)
}

func (d *Delta) addKey(key string, count int64) {
	old := d.rows[key]
	nw := old + count
	if nw == 0 {
		delete(d.rows, key)
	} else {
		d.rows[key] = nw
	}
	// Update plus/minus totals from the transition old -> nw.
	d.plus += pos(nw) - pos(old)
	d.minus += pos(-nw) - pos(-old)
}

func pos(v int64) int64 {
	if v > 0 {
		return v
	}
	return 0
}

// Merge folds other into d. Schemas must match.
func (d *Delta) Merge(other *Delta) {
	if !d.schema.Equal(other.schema) {
		panic(fmt.Sprintf("delta: merge of incompatible schemas [%s] and [%s]", d.schema, other.schema))
	}
	for k, v := range other.rows {
		d.addKey(k, v)
	}
}

// Scan calls fn for each changed tuple with its signed multiplicity.
// Iteration stops early if fn returns false. Order is unspecified.
func (d *Delta) Scan(fn func(tup relation.Tuple, count int64) bool) {
	for key, count := range d.rows {
		tup, err := relation.DecodeTuple(key)
		if err != nil {
			panic(fmt.Sprintf("delta: corrupt encoding: %v", err))
		}
		if !fn(tup, count) {
			return
		}
	}
}

// Size returns the total multiplicity of changed tuples, |plus| + |minus|.
// This is the |δV| of the paper's linear work metric: the number of rows an
// install (or a scan of the delta as a term operand) must touch.
func (d *Delta) Size() int64 { return d.plus + d.minus }

// PlusCount returns the total multiplicity of inserted tuples.
func (d *Delta) PlusCount() int64 { return d.plus }

// MinusCount returns the total multiplicity of deleted tuples.
func (d *Delta) MinusCount() int64 { return d.minus }

// NetGrowth returns |V'| - |V| for the view this delta applies to.
func (d *Delta) NetGrowth() int64 { return d.plus - d.minus }

// IsEmpty reports whether the delta changes nothing.
func (d *Delta) IsEmpty() bool { return len(d.rows) == 0 }

// Clone returns an independent copy.
func (d *Delta) Clone() *Delta {
	out := New(d.schema)
	out.plus, out.minus = d.plus, d.minus
	for k, v := range d.rows {
		out.rows[k] = v
	}
	return out
}

// Negate returns a delta that undoes d (plus and minus swapped).
func (d *Delta) Negate() *Delta {
	out := New(d.schema)
	out.plus, out.minus = d.minus, d.plus
	for k, v := range d.rows {
		out.rows[k] = -v
	}
	return out
}

// ScanEncoded calls fn for each changed tuple's encoded key with its signed
// multiplicity, sparing the decode Scan performs. Iteration stops early if
// fn returns false. Order is unspecified.
func (d *Delta) ScanEncoded(fn func(key string, count int64) bool) {
	for key, count := range d.rows {
		if !fn(key, count) {
			return
		}
	}
}

var digestTable = crc64.MakeTable(crc64.ECMA)

// Digest returns an order-independent fingerprint of the delta's contents:
// the XOR over rows of CRC64(encoded tuple ‖ varint count). Two deltas
// holding the same bag of signed changes digest identically regardless of
// accumulation order, which is what lets the window journal compare a
// replayed step's installed delta against the journaled one across
// execution modes.
func (d *Delta) Digest() uint64 {
	var h uint64
	var buf [binary.MaxVarintLen64]byte
	for key, count := range d.rows {
		crc := crc64.Update(0, digestTable, []byte(key))
		n := binary.PutVarint(buf[:], count)
		crc = crc64.Update(crc, digestTable, buf[:n])
		h ^= crc
	}
	return h
}

// Sorted returns the changes sorted lexicographically by tuple, for
// deterministic output in tests and tools.
func (d *Delta) Sorted() []Change {
	out := make([]Change, 0, len(d.rows))
	d.Scan(func(tup relation.Tuple, count int64) bool {
		out = append(out, Change{Tuple: tup, Count: count})
		return true
	})
	sort.Slice(out, func(i, j int) bool {
		return relation.CompareTuples(out[i].Tuple, out[j].Tuple) < 0
	})
	return out
}

// Change is one signed tuple change.
type Change struct {
	Tuple relation.Tuple
	Count int64 // positive = insert, negative = delete
}
