package delta

import (
	"fmt"

	"repro/internal/relation"
)

// AggKind enumerates the aggregate functions the engine maintains
// incrementally.
type AggKind uint8

const (
	// AggCount is COUNT(*): the number of contributing rows.
	AggCount AggKind = iota
	// AggSum is SUM(expr).
	AggSum
	// AggAvg is AVG(expr), maintained as SUM(expr)/COUNT(*).
	AggAvg
	// AggMin is MIN(expr), maintained with a per-group value multiset so
	// deletions remain computable.
	AggMin
	// AggMax is MAX(expr), maintained like AggMin.
	AggMax
)

// String returns the SQL name of the aggregate.
func (k AggKind) String() string {
	switch k {
	case AggCount:
		return "COUNT"
	case AggSum:
		return "SUM"
	case AggAvg:
		return "AVG"
	case AggMin:
		return "MIN"
	case AggMax:
		return "MAX"
	default:
		return fmt.Sprintf("AggKind(%d)", uint8(k))
	}
}

// AggSpec describes one aggregate output of a summary view.
type AggSpec struct {
	Kind AggKind
	// ValueKind is the type of the aggregate input expression (KindInt or
	// KindFloat for SUM; any comparable kind for MIN/MAX). It determines the
	// accumulator representation and the output type of SUM.
	ValueKind relation.Kind
}

// OutputKind returns the type of the aggregate's output column.
func (s AggSpec) OutputKind() relation.Kind {
	switch s.Kind {
	case AggCount:
		return relation.KindInt
	case AggAvg:
		return relation.KindFloat
	case AggSum:
		if s.ValueKind == relation.KindInt {
			return relation.KindInt
		}
		return relation.KindFloat
	default: // MIN/MAX preserve the input kind
		return s.ValueKind
	}
}

// Accum is the incremental accumulator for one aggregate of one group. It
// supports signed accumulation (counts may be negative while representing a
// pending change) and folding, so the same type backs both the materialized
// group state and in-flight partial deltas.
type Accum struct {
	spec AggSpec
	sumI int64
	sumF float64
	vals map[string]int64 // MIN/MAX only: encoded value -> signed count
}

// NewAccum creates an empty accumulator for the spec.
func NewAccum(spec AggSpec) *Accum {
	a := &Accum{spec: spec}
	if spec.Kind == AggMin || spec.Kind == AggMax {
		a.vals = make(map[string]int64)
	}
	return a
}

// Spec returns the accumulator's aggregate spec.
func (a *Accum) Spec() AggSpec { return a.spec }

// Add accumulates count signed copies of input value v. NULL inputs are
// ignored (SQL aggregate semantics); COUNT(*) ignores v entirely and is
// driven by the group's support count instead.
func (a *Accum) Add(v relation.Value, count int64) {
	if a.spec.Kind == AggCount {
		return // COUNT(*) is derived from support
	}
	if v.IsNull() {
		return
	}
	switch a.spec.Kind {
	case AggSum, AggAvg:
		if a.spec.ValueKind == relation.KindInt {
			a.sumI += v.Int() * count
		} else {
			a.sumF += v.Float() * float64(count)
		}
	case AggMin, AggMax:
		key := relation.Tuple{v}.Encode()
		nw := a.vals[key] + count
		if nw == 0 {
			delete(a.vals, key)
		} else {
			a.vals[key] = nw
		}
	}
}

// Fold merges other into a. Specs must match.
func (a *Accum) Fold(other *Accum) {
	if a.spec != other.spec {
		panic("delta: folding accumulators with different specs")
	}
	a.sumI += other.sumI
	a.sumF += other.sumF
	for k, v := range other.vals {
		nw := a.vals[k] + v
		if nw == 0 {
			delete(a.vals, k)
		} else {
			a.vals[k] = nw
		}
	}
}

// Clone returns an independent copy.
func (a *Accum) Clone() *Accum {
	out := &Accum{spec: a.spec, sumI: a.sumI, sumF: a.sumF}
	if a.vals != nil {
		out.vals = make(map[string]int64, len(a.vals))
		for k, v := range a.vals {
			out.vals[k] = v
		}
	}
	return out
}

// Valid reports whether the accumulator is a legal materialized state: all
// MIN/MAX value counts must be positive.
func (a *Accum) Valid() bool {
	for _, v := range a.vals {
		if v < 0 {
			return false
		}
	}
	return true
}

// Output computes the aggregate's output value for a group with the given
// support (number of contributing rows).
func (a *Accum) Output(support int64) relation.Value {
	switch a.spec.Kind {
	case AggCount:
		return relation.NewInt(support)
	case AggSum:
		if a.spec.ValueKind == relation.KindInt {
			return relation.NewInt(a.sumI)
		}
		return relation.NewFloat(a.sumF)
	case AggAvg:
		if support == 0 {
			return relation.Null
		}
		var sum float64
		if a.spec.ValueKind == relation.KindInt {
			sum = float64(a.sumI)
		} else {
			sum = a.sumF
		}
		return relation.NewFloat(sum / float64(support))
	case AggMin, AggMax:
		var best relation.Value
		found := false
		for key, cnt := range a.vals {
			if cnt <= 0 {
				continue
			}
			tup, err := relation.DecodeTuple(key)
			if err != nil {
				panic(fmt.Sprintf("delta: corrupt min/max value: %v", err))
			}
			v := tup[0]
			if !found {
				best, found = v, true
				continue
			}
			c := relation.Compare(v, best)
			if (a.spec.Kind == AggMin && c < 0) || (a.spec.Kind == AggMax && c > 0) {
				best = v
			}
		}
		if !found {
			return relation.Null
		}
		return best
	default:
		panic(fmt.Sprintf("delta: unknown aggregate %v", a.spec.Kind))
	}
}

// GroupPartials accumulates per-group partial aggregate changes produced by
// the Comp expressions of an aggregate view. Partials from successive Comp
// expressions of the same strategy are merged, then finalized against the
// pre-install view state into a plus/minus tuple Delta.
type GroupPartials struct {
	groupSchema relation.Schema
	specs       []AggSpec
	groups      map[string]*GroupPartial
}

// GroupPartial is the pending change of a single group.
type GroupPartial struct {
	Support int64 // signed change to the group's contributing-row count
	Accums  []*Accum
}

// NewGroupPartials creates an empty partial-change set.
func NewGroupPartials(groupSchema relation.Schema, specs []AggSpec) *GroupPartials {
	return &GroupPartials{
		groupSchema: groupSchema.Clone(),
		specs:       append([]AggSpec(nil), specs...),
		groups:      make(map[string]*GroupPartial),
	}
}

// GroupSchema returns the schema of the grouping columns.
func (p *GroupPartials) GroupSchema() relation.Schema { return p.groupSchema }

// Specs returns the aggregate specs.
func (p *GroupPartials) Specs() []AggSpec { return p.specs }

// Accumulate records count signed copies of a contributing row: its group
// key and the aggregate input values (one per spec; the value for COUNT(*)
// is ignored).
func (p *GroupPartials) Accumulate(group relation.Tuple, inputs []relation.Value, count int64) {
	p.AccumulateEncoded(group.Encode(), inputs, count)
}

// AccumulateEncoded is Accumulate for callers that already hold the group
// tuple's Encode key, sparing a second encoding on the sink path. The
// inputs slice is not retained; callers may reuse it across rows.
func (p *GroupPartials) AccumulateEncoded(key string, inputs []relation.Value, count int64) {
	if len(inputs) != len(p.specs) {
		panic(fmt.Sprintf("delta: %d aggregate inputs for %d specs", len(inputs), len(p.specs)))
	}
	gp := p.groups[key]
	if gp == nil {
		gp = &GroupPartial{Accums: make([]*Accum, len(p.specs))}
		for i, s := range p.specs {
			gp.Accums[i] = NewAccum(s)
		}
		p.groups[key] = gp
	}
	gp.Support += count
	for i, v := range inputs {
		gp.Accums[i].Add(v, count)
	}
}

// Merge folds other into p.
func (p *GroupPartials) Merge(other *GroupPartials) {
	if !p.groupSchema.Equal(other.groupSchema) || len(p.specs) != len(other.specs) {
		panic("delta: merging incompatible group partials")
	}
	for key, ogp := range other.groups {
		gp := p.groups[key]
		if gp == nil {
			cl := &GroupPartial{Support: ogp.Support, Accums: make([]*Accum, len(ogp.Accums))}
			for i, a := range ogp.Accums {
				cl.Accums[i] = a.Clone()
			}
			p.groups[key] = cl
			continue
		}
		gp.Support += ogp.Support
		for i, a := range ogp.Accums {
			gp.Accums[i].Fold(a)
		}
	}
}

// Scan calls fn for each affected group key (encoded) and its partial.
func (p *GroupPartials) Scan(fn func(groupKey string, gp *GroupPartial) bool) {
	for key, gp := range p.groups {
		if !fn(key, gp) {
			return
		}
	}
}

// GroupCount returns the number of affected groups.
func (p *GroupPartials) GroupCount() int { return len(p.groups) }

// IsEmpty reports whether no group is affected.
func (p *GroupPartials) IsEmpty() bool { return len(p.groups) == 0 }
