package delta

import (
	"testing"
	"testing/quick"

	"repro/internal/relation"
)

var schema = relation.Schema{{Name: "k", Kind: relation.KindInt}}

func tup(i int64) relation.Tuple { return relation.Tuple{relation.NewInt(i)} }

func TestDeltaAddAndCounts(t *testing.T) {
	d := New(schema)
	d.Add(tup(1), 3)
	d.Add(tup(2), -2)
	if d.PlusCount() != 3 || d.MinusCount() != 2 || d.Size() != 5 || d.NetGrowth() != 1 {
		t.Errorf("counts = +%d -%d size %d net %d", d.PlusCount(), d.MinusCount(), d.Size(), d.NetGrowth())
	}
	d.Add(tup(1), -3) // cancel
	if d.PlusCount() != 0 || d.Size() != 2 {
		t.Errorf("after cancel: +%d size %d", d.PlusCount(), d.Size())
	}
	if d.IsEmpty() {
		t.Errorf("delta should not be empty")
	}
	d.Add(tup(2), 2)
	if !d.IsEmpty() {
		t.Errorf("delta should be empty after full cancel")
	}
	d.Add(tup(5), 0) // no-op
	if !d.IsEmpty() {
		t.Errorf("Add(0) should be a no-op")
	}
}

func TestDeltaSignTransition(t *testing.T) {
	d := New(schema)
	d.Add(tup(1), 2)
	d.Add(tup(1), -5) // 2 -> -3: plus goes 2->0, minus 0->3
	if d.PlusCount() != 0 || d.MinusCount() != 3 {
		t.Errorf("after sign flip: +%d -%d", d.PlusCount(), d.MinusCount())
	}
}

func TestDeltaMerge(t *testing.T) {
	a := New(schema)
	a.Add(tup(1), 2)
	b := New(schema)
	b.Add(tup(1), -1)
	b.Add(tup(2), 4)
	a.Merge(b)
	ch := a.Sorted()
	if len(ch) != 2 || ch[0].Count != 1 || ch[1].Count != 4 {
		t.Errorf("merged = %v", ch)
	}
}

func TestDeltaMergeSchemaMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("expected panic on schema mismatch")
		}
	}()
	a := New(schema)
	b := New(relation.Schema{{Name: "x", Kind: relation.KindString}})
	a.Merge(b)
}

func TestDeltaNegateClone(t *testing.T) {
	d := New(schema)
	d.Add(tup(1), 2)
	d.Add(tup(2), -3)
	n := d.Negate()
	if n.PlusCount() != 3 || n.MinusCount() != 2 {
		t.Errorf("negate counts = +%d -%d", n.PlusCount(), n.MinusCount())
	}
	c := d.Clone()
	c.Add(tup(1), 10)
	if d.Sorted()[0].Count != 2 {
		t.Errorf("Clone aliases state")
	}
	d.Merge(n) // d + (-d) = 0... wait n is negate of original d, and d unchanged
	if !d.IsEmpty() {
		t.Errorf("d + negate(d) should be empty")
	}
}

func TestDeltaCountsInvariantQuick(t *testing.T) {
	f := func(keys []int8, counts []int8) bool {
		d := New(schema)
		n := len(keys)
		if len(counts) < n {
			n = len(counts)
		}
		for i := 0; i < n; i++ {
			d.Add(tup(int64(keys[i]%4)), int64(counts[i]))
		}
		// Recompute plus/minus from scratch and compare to incremental totals.
		var plus, minus int64
		d.Scan(func(_ relation.Tuple, c int64) bool {
			if c > 0 {
				plus += c
			} else {
				minus -= c
			}
			return true
		})
		return plus == d.PlusCount() && minus == d.MinusCount() && d.Size() == plus+minus
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAccumSumInt(t *testing.T) {
	a := NewAccum(AggSpec{Kind: AggSum, ValueKind: relation.KindInt})
	a.Add(relation.NewInt(5), 2)
	a.Add(relation.NewInt(3), -1)
	if got := a.Output(1); got.Int() != 7 {
		t.Errorf("sum = %v, want 7", got)
	}
	if a.Spec().OutputKind() != relation.KindInt {
		t.Errorf("int sum output kind = %v", a.Spec().OutputKind())
	}
}

func TestAccumSumFloat(t *testing.T) {
	a := NewAccum(AggSpec{Kind: AggSum, ValueKind: relation.KindFloat})
	a.Add(relation.NewFloat(1.5), 2)
	if got := a.Output(2); got.Float() != 3.0 {
		t.Errorf("sum = %v, want 3", got)
	}
}

func TestAccumCountAvg(t *testing.T) {
	c := NewAccum(AggSpec{Kind: AggCount, ValueKind: relation.KindInt})
	c.Add(relation.NewInt(9), 5) // ignored; COUNT derives from support
	if got := c.Output(4); got.Int() != 4 {
		t.Errorf("count = %v, want 4", got)
	}
	av := NewAccum(AggSpec{Kind: AggAvg, ValueKind: relation.KindInt})
	av.Add(relation.NewInt(10), 1)
	av.Add(relation.NewInt(20), 1)
	if got := av.Output(2); got.Float() != 15 {
		t.Errorf("avg = %v, want 15", got)
	}
	if got := av.Output(0); !got.IsNull() {
		t.Errorf("avg of empty group = %v, want NULL", got)
	}
}

func TestAccumMinMaxWithDeletes(t *testing.T) {
	mn := NewAccum(AggSpec{Kind: AggMin, ValueKind: relation.KindInt})
	mx := NewAccum(AggSpec{Kind: AggMax, ValueKind: relation.KindInt})
	for _, v := range []int64{5, 2, 9, 2} {
		mn.Add(relation.NewInt(v), 1)
		mx.Add(relation.NewInt(v), 1)
	}
	if mn.Output(4).Int() != 2 || mx.Output(4).Int() != 9 {
		t.Fatalf("min/max = %v/%v", mn.Output(4), mx.Output(4))
	}
	// Delete both 2s: min becomes 5. Delete 9: max becomes 5.
	mn.Add(relation.NewInt(2), -2)
	mx.Add(relation.NewInt(9), -1)
	if mn.Output(2).Int() != 5 {
		t.Errorf("min after delete = %v, want 5", mn.Output(2))
	}
	if mx.Output(3).Int() != 5 {
		t.Errorf("max after delete = %v, want 5", mx.Output(3))
	}
	if !mn.Valid() {
		t.Errorf("accumulator should be valid")
	}
	mn.Add(relation.NewInt(99), -1)
	if mn.Valid() {
		t.Errorf("negative value count should be invalid")
	}
}

func TestAccumNullIgnored(t *testing.T) {
	a := NewAccum(AggSpec{Kind: AggSum, ValueKind: relation.KindInt})
	a.Add(relation.Null, 3)
	if got := a.Output(3); got.Int() != 0 {
		t.Errorf("sum with nulls = %v, want 0", got)
	}
	m := NewAccum(AggSpec{Kind: AggMin, ValueKind: relation.KindInt})
	m.Add(relation.Null, 1)
	if got := m.Output(1); !got.IsNull() {
		t.Errorf("min of all-null group = %v, want NULL", got)
	}
}

func TestAccumFoldClone(t *testing.T) {
	a := NewAccum(AggSpec{Kind: AggMin, ValueKind: relation.KindInt})
	a.Add(relation.NewInt(3), 1)
	b := a.Clone()
	b.Add(relation.NewInt(1), 1)
	if a.Output(1).Int() != 3 {
		t.Errorf("Clone aliases vals map")
	}
	a.Fold(b) // a now has 3 (x2) and 1
	if a.Output(3).Int() != 1 {
		t.Errorf("fold min = %v, want 1", a.Output(3))
	}
	defer func() {
		if recover() == nil {
			t.Errorf("fold of mismatched specs should panic")
		}
	}()
	a.Fold(NewAccum(AggSpec{Kind: AggMax, ValueKind: relation.KindInt}))
}

func TestGroupPartials(t *testing.T) {
	gs := relation.Schema{{Name: "g", Kind: relation.KindString}}
	specs := []AggSpec{{Kind: AggSum, ValueKind: relation.KindInt}, {Kind: AggCount, ValueKind: relation.KindInt}}
	p := NewGroupPartials(gs, specs)
	g := relation.Tuple{relation.NewString("a")}
	p.Accumulate(g, []relation.Value{relation.NewInt(10), relation.Null}, 2)
	p.Accumulate(g, []relation.Value{relation.NewInt(5), relation.Null}, -1)
	if p.GroupCount() != 1 || p.IsEmpty() {
		t.Fatalf("group count = %d", p.GroupCount())
	}
	q := NewGroupPartials(gs, specs)
	q.Accumulate(relation.Tuple{relation.NewString("b")}, []relation.Value{relation.NewInt(7), relation.Null}, 1)
	q.Accumulate(g, []relation.Value{relation.NewInt(1), relation.Null}, 1)
	p.Merge(q)
	if p.GroupCount() != 2 {
		t.Fatalf("merged group count = %d", p.GroupCount())
	}
	var supportA, sumA int64
	p.Scan(func(key string, gp *GroupPartial) bool {
		tupKey, _ := relation.DecodeTuple(key)
		if tupKey[0].Str() == "a" {
			supportA = gp.Support
			sumA = gp.Accums[0].Output(gp.Support).Int()
		}
		return true
	})
	if supportA != 2 { // 2 - 1 + 1
		t.Errorf("support(a) = %d, want 2", supportA)
	}
	if sumA != 16 { // 20 - 5 + 1
		t.Errorf("sum(a) = %d, want 16", sumA)
	}
}

func TestGroupPartialsAccumulateArityPanics(t *testing.T) {
	gs := relation.Schema{{Name: "g", Kind: relation.KindInt}}
	p := NewGroupPartials(gs, []AggSpec{{Kind: AggCount, ValueKind: relation.KindInt}})
	defer func() {
		if recover() == nil {
			t.Errorf("expected panic on arity mismatch")
		}
	}()
	p.Accumulate(tup(1), nil, 1)
}

func TestAggKindStrings(t *testing.T) {
	want := map[AggKind]string{AggCount: "COUNT", AggSum: "SUM", AggAvg: "AVG", AggMin: "MIN", AggMax: "MAX", AggKind(42): "AggKind(42)"}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%v.String() = %q, want %q", uint8(k), k.String(), s)
		}
	}
}

func TestOutputKinds(t *testing.T) {
	cases := []struct {
		spec AggSpec
		want relation.Kind
	}{
		{AggSpec{AggCount, relation.KindFloat}, relation.KindInt},
		{AggSpec{AggSum, relation.KindInt}, relation.KindInt},
		{AggSpec{AggSum, relation.KindFloat}, relation.KindFloat},
		{AggSpec{AggAvg, relation.KindInt}, relation.KindFloat},
		{AggSpec{AggMin, relation.KindDate}, relation.KindDate},
		{AggSpec{AggMax, relation.KindString}, relation.KindString},
	}
	for _, c := range cases {
		if got := c.spec.OutputKind(); got != c.want {
			t.Errorf("OutputKind(%v) = %v, want %v", c.spec, got, c.want)
		}
	}
}
