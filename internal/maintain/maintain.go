// Package maintain generates the incremental maintenance terms for compute
// expressions, following the term-execution model of Section 3.3 of the
// paper (and the standard change-propagation expressions of [GL95]/[Qua96]).
//
// For a view W and a set of underlying views Y, the expression Comp(W, Y)
// has 2^r − 1 terms, where r is the number of FROM-clause references of W's
// definition that name a view in Y. Each term binds a distinct non-empty
// subset of those references to their delta relations; every other reference
// reads the view's current materialized state. (Enumerating per *reference*
// rather than per view keeps self-joins correct: if Y = {X} and X appears
// twice in the definition, the delta expansion needs 2² − 1 = 3 terms.)
package maintain

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"

	"repro/internal/algebra"
)

// Term is one term of a compute expression: the set of references bound to
// delta relations, identified by their index in the CQ's Refs.
type Term struct {
	// DeltaRefs lists the ref indexes reading deltas, in increasing order.
	DeltaRefs []int
}

// String renders the term, e.g. "{δ0, δ2}".
func (t Term) String() string {
	parts := make([]string, len(t.DeltaRefs))
	for i, r := range t.DeltaRefs {
		parts[i] = fmt.Sprintf("δ%d", r)
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// Terms enumerates the maintenance terms of Comp(W, Y) for the view defined
// by cq, where over lists the view names in Y. The result is deterministic:
// terms are ordered by increasing popcount, then numerically by subset.
// It returns an error if any name in over is not referenced by the
// definition, or if over is empty.
func Terms(cq *algebra.CQ, over []string) ([]Term, error) {
	if len(over) == 0 {
		return nil, fmt.Errorf("maintain: Comp over an empty view set")
	}
	seen := make(map[string]bool)
	var refIdx []int
	for _, name := range over {
		if seen[name] {
			return nil, fmt.Errorf("maintain: duplicate view %q in Comp set", name)
		}
		seen[name] = true
		refs := cq.RefsOfView(name)
		if len(refs) == 0 {
			return nil, fmt.Errorf("maintain: view %q is not referenced by the definition", name)
		}
		refIdx = append(refIdx, refs...)
	}
	sort.Ints(refIdx)
	r := len(refIdx)
	if r > 30 {
		return nil, fmt.Errorf("maintain: %d delta-bound references is beyond the supported term fan-out", r)
	}
	terms := make([]Term, 0, (1<<uint(r))-1)
	for mask := 1; mask < 1<<uint(r); mask++ {
		var drs []int
		for b := 0; b < r; b++ {
			if mask&(1<<uint(b)) != 0 {
				drs = append(drs, refIdx[b])
			}
		}
		terms = append(terms, Term{DeltaRefs: drs})
	}
	sort.SliceStable(terms, func(i, j int) bool {
		pi, pj := len(terms[i].DeltaRefs), len(terms[j].DeltaRefs)
		if pi != pj {
			return pi < pj
		}
		return lessIntSlice(terms[i].DeltaRefs, terms[j].DeltaRefs)
	})
	return terms, nil
}

// TermCount returns the number of terms Comp(W, over) generates, without
// materializing them: 2^r − 1 for r delta-bound references.
func TermCount(cq *algebra.CQ, over []string) (int, error) {
	r := 0
	seen := make(map[string]bool)
	for _, name := range over {
		if seen[name] {
			return 0, fmt.Errorf("maintain: duplicate view %q in Comp set", name)
		}
		seen[name] = true
		refs := cq.RefsOfView(name)
		if len(refs) == 0 {
			return 0, fmt.Errorf("maintain: view %q is not referenced by the definition", name)
		}
		r += len(refs)
	}
	if r == 0 {
		return 0, fmt.Errorf("maintain: Comp over an empty view set")
	}
	if r >= bits.UintSize-1 {
		return 0, fmt.Errorf("maintain: term count overflow for %d references", r)
	}
	return (1 << uint(r)) - 1, nil
}

func lessIntSlice(a, b []int) bool {
	for i := range a {
		if i >= len(b) {
			return false
		}
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}
