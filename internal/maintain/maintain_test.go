package maintain

import (
	"testing"

	"repro/internal/algebra"
	"repro/internal/relation"
)

var schemaA = relation.Schema{{Name: "x", Kind: relation.KindInt}}

func joinCQ(t *testing.T, views ...string) *algebra.CQ {
	t.Helper()
	b := algebra.NewBuilder()
	for i, v := range views {
		b.From(string(rune('a'+i)), v, schemaA)
	}
	b.SelectCol("a.x")
	cq, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return cq
}

func TestTermsSingle(t *testing.T) {
	cq := joinCQ(t, "A", "B")
	terms, err := Terms(cq, []string{"A"})
	if err != nil {
		t.Fatal(err)
	}
	if len(terms) != 1 || len(terms[0].DeltaRefs) != 1 || terms[0].DeltaRefs[0] != 0 {
		t.Errorf("terms = %v", terms)
	}
	if terms[0].String() != "{δ0}" {
		t.Errorf("String = %q", terms[0].String())
	}
}

func TestTermsPair(t *testing.T) {
	cq := joinCQ(t, "A", "B", "C")
	terms, err := Terms(cq, []string{"A", "C"})
	if err != nil {
		t.Fatal(err)
	}
	// 2² − 1 = 3 terms over refs {0, 2}, ordered by popcount then subset.
	if len(terms) != 3 {
		t.Fatalf("terms = %v", terms)
	}
	want := []string{"{δ0}", "{δ2}", "{δ0, δ2}"}
	for i, w := range want {
		if terms[i].String() != w {
			t.Errorf("terms[%d] = %s, want %s", i, terms[i], w)
		}
	}
}

func TestTermsSelfJoin(t *testing.T) {
	// A referenced twice: Comp(V, {A}) expands both refs.
	cq := joinCQ(t, "A", "A", "B")
	terms, err := Terms(cq, []string{"A"})
	if err != nil {
		t.Fatal(err)
	}
	if len(terms) != 3 {
		t.Fatalf("self-join terms = %v", terms)
	}
	n, err := TermCount(cq, []string{"A"})
	if err != nil || n != 3 {
		t.Errorf("TermCount = %d, %v", n, err)
	}
	n, err = TermCount(cq, []string{"A", "B"})
	if err != nil || n != 7 {
		t.Errorf("TermCount(A,B) = %d, %v", n, err)
	}
}

func TestTermsErrors(t *testing.T) {
	cq := joinCQ(t, "A", "B")
	if _, err := Terms(cq, nil); err == nil {
		t.Errorf("empty over accepted")
	}
	if _, err := Terms(cq, []string{"Z"}); err == nil {
		t.Errorf("unknown view accepted")
	}
	if _, err := Terms(cq, []string{"A", "A"}); err == nil {
		t.Errorf("duplicate view accepted")
	}
	if _, err := TermCount(cq, nil); err == nil {
		t.Errorf("TermCount empty over accepted")
	}
	if _, err := TermCount(cq, []string{"Z"}); err == nil {
		t.Errorf("TermCount unknown view accepted")
	}
	if _, err := TermCount(cq, []string{"A", "A"}); err == nil {
		t.Errorf("TermCount duplicate accepted")
	}
}

func TestTermCountsMatchEnumeration(t *testing.T) {
	cq := joinCQ(t, "A", "B", "C", "D")
	for _, over := range [][]string{{"A"}, {"A", "B"}, {"A", "B", "C"}, {"A", "B", "C", "D"}} {
		terms, err := Terms(cq, over)
		if err != nil {
			t.Fatal(err)
		}
		n, err := TermCount(cq, over)
		if err != nil {
			t.Fatal(err)
		}
		if len(terms) != n {
			t.Errorf("over %v: %d terms enumerated, TermCount says %d", over, len(terms), n)
		}
		// All distinct subsets.
		seen := make(map[string]bool)
		for _, tm := range terms {
			if seen[tm.String()] {
				t.Errorf("duplicate term %s", tm)
			}
			seen[tm.String()] = true
		}
	}
}
