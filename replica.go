package warehouse

// Replication support on the facade. A replica set is leader plus followers:
// the leader runs journaled update windows and ships the journal bytes; each
// follower feeds the shipped windows into ApplyWindow, which re-executes them
// against its own state with internal/recovery's digest checks, then flips
// its epoch exactly as a local commit would. internal/replicate builds the
// transport on top of these hooks; they are exported so tests and embedders
// can replicate over any byte channel.

import (
	"errors"
	"io"
	"time"

	"repro/internal/journal"
	"repro/internal/recovery"
)

// WindowLog is one parsed journal window — the unit journal shipping
// delivers to ApplyWindow.
type WindowLog = journal.WindowLog

// ApplyWindow replays one committed, shipped update window against the
// warehouse — the follower's half of replication. The window is re-executed
// step by step on a clone under the journaled engine options; the begin
// record's state digest proves this replica is at the epoch the leader ran
// the window from, and every step's work, skip flag, and installed-delta
// digest must match the leader's records. Only after full verification does
// the epoch flip (atomically, as in RunWindowOpts), so readers pinned to the
// previous epoch are never exposed to a half-applied or divergent window. On
// any error the warehouse is unchanged.
func (w *Warehouse) ApplyWindow(wl *WindowLog) (WindowReport, error) {
	if wl == nil || !wl.Committed() {
		return WindowReport{}, errors.New("warehouse: ApplyWindow requires a committed window")
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	started := time.Now()
	res, err := recovery.Replay(w.core, wl, recovery.Options{})
	if err != nil {
		return WindowReport{}, err
	}
	w.adopt(res.Core)
	window := WindowReport{
		Seq:        len(w.history) + 1,
		Planner:    PlannerName(wl.Begin.Planner),
		Plan:       Plan{Strategy: wl.Begin.Strategy, EstimatedWork: -1},
		Mode:       res.Mode,
		Parallel:   &res.Report,
		Report:     sequentialView(wl.Begin.Strategy, res.Report),
		Started:    started,
		StaleAfter: w.StaleViews(),
		Attempts:   res.Attempts,
		Recomputed: res.Recomputed,
		Replicated: true,
	}
	w.history = append(w.history, window)
	return window, nil
}

// StateDigest fingerprints the current serving epoch's materialized state
// (every view's rows, order-independent). Two replicas serving the same
// epoch must report the same digest; it is the cheap cross-replica
// convergence check, and the same digest each journal window's begin record
// pins as its required pre-state.
func (w *Warehouse) StateDigest() uint64 {
	p := w.PinEpoch()
	defer p.Close()
	return journal.StateDigest(p.pin.Warehouse())
}

// ResumeJournal wraps out as a window journal whose next window is numbered
// committed+1 — for a promoted follower that continues appending to the
// journal it replicated, rather than starting a new one (NewJournal) or
// re-reading a file (OpenJournal).
func ResumeJournal(out io.Writer, committed int) *Journal {
	j := &Journal{w: journal.NewWriter(out), seq: committed + 1}
	for i := 0; i < committed; i++ {
		// Synthetic entries stand in for the replicated windows so
		// Committed() reports them; only the count matters.
		j.log.Windows = append(j.log.Windows, journal.WindowLog{
			Begin:  journal.BeginRecord{Seq: i + 1},
			Commit: &journal.CommitRecord{},
		})
	}
	return j
}
