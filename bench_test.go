// Benchmark harness: one benchmark per table/figure of the paper's
// evaluation (Table 1, Figures 12–15, the Section 9 parallel analysis),
// plus micro-benchmarks of the planners and the engine primitives.
//
// Each figure benchmark executes the strategies of that experiment on
// clones of a shared pre-staged TPC-D warehouse and reports measured work
// as a custom metric, so `go test -bench=.` regenerates every comparison
// the paper reports.
package warehouse

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/exec"
	"repro/internal/planner"
	"repro/internal/strategy"
	"repro/internal/tpcd"
)

// benchSF keeps the benchmarks quick; raise for larger-scale runs.
const benchSF = 0.001

var benchState struct {
	once  sync.Once
	err   error
	tw    *tpcd.Warehouse // all three summary views, 10% decrease staged
	q3    *tpcd.Warehouse // Q3-only warehouse, C/O/L decrease staged
	stats cost.Stats
	q3St  cost.Stats
}

func benchSetup(b *testing.B) {
	benchState.once.Do(func() {
		tw, err := tpcd.NewWarehouse(tpcd.Config{SF: benchSF, Seed: 7})
		if err != nil {
			benchState.err = err
			return
		}
		if _, err := tw.StageChanges(tpcd.UniformDecrease(0.10)); err != nil {
			benchState.err = err
			return
		}
		stats, err := exec.PlanningStats(tw.W)
		if err != nil {
			benchState.err = err
			return
		}
		q3, err := tpcd.NewWarehouse(tpcd.Config{SF: benchSF, Seed: 7, Queries: []string{tpcd.Q3}})
		if err != nil {
			benchState.err = err
			return
		}
		if _, err := q3.StageChanges(tpcd.COLDecrease(0.10)); err != nil {
			benchState.err = err
			return
		}
		q3St, err := exec.PlanningStats(q3.W)
		if err != nil {
			benchState.err = err
			return
		}
		benchState.tw, benchState.q3 = tw, q3
		benchState.stats, benchState.q3St = stats, q3St
	})
	if benchState.err != nil {
		b.Fatal(benchState.err)
	}
}

// runStrategy executes s on a clone and reports measured work.
func runStrategy(b *testing.B, tw *tpcd.Warehouse, s strategy.Strategy) {
	b.Helper()
	var work int64
	for i := 0; i < b.N; i++ {
		run := tw.W.Clone()
		rep, err := exec.Execute(run, s, exec.Options{})
		if err != nil {
			b.Fatal(err)
		}
		work = rep.TotalWork()
	}
	b.ReportMetric(float64(work), "work")
}

// BenchmarkTable1 regenerates Table 1: counting the strategy space.
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for n := 1; n <= 6; n++ {
			if _, err := strategy.CountViewStrategies(n); err != nil {
				b.Fatal(err)
			}
		}
	}
	n6, err := strategy.CountViewStrategies(6)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(n6), "strategies_n6")
}

// BenchmarkFig12 measures the Experiment 1 strategies for Q3: the
// MinWorkSingle 1-way strategy vs. the dual-stage strategy (the two ends of
// the Figure 12 bar chart).
func BenchmarkFig12(b *testing.B) {
	benchSetup(b)
	children := benchState.q3.W.Children(tpcd.Q3)
	mws, err := planner.MinWorkSingle(tpcd.Q3, children, benchState.q3St)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("MinWorkSingle", func(b *testing.B) { runStrategy(b, benchState.q3, mws) })
	b.Run("DualStage", func(b *testing.B) {
		runStrategy(b, benchState.q3, strategy.DualStageView(tpcd.Q3, children))
	})
	b.Run("AllThirteen", func(b *testing.B) {
		parts := strategy.OrderedPartitions(children)
		for i := 0; i < b.N; i++ {
			for _, p := range parts {
				run := benchState.q3.W.Clone()
				if _, err := exec.Execute(run, strategy.PartitionedView(tpcd.Q3, p), exec.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// BenchmarkFig13 measures the Experiment 2 strategies for the six-view Q5.
func BenchmarkFig13(b *testing.B) {
	benchSetup(b)
	q5, err := tpcd.NewWarehouse(tpcd.Config{SF: benchSF, Seed: 7, Queries: []string{tpcd.Q5}})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := q5.StageChanges(tpcd.UniformDecrease(0.10)); err != nil {
		b.Fatal(err)
	}
	stats, err := exec.PlanningStats(q5.W)
	if err != nil {
		b.Fatal(err)
	}
	children := q5.W.Children(tpcd.Q5)
	mws, err := planner.MinWorkSingle(tpcd.Q5, children, stats)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("MinWorkSingle", func(b *testing.B) { runStrategy(b, q5, mws) })
	b.Run("DualStage", func(b *testing.B) {
		runStrategy(b, q5, strategy.DualStageView(tpcd.Q5, children))
	})
}

// BenchmarkFig14 measures the Experiment 3 sweep point p=10% for the three
// compared strategies (the full sweep is in cmd/experiments).
func BenchmarkFig14(b *testing.B) {
	benchSetup(b)
	children := benchState.q3.W.Children(tpcd.Q3)
	mws, err := planner.MinWorkSingle(tpcd.Q3, children, benchState.q3St)
	if err != nil {
		b.Fatal(err)
	}
	best2 := strategy.PartitionedView(tpcd.Q3, [][]string{{tpcd.LineItem}, {tpcd.Order, tpcd.Customer}})
	b.Run("MinWorkSingle", func(b *testing.B) { runStrategy(b, benchState.q3, mws) })
	b.Run("Best2Way", func(b *testing.B) { runStrategy(b, benchState.q3, best2) })
	b.Run("DualStage", func(b *testing.B) {
		runStrategy(b, benchState.q3, strategy.DualStageView(tpcd.Q3, children))
	})
}

// BenchmarkFig15 measures the Experiment 4 VDAG strategies.
func BenchmarkFig15(b *testing.B) {
	benchSetup(b)
	mw, err := planner.MinWork(benchState.tw.Graph, benchState.stats)
	if err != nil {
		b.Fatal(err)
	}
	rev := append([]string(nil), mw.UsedOrdering...)
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	revStrategy, err := planner.ConstructEG(benchState.tw.Graph, rev).TopoSort()
	if err != nil {
		b.Fatal(err)
	}
	b.Run("MinWork", func(b *testing.B) { runStrategy(b, benchState.tw, mw.Strategy) })
	b.Run("Reverse", func(b *testing.B) { runStrategy(b, benchState.tw, revStrategy) })
	b.Run("DualStage", func(b *testing.B) {
		runStrategy(b, benchState.tw, strategy.DualStageVDAG(benchState.tw.Graph))
	})
}

// runParallelBench executes s on clones under the given mode and reports the
// mode's window bound (span work for staged runs, critical-path work for DAG
// runs) as a custom metric.
func runParallelBench(b *testing.B, s strategy.Strategy, mode exec.Mode, workers int) {
	b.Helper()
	var bound int64
	for i := 0; i < b.N; i++ {
		w := benchState.tw.W.Clone()
		rep, err := benchParallelRun(w, s, mode, workers)
		if err != nil {
			b.Fatal(err)
		}
		if mode == exec.ModeDAG {
			bound = rep.CriticalPathWork
		} else {
			bound = rep.SpanWork
		}
	}
	b.ReportMetric(float64(bound), "window_bound")
}

// BenchmarkParallelStaged measures the Section 9 barrier-staged execution of
// the MinWork and dual-stage strategies (one goroutine per stage expression).
func BenchmarkParallelStaged(b *testing.B) {
	benchSetup(b)
	mw, err := planner.MinWork(benchState.tw.Graph, benchState.stats)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("MinWork", func(b *testing.B) { runParallelBench(b, mw.Strategy, exec.ModeStaged, 0) })
	b.Run("DualStage", func(b *testing.B) {
		runParallelBench(b, strategy.DualStageVDAG(benchState.tw.Graph), exec.ModeStaged, 0)
	})
}

// BenchmarkParallelDAG measures barrier-free precedence-DAG scheduling of
// the same strategies with a bounded worker pool, for direct comparison with
// BenchmarkParallelStaged: same strategies, same warehouse, no barriers.
func BenchmarkParallelDAG(b *testing.B) {
	benchSetup(b)
	mw, err := planner.MinWork(benchState.tw.Graph, benchState.stats)
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("MinWork/workers=%d", workers), func(b *testing.B) {
			runParallelBench(b, mw.Strategy, exec.ModeDAG, workers)
		})
		b.Run(fmt.Sprintf("DualStage/workers=%d", workers), func(b *testing.B) {
			runParallelBench(b, strategy.DualStageVDAG(benchState.tw.Graph), exec.ModeDAG, workers)
		})
	}
}

// BenchmarkPlanners isolates planning cost (no execution).
func BenchmarkPlanners(b *testing.B) {
	benchSetup(b)
	b.Run("MinWorkSingle", func(b *testing.B) {
		children := benchState.q3.W.Children(tpcd.Q3)
		for i := 0; i < b.N; i++ {
			if _, err := planner.MinWorkSingle(tpcd.Q3, children, benchState.q3St); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("MinWork", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := planner.MinWork(benchState.tw.Graph, benchState.stats); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Prune", func(b *testing.B) {
		refs := exec.RefCounts(benchState.tw.W)
		for i := 0; i < b.N; i++ {
			if _, err := planner.Prune(benchState.tw.Graph, cost.DefaultModel, benchState.stats, refs); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkEnginePrimitives isolates the engine's Comp and Inst costs.
func BenchmarkEnginePrimitives(b *testing.B) {
	benchSetup(b)
	b.Run("ComputeOneWay", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			run := benchState.tw.W.Clone()
			if _, err := run.Compute(tpcd.Q3, []string{tpcd.LineItem}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("ComputeDual", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			run := benchState.tw.W.Clone()
			if _, err := run.Compute(tpcd.Q3, []string{tpcd.Customer, tpcd.Order, tpcd.LineItem}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("InstallBase", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			run := benchState.tw.W.Clone()
			if _, err := run.Install(tpcd.LineItem); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Recompute", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := benchState.tw.W.Recompute(tpcd.Q3); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("CloneWarehouse", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = benchState.tw.W.Clone()
		}
	})
}

// benchTermState holds the SF 0.01 mixed-workload warehouse the term-
// parallel Compute benchmarks share (built once; ~0.5s).
var benchTermState struct {
	once sync.Once
	err  error
	tw   *tpcd.Warehouse
}

func benchTermSetup(b *testing.B) *tpcd.Warehouse {
	benchTermState.once.Do(func() {
		tw, err := tpcd.NewWarehouse(tpcd.Config{SF: 0.01, Seed: 7})
		if err != nil {
			benchTermState.err = err
			return
		}
		if _, err := tw.StageChanges(tpcd.Mixed(0.10, 0.05)); err != nil {
			benchTermState.err = err
			return
		}
		benchTermState.tw = tw
	})
	if benchTermState.err != nil {
		b.Fatal(benchTermState.err)
	}
	return benchTermState.tw
}

// BenchmarkComputeTermParallel measures the intra-Compute parallel engine on
// the 63-term Comp(Q5, all six base views) — the multi-term expression the
// dual-stage strategy pays for — at SF 0.01 under the mixed change workload.
// "seq" is the classic single-threaded engine; "w=N" rows run ParallelTerms
// with that worker budget (w=1 is strictly serial through the same code
// path, so w=4 vs w=1 isolates the parallel speedup from the build-cache
// win). Compute only accumulates pending changes, so iterations repeat
// identical work on the same warehouse.
func BenchmarkComputeTermParallel(b *testing.B) {
	tw := benchTermSetup(b)
	children := tw.W.Children(tpcd.Q5)
	run := func(b *testing.B, w *tpcd.Warehouse) {
		b.Helper()
		b.ReportAllocs()
		var saved int64
		for i := 0; i < b.N; i++ {
			rep, err := w.W.Compute(tpcd.Q5, children)
			if err != nil {
				b.Fatal(err)
			}
			saved = rep.BuildTuplesSaved
		}
		b.ReportMetric(float64(saved), "tuples_saved")
	}
	b.Run("seq", func(b *testing.B) {
		w := tw.W.Clone()
		b.ResetTimer()
		run(b, &tpcd.Warehouse{W: w})
	})
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("w=%d", workers), func(b *testing.B) {
			w := tw.W.Clone()
			opts := w.Options()
			opts.ParallelTerms, opts.Workers = true, workers
			w.SetOptions(opts)
			b.ResetTimer()
			run(b, &tpcd.Warehouse{W: w})
		})
	}
}

// BenchmarkSharedComp measures window-wide cross-view shared computation on
// the dual-stage VDAG strategy at SF 0.01 under the mixed change workload:
// Q3, Q5 and Q10 all Comp over the same base views in one stage, so with
// sharing on the first Comp to need an operand's build-side hash table
// materializes it for every sibling. "off" rows run the plain window;
// tuples_saved reports the operand tuples whose physical re-scan the shared
// tables elided (0 when sharing is off — the work metric never moves either
// way).
func BenchmarkSharedComp(b *testing.B) {
	tw := benchTermSetup(b)
	dual := strategy.DualStageVDAG(tw.Graph)
	run := func(b *testing.B, share bool, mode exec.Mode) {
		b.Helper()
		var saved int64
		for i := 0; i < b.N; i++ {
			w := tw.W.Clone()
			if share {
				opts := w.Options()
				opts.ShareComputation = true
				w.SetOptions(opts)
			}
			rep, err := benchParallelRun(w, dual, mode, 4)
			if err != nil {
				b.Fatal(err)
			}
			saved = 0
			for _, stage := range rep.Steps {
				for _, step := range stage {
					saved += step.SharedTuplesSaved
				}
			}
		}
		b.ReportMetric(float64(saved), "tuples_saved")
	}
	for _, mode := range []exec.Mode{exec.ModeStaged, exec.ModeDAG} {
		b.Run(fmt.Sprintf("off/%s", mode), func(b *testing.B) { run(b, false, mode) })
		b.Run(fmt.Sprintf("on/%s", mode), func(b *testing.B) { run(b, true, mode) })
	}
}

// BenchmarkSharedPlan compares hint-based sharing on the fixed dual-stage
// VDAG strategy (after-the-fact hints over whatever that plan exposes — the
// prior behavior) against the sharing-aware search: PruneShared costs
// candidate orderings by sharing-adjusted work and elects shared operands
// and join intermediates under the default byte budget, seeding the registry
// with the winning plan's hints. physical_scans is the compute-side operand
// tuples actually scanned after registry and build-cache savings; the joint
// rows drive it below the hint rows while states stay bit-identical.
func BenchmarkSharedPlan(b *testing.B) {
	tw := benchTermSetup(b)
	stats, err := exec.PlanningStats(tw.W)
	if err != nil {
		b.Fatal(err)
	}
	pres, err := planner.PruneShared(tw.Graph, cost.DefaultModel, stats, exec.RefCounts(tw.W),
		planner.SharedSearchOptions{
			Refs: exec.RefsOf(tw.W),
			Sharing: planner.SharingOptions{
				BudgetBytes: core.DefaultSharedBudgetBytes,
				Width:       exec.WidthOf(tw.W),
				Pairs:       exec.PairsOf(tw.W),
				Tuner:       tw.W.ShareTuner(),
			},
		})
	if err != nil {
		b.Fatal(err)
	}
	hints := exec.HintsFromPlan(pres.Plan)
	dual := strategy.DualStageVDAG(tw.Graph)
	run := func(b *testing.B, joint bool) {
		b.Helper()
		var saved, physical int64
		for i := 0; i < b.N; i++ {
			w := tw.W.Clone()
			opts := w.Options()
			opts.ShareComputation = true
			w.SetOptions(opts)
			s := dual
			if joint {
				w.SetPlannedSharing(hints)
				s = pres.Strategy
			}
			rep, err := exec.Execute(w, s, exec.Options{})
			if err != nil {
				b.Fatal(err)
			}
			saved, physical = 0, 0
			for _, step := range rep.Steps {
				if _, ok := step.Expr.(strategy.Comp); ok {
					physical += step.Work
				}
				saved += step.SharedTuplesSaved + step.CacheTuplesSaved
			}
			physical -= saved
		}
		b.ReportMetric(float64(saved), "tuples_saved")
		b.ReportMetric(float64(physical), "physical_scans")
	}
	b.Run("hint", func(b *testing.B) { run(b, false) })
	b.Run("joint", func(b *testing.B) { run(b, true) })
}

// BenchmarkComputeProbeAllocs isolates the probe-path allocation diet on the
// single-term Comp(Q3, {LINEITEM}): the hot loop reuses key-encoding buffers
// and a scratch output row, so allocs/op stays proportional to output rows,
// not probe rows.
func BenchmarkComputeProbeAllocs(b *testing.B) {
	tw := benchTermSetup(b)
	w := tw.W.Clone()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.Compute(tpcd.Q3, []string{tpcd.LineItem}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIndexedExecution compares the default scan-per-term execution
// model (the linear work metric's assumption) against maintained hash
// indexes on base tables — the storage-representation lever of the paper's
// related work ([JNSS97]/[KR98]). The work metric changes meaning under
// indexes (probes, not scans), so both time and work are reported.
func BenchmarkIndexedExecution(b *testing.B) {
	for _, useIdx := range []bool{false, true} {
		name := "scan"
		if useIdx {
			name = "indexed"
		}
		b.Run(name, func(b *testing.B) {
			tw, err := tpcd.NewWarehouse(tpcd.Config{SF: benchSF, Seed: 7, UseIndexes: useIdx})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := tw.StageChanges(tpcd.UniformDecrease(0.10)); err != nil {
				b.Fatal(err)
			}
			stats, err := exec.PlanningStats(tw.W)
			if err != nil {
				b.Fatal(err)
			}
			mw, err := planner.MinWork(tw.Graph, stats)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			var work int64
			for i := 0; i < b.N; i++ {
				run := tw.W.Clone()
				rep, err := exec.Execute(run, mw.Strategy, exec.Options{})
				if err != nil {
					b.Fatal(err)
				}
				work = rep.TotalWork()
			}
			b.ReportMetric(float64(work), "work")
		})
	}
}

// BenchmarkAblationSkipEmptyDeltas quantifies the footnote-5 optimization:
// with only C, O, L changed, the Q5/Q10 comps over S, N, R are skippable.
func BenchmarkAblationSkipEmptyDeltas(b *testing.B) {
	for _, skip := range []bool{false, true} {
		name := "off"
		if skip {
			name = "on"
		}
		b.Run(name, func(b *testing.B) {
			tw, err := tpcd.NewWarehouse(tpcd.Config{SF: benchSF, Seed: 7, SkipEmptyDeltas: skip})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := tw.StageChanges(tpcd.COLDecrease(0.10)); err != nil {
				b.Fatal(err)
			}
			stats, err := exec.PlanningStats(tw.W)
			if err != nil {
				b.Fatal(err)
			}
			mw, err := planner.MinWork(tw.Graph, stats)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			var work int64
			for i := 0; i < b.N; i++ {
				run := tw.W.Clone()
				rep, err := exec.Execute(run, mw.Strategy, exec.Options{})
				if err != nil {
					b.Fatal(err)
				}
				work = rep.TotalWork()
			}
			b.ReportMetric(float64(work), "work")
		})
	}
}
