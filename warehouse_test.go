package warehouse

import (
	"strings"
	"testing"
)

// newRetail builds a small two-level warehouse entirely through the public
// API: SALES and STORES base views, a join view, and a summary view on top.
func newRetail(t *testing.T) *Warehouse {
	t.Helper()
	w := New()
	w.MustDefineBase("STORES", Schema{
		{Name: "store_id", Kind: KindInt},
		{Name: "region", Kind: KindString},
	})
	w.MustDefineBase("SALES", Schema{
		{Name: "sale_id", Kind: KindInt},
		{Name: "store_id", Kind: KindInt},
		{Name: "amount", Kind: KindFloat},
	})
	w.MustDefineViewSQL("SALES_BY_STORE", `
		SELECT s.sale_id, s.amount, st.region
		FROM SALES s, STORES st
		WHERE s.store_id = st.store_id`)
	w.MustDefineViewSQL("REGION_TOTALS", `
		SELECT region, SUM(amount) AS total, COUNT(*) AS n
		FROM SALES_BY_STORE GROUP BY region`)

	stores := []Tuple{
		{Int(1), String("west")},
		{Int(2), String("east")},
	}
	sales := []Tuple{
		{Int(100), Int(1), Float(10)},
		{Int(101), Int(1), Float(20)},
		{Int(102), Int(2), Float(5)},
	}
	if err := w.Load("STORES", stores); err != nil {
		t.Fatal(err)
	}
	if err := w.Load("SALES", sales); err != nil {
		t.Fatal(err)
	}
	if err := w.Refresh(); err != nil {
		t.Fatal(err)
	}
	return w
}

func stageSale(t *testing.T, w *Warehouse) {
	t.Helper()
	d, err := w.NewDelta("SALES")
	if err != nil {
		t.Fatal(err)
	}
	d.Add(Tuple{Int(103), Int(2), Float(50)}, 1)  // new sale in east
	d.Add(Tuple{Int(100), Int(1), Float(10)}, -1) // returned sale in west
	if err := w.StageDelta("SALES", d); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPIEndToEnd(t *testing.T) {
	w := newRetail(t)
	rows, err := w.Rows("REGION_TOTALS")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("REGION_TOTALS = %v", rows)
	}
	if rows[0].Tuple.String() != "(east, 5, 1)" || rows[1].Tuple.String() != "(west, 30, 2)" {
		t.Errorf("rows = %v", rows)
	}
	stageSale(t, w)
	if got := w.Pending(); len(got) != 1 || got[0] != "SALES" {
		t.Errorf("Pending = %v", got)
	}
	plan, err := w.PlanMinWork()
	if err != nil {
		t.Fatal(err)
	}
	if plan.Modified {
		t.Errorf("tree warehouse should not need ModifyOrdering")
	}
	rep, err := w.Execute(plan.Strategy)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalWork() == 0 {
		t.Errorf("no work measured")
	}
	if err := w.Verify(); err != nil {
		t.Fatal(err)
	}
	rows, err = w.Rows("REGION_TOTALS")
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].Tuple.String() != "(east, 55, 2)" || rows[1].Tuple.String() != "(west, 20, 1)" {
		t.Errorf("after update: %v", rows)
	}
}

func TestPlannersAgreeOnFinalState(t *testing.T) {
	base := newRetail(t)
	stageSale(t, base)
	plans := map[string]func(*Warehouse) (Plan, error){
		"minwork":   (*Warehouse).PlanMinWork,
		"prune":     (*Warehouse).PlanPrune,
		"dualstage": (*Warehouse).PlanDualStage,
	}
	var reference []CountedRow
	for name, planFn := range plans {
		w := base.Clone()
		p, err := planFn(w)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := w.Validate(p.Strategy); err != nil {
			t.Fatalf("%s: invalid plan: %v", name, err)
		}
		if _, err := w.Execute(p.Strategy); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := w.Verify(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		rows, err := w.Rows("REGION_TOTALS")
		if err != nil {
			t.Fatal(err)
		}
		if reference == nil {
			reference = rows
			continue
		}
		if len(rows) != len(reference) {
			t.Fatalf("%s: %v vs %v", name, rows, reference)
		}
		for i := range rows {
			if rows[i].Tuple.String() != reference[i].Tuple.String() {
				t.Fatalf("%s: row %d: %v vs %v", name, i, rows[i], reference[i])
			}
		}
	}
}

func TestPlanMinWorkSingle(t *testing.T) {
	w := newRetail(t)
	stageSale(t, w)
	p, err := w.PlanMinWorkSingle("SALES_BY_STORE")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Ordering) != 2 {
		t.Errorf("ordering = %v", p.Ordering)
	}
	if _, err := w.PlanMinWorkSingle("SALES"); err == nil {
		t.Errorf("base view accepted")
	}
	// Executing just the single-view strategy leaves REGION_TOTALS stale;
	// validation must reject it since REGION_TOTALS' child changes.
	if err := w.Validate(p.Strategy); err == nil {
		t.Errorf("partial strategy accepted despite changed parent view")
	}
}

func TestEstimateWorkOrdersStrategies(t *testing.T) {
	w := newRetail(t)
	stageSale(t, w)
	mw, err := w.PlanMinWork()
	if err != nil {
		t.Fatal(err)
	}
	ds, err := w.PlanDualStage()
	if err != nil {
		t.Fatal(err)
	}
	wMW, err := w.EstimateWork(mw.Strategy)
	if err != nil {
		t.Fatal(err)
	}
	wDS, err := w.EstimateWork(ds.Strategy)
	if err != nil {
		t.Fatal(err)
	}
	if wMW > wDS {
		t.Errorf("MinWork estimate %v should not exceed dual-stage %v", wMW, wDS)
	}
}

func TestParallelFacade(t *testing.T) {
	w := newRetail(t)
	stageSale(t, w)
	ds, err := w.PlanDualStage()
	if err != nil {
		t.Fatal(err)
	}
	plan := w.Parallelize(ds.Strategy)
	if plan.Stages() < 2 {
		t.Fatalf("plan = %s", plan)
	}
	rep, err := w.ExecuteParallel(plan)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalWork == 0 || rep.SpanWork == 0 {
		t.Errorf("parallel report empty: %+v", rep)
	}
	if err := w.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeErrorsAndAccessors(t *testing.T) {
	w := New(Options{SkipEmptyDeltas: true, Model: CostModel{CompCoeff: 2, InstCoeff: 1}})
	if err := w.DefineViewSQL("V", "SELECT x FROM NOPE"); err == nil {
		t.Errorf("view over unknown base accepted")
	}
	if _, err := w.NewDelta("NOPE"); err == nil {
		t.Errorf("NewDelta unknown view accepted")
	}
	if _, err := w.Rows("NOPE"); err == nil {
		t.Errorf("Rows unknown view accepted")
	}
	if _, err := w.Size("NOPE"); err == nil {
		t.Errorf("Size unknown view accepted")
	}
	if _, err := w.ViewSchema("NOPE"); err == nil {
		t.Errorf("ViewSchema unknown view accepted")
	}
	w.MustDefineBase("B", Schema{{Name: "x", Kind: KindInt}})
	name, err := w.DefineViewSQLStatement("CREATE VIEW V2 AS SELECT x FROM B")
	if err != nil || name != "V2" {
		t.Fatalf("CREATE VIEW: %q, %v", name, err)
	}
	if n, err := w.Size("B"); err != nil || n != 0 {
		t.Errorf("Size(B) = %d, %v", n, err)
	}
	views := w.Views()
	if len(views) != 2 || views[1] != "V2" {
		t.Errorf("Views = %v", views)
	}
	g, err := w.Graph()
	if err != nil || !g.Has("V2") {
		t.Fatalf("Graph: %v", err)
	}
	if w.Internal() == nil {
		t.Errorf("Internal nil")
	}
	defer func() {
		if recover() == nil {
			t.Errorf("MustDefineViewSQL should panic on error")
		}
	}()
	w.MustDefineViewSQL("bad", "SELECT nope FROM B")
}

func TestMustDefineBasePanics(t *testing.T) {
	w := New()
	w.MustDefineBase("B", Schema{{Name: "x", Kind: KindInt}})
	defer func() {
		if recover() == nil {
			t.Errorf("expected panic on duplicate base")
		}
	}()
	w.MustDefineBase("B", Schema{{Name: "x", Kind: KindInt}})
}

func TestValueHelpers(t *testing.T) {
	if Int(5).Int() != 5 || Float(2.5).Float() != 2.5 || String("x").Str() != "x" {
		t.Errorf("constructors wrong")
	}
	if Date("2026-07-05").String() != "2026-07-05" {
		t.Errorf("Date wrong")
	}
	if !Null.IsNull() {
		t.Errorf("Null wrong")
	}
	s := Strategy{Comp{View: "V", Over: []string{"A"}}, Inst{View: "A"}, Inst{View: "V"}}
	if !strings.Contains(s.String(), "Comp(V, {A})") {
		t.Errorf("strategy alias broken: %s", s)
	}
}
