package warehouse

import (
	"bytes"
	"strings"
	"testing"
)

func TestSnapshotThroughFacade(t *testing.T) {
	w := newRetail(t)
	var buf bytes.Buffer
	if err := w.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	// Restore into a freshly declared catalog (no data, no Refresh).
	fresh := New()
	fresh.MustDefineBase("STORES", Schema{
		{Name: "store_id", Kind: KindInt},
		{Name: "region", Kind: KindString},
	})
	fresh.MustDefineBase("SALES", Schema{
		{Name: "sale_id", Kind: KindInt},
		{Name: "store_id", Kind: KindInt},
		{Name: "amount", Kind: KindFloat},
	})
	fresh.MustDefineViewSQL("SALES_BY_STORE", `
		SELECT s.sale_id, s.amount, st.region
		FROM SALES s, STORES st
		WHERE s.store_id = st.store_id`)
	fresh.MustDefineViewSQL("REGION_TOTALS", `
		SELECT region, SUM(amount) AS total, COUNT(*) AS n
		FROM SALES_BY_STORE GROUP BY region`)
	if err := fresh.LoadSnapshot(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if err := fresh.Verify(); err != nil {
		t.Fatal(err)
	}
	a, err := w.Rows("REGION_TOTALS")
	if err != nil {
		t.Fatal(err)
	}
	b, err := fresh.Rows("REGION_TOTALS")
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("restored rows differ: %v vs %v", a, b)
	}
	for i := range a {
		if a[i].Tuple.String() != b[i].Tuple.String() {
			t.Errorf("row %d: %v vs %v", i, a[i], b[i])
		}
	}
	// The restored warehouse runs a full update window.
	stageSale(t, fresh)
	plan, err := fresh.PlanMinWork()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fresh.Execute(plan.Strategy); err != nil {
		t.Fatal(err)
	}
	if err := fresh.Verify(); err != nil {
		t.Fatal(err)
	}
	// Snapshot refuses pending state.
	w2 := newRetail(t)
	stageSale(t, w2)
	if err := w2.SaveSnapshot(&bytes.Buffer{}); err == nil {
		t.Errorf("SaveSnapshot over pending changes accepted")
	}
}

func TestScriptThroughFacade(t *testing.T) {
	w := newRetail(t)
	stageSale(t, w)
	plan, err := w.PlanMinWork()
	if err != nil {
		t.Fatal(err)
	}
	script := w.Script(plan.Strategy)
	for _, want := range []string{"EXEC comp_SALES_BY_STORE_from_SALES;", "EXEC inst_SALES;", "update script"} {
		if !strings.Contains(script, want) {
			t.Errorf("script missing %q:\n%s", want, script)
		}
	}
}
