package warehouse

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// newBigRetail is the retail fixture scaled until the SALES-state hash build
// outgrows a 4 KiB window budget, entirely through the public API.
func newBigRetail(t *testing.T) *Warehouse {
	t.Helper()
	w := New()
	w.MustDefineBase("STORES", Schema{
		{Name: "store_id", Kind: KindInt},
		{Name: "region", Kind: KindString},
	})
	w.MustDefineBase("SALES", Schema{
		{Name: "sale_id", Kind: KindInt},
		{Name: "store_id", Kind: KindInt},
		{Name: "amount", Kind: KindFloat},
	})
	w.MustDefineViewSQL("SALES_BY_STORE", `
		SELECT s.sale_id, s.amount, st.region
		FROM SALES s, STORES st
		WHERE s.store_id = st.store_id`)
	w.MustDefineViewSQL("REGION_TOTALS", `
		SELECT region, SUM(amount) AS total, COUNT(*) AS n
		FROM SALES_BY_STORE GROUP BY region`)
	regions := []string{"west", "east", "north", "south"}
	var stores, sales []Tuple
	for i := 0; i < 20; i++ {
		stores = append(stores, Tuple{Int(int64(i)), String(regions[i%len(regions)])})
	}
	for i := 0; i < 300; i++ {
		sales = append(sales, Tuple{Int(int64(i)), Int(int64(i % 20)), Float(float64(i) / 2)})
	}
	if err := w.Load("STORES", stores); err != nil {
		t.Fatal(err)
	}
	if err := w.Load("SALES", sales); err != nil {
		t.Fatal(err)
	}
	if err := w.Refresh(); err != nil {
		t.Fatal(err)
	}
	return w
}

// stageBigRetail stages changes to BOTH bases, so some maintenance term must
// probe the full 300-row SALES state — the build that spills under budget.
func stageBigRetail(t *testing.T, w *Warehouse) {
	t.Helper()
	ds, err := w.NewDelta("SALES")
	if err != nil {
		t.Fatal(err)
	}
	ds.Add(Tuple{Int(10_000), Int(3), Float(50)}, 1)
	ds.Add(Tuple{Int(0), Int(0), Float(0)}, -1)
	if err := w.StageDelta("SALES", ds); err != nil {
		t.Fatal(err)
	}
	dst, err := w.NewDelta("STORES")
	if err != nil {
		t.Fatal(err)
	}
	dst.Add(Tuple{Int(100), String("islands")}, 1)
	if err := w.StageDelta("STORES", dst); err != nil {
		t.Fatal(err)
	}
}

// TestWindowCountersReportSpilling: a budgeted window spills, says so in its
// counters and String() summary, and produces exactly the unbudgeted result;
// resetting the budget to 0 turns the machinery back off.
func TestWindowCountersReportSpilling(t *testing.T) {
	ref := newBigRetail(t)
	stageBigRetail(t, ref)
	if _, err := ref.RunWindow(MinWorkPlanner); err != nil {
		t.Fatal(err)
	}

	w := newBigRetail(t)
	w.SetMemoryBudget(4096)
	if got := w.MemoryBudget(); got != 4096 {
		t.Fatalf("MemoryBudget() = %d", got)
	}
	stageBigRetail(t, w)
	rep, err := w.RunWindow(MinWorkPlanner)
	if err != nil {
		t.Fatal(err)
	}
	c := rep.Counters()
	if c.SpillCount == 0 || c.SpilledBytes == 0 || c.SpillReReadBytes == 0 || c.PeakReservedBytes == 0 {
		t.Fatalf("budgeted window reported no spilling: %+v", c)
	}
	if s := rep.String(); !strings.Contains(s, "spills=") {
		t.Fatalf("window summary hides spilling: %s", s)
	}
	for _, v := range ref.Views() {
		if !sameRows(rowsOf(t, ref, v), rowsOf(t, w, v)) {
			t.Fatalf("%s differs from the unbudgeted window's result", v)
		}
	}
	if err := w.Verify(); err != nil {
		t.Fatal(err)
	}

	// Budget off again: the next window runs fully resident.
	w.SetMemoryBudget(0)
	d2, err := w.NewDelta("SALES")
	if err != nil {
		t.Fatal(err)
	}
	d2.Add(Tuple{Int(10_001), Int(5), Float(9)}, 1)
	if err := w.StageDelta("SALES", d2); err != nil {
		t.Fatal(err)
	}
	rep2, err := w.RunWindow(MinWorkPlanner)
	if err != nil {
		t.Fatal(err)
	}
	if c2 := rep2.Counters(); c2.SpillCount != 0 {
		t.Fatalf("budget off, still spilled: %+v", c2)
	}
}

// TestCrashMidSpillSweptOnReopen: a crash while spilling leaves the
// journal in-flight AND the per-window spill directory on disk; reopening
// the journal sweeps the stale directory (reported via SpillDirsSwept) and
// Recover completes the window with the right answer.
func TestCrashMidSpillSweptOnReopen(t *testing.T) {
	ref := newBigRetail(t)
	stageBigRetail(t, ref)
	if _, err := ref.RunWindow(MinWorkPlanner); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "wh.journal")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if j.SpillDirsSwept() != 0 {
		t.Fatalf("fresh journal swept %d spill dirs", j.SpillDirsSwept())
	}
	w := newBigRetail(t)
	w.SetMemoryBudget(4096)
	stageBigRetail(t, w)
	inj := NewFaultInjector(5)
	inj.CrashAt("spill-write", 1)
	if _, err := w.RunWindowOpts(WindowOptions{Journal: j, Faults: inj}); err == nil {
		t.Fatal("crash mid-spill did not fail the window")
	}
	spillDir := path + ".spill"
	ents, err := os.ReadDir(spillDir)
	if err != nil || len(ents) == 0 {
		t.Fatalf("crashed window left no spill debris under %s (err=%v)", spillDir, err)
	}
	if !j.NeedsRecovery() {
		t.Fatal("crashed journal handle does not demand recovery")
	}
	j.Close()

	// Restart: reopen sweeps the debris and recovery replays the window.
	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.SpillDirsSwept() == 0 {
		t.Fatal("reopen swept no stale spill directories")
	}
	if ents, err := os.ReadDir(spillDir); err == nil && len(ents) != 0 {
		t.Fatalf("%d stale spill dirs survived the sweep", len(ents))
	}
	if !j2.NeedsRecovery() {
		t.Fatal("reopened journal lost the in-flight window")
	}
	w2 := newBigRetail(t)
	w2.SetMemoryBudget(4096) // bounded recovery of a bounded window
	rep, err := w2.Recover(j2)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Recovered || rep.SpillDirsSwept == 0 {
		t.Fatalf("recovery report: %+v", rep)
	}
	for _, v := range ref.Views() {
		if !sameRows(rowsOf(t, ref, v), rowsOf(t, w2, v)) {
			t.Fatalf("%s differs from the uninterrupted window's result", v)
		}
	}
	if err := w2.Verify(); err != nil {
		t.Fatal(err)
	}
}
