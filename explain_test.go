package warehouse

import (
	"fmt"
	"strings"
	"testing"
)

func TestExplain(t *testing.T) {
	w := newRetail(t)
	stageSale(t, w)
	plan, err := w.PlanMinWork()
	if err != nil {
		t.Fatal(err)
	}
	out, err := w.Explain(plan.Strategy)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"EXPLAIN",
		"Comp(SALES_BY_STORE, {SALES})",
		"terms=1",
		"|δSALES|=2",
		"total predicted work:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("explain missing %q:\n%s", want, out)
		}
	}
	// After Inst(SALES), later comps must show the post-install size mark.
	if !strings.Contains(out, "SALES′") && !strings.Contains(out, "SALES′") {
		// The join view reads SALES; with SALES installed first its size
		// shows as post-install in the second comp... unless ordering put
		// STORES first. Accept either, but the formatting path must exist
		// when a child is installed before a later comp reads it.
		t.Logf("no post-install mark in output (ordering-dependent):\n%s", out)
	}
	// Incorrect strategies are rejected before explanation.
	bad := Strategy{Inst{View: "SALES"}}
	if _, err := w.Explain(bad); err == nil {
		t.Errorf("incorrect strategy explained")
	}
}

func TestExplainCompare(t *testing.T) {
	w := newRetail(t)
	stageSale(t, w)
	mw, err := w.PlanMinWork()
	if err != nil {
		t.Fatal(err)
	}
	ds, err := w.PlanDualStage()
	if err != nil {
		t.Fatal(err)
	}
	out, err := w.ExplainCompare(mw.Strategy, ds.Strategy)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "strategy A") || !strings.Contains(out, "strategy B") {
		t.Errorf("compare format wrong:\n%s", out)
	}
	if !strings.Contains(out, "B/A predicted work ratio:") {
		t.Errorf("ratio missing:\n%s", out)
	}
	// The dual-stage baseline must not be predicted cheaper.
	idx := strings.LastIndex(out, "ratio: ")
	if idx < 0 {
		t.Fatalf("ratio missing:\n%s", out)
	}
	var ratio float64
	if _, err := fmt.Sscanf(out[idx:], "ratio: %f", &ratio); err != nil {
		t.Fatalf("cannot parse ratio: %v", err)
	}
	if ratio < 1 {
		t.Errorf("dual-stage predicted cheaper than MinWork: %v", ratio)
	}
}
