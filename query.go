package warehouse

import (
	"sort"

	"repro/internal/relation"
	"repro/internal/sqlparse"
)

// Query runs an ad-hoc OLAP query against the warehouse's current state:
// the same SELECT-FROM-WHERE-GROUPBY class as view definitions, plus
// presentation clauses ORDER BY <output column> [ASC|DESC] and LIMIT n.
// Duplicates (for non-aggregate queries over bag data) are expanded in the
// result, SQL-style.
//
// Queries read whatever state the views are in, so they remain answerable
// during an update window; a strategy's installs decide when each view's
// new state becomes visible.
func (w *Warehouse) Query(sql string) ([]Tuple, error) {
	q, err := sqlparse.ParseQuery(sql, w.resolveSchema)
	if err != nil {
		return nil, err
	}
	tbl, err := w.core.Evaluate(q.CQ)
	if err != nil {
		return nil, err
	}
	rows := tbl.SortedRows()
	var out []Tuple
	for _, r := range rows {
		for i := int64(0); i < r.Count; i++ {
			out = append(out, r.Tuple)
		}
	}
	if len(q.OrderBy) > 0 {
		sort.SliceStable(out, func(i, j int) bool {
			for _, k := range q.OrderBy {
				c := relation.Compare(out[i][k.Column], out[j][k.Column])
				if c == 0 {
					continue
				}
				if k.Desc {
					return c > 0
				}
				return c < 0
			}
			return false
		})
	}
	if q.Limit >= 0 && len(out) > q.Limit {
		out = out[:q.Limit]
	}
	return out, nil
}

// QuerySchema returns the output schema an ad-hoc query would produce,
// without evaluating it.
func (w *Warehouse) QuerySchema(sql string) (Schema, error) {
	q, err := sqlparse.ParseQuery(sql, w.resolveSchema)
	if err != nil {
		return nil, err
	}
	return q.CQ.OutputSchema(), nil
}
