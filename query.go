package warehouse

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/relation"
	"repro/internal/sqlparse"
)

// Query runs an ad-hoc OLAP query against the warehouse's current serving
// epoch: the same SELECT-FROM-WHERE-GROUPBY class as view definitions,
// plus presentation clauses ORDER BY <output column or 1-based ordinal>
// [ASC|DESC] and LIMIT n [OFFSET m]. Duplicates (for non-aggregate queries
// over bag data) are expanded in the result, SQL-style.
//
// Repeated query shapes are served from the prepared-plan cache: a hit
// skips lexing, parsing and binding entirely and goes straight from the
// SQL bytes to the bound plan (see SetPlanCache / PlanCacheStats).
//
// Queries stay answerable during an update window and are snapshot-
// isolated: each query pins one published epoch, so it sees exactly the
// pre-window or the post-window state — never a partially installed
// mixture. Safe for concurrent use.
func (w *Warehouse) Query(sql string) ([]Tuple, error) {
	rows, _, err := w.QueryEpoch(sql)
	return rows, err
}

// QueryEpoch is Query returning, additionally, the epoch number the result
// was served from. Epoch numbers are monotonic: once any reader has
// observed epoch e, no later query is served from an epoch before e
// (read-your-epoch consistency across a window commit).
func (w *Warehouse) QueryEpoch(sql string) ([]Tuple, uint64, error) {
	p := w.PinEpoch()
	defer p.Close()
	rows, err := p.Query(sql)
	return rows, p.Epoch(), err
}

// QuerySchema returns the output schema an ad-hoc query would produce,
// without evaluating it.
func (w *Warehouse) QuerySchema(sql string) (Schema, error) {
	p := w.PinEpoch()
	defer p.Close()
	q, err := w.prepareQuery(p.pin.Warehouse(), sql)
	if err != nil {
		return nil, err
	}
	return q.CQ.OutputSchema(), nil
}

// PinEpoch pins the current serving epoch and returns a read view over it.
// Every query and row read through the pin sees the same frozen state, no
// matter how many windows commit in the meantime — this is how a reader
// gets multi-view consistency (e.g. a fact view and a summary over it that
// agree). Close the pin when done: a retired epoch is garbage-collected
// when its last reader unpins.
func (w *Warehouse) PinEpoch() *PinnedEpoch {
	return &PinnedEpoch{w: w, pin: w.epochs.Pin()}
}

// PinnedEpoch is a consistent read view over one published epoch. It is
// cheap to create and must be Closed. A PinnedEpoch is not safe for
// concurrent use by multiple goroutines; each reader pins its own.
type PinnedEpoch struct {
	w   *Warehouse // for the prepared-plan cache
	pin *core.Pin
}

// Epoch returns the pinned epoch's number.
func (p *PinnedEpoch) Epoch() uint64 { return p.pin.Epoch() }

// Close releases the pin. Idempotent.
func (p *PinnedEpoch) Close() { p.pin.Unpin() }

// Query evaluates an ad-hoc query against the pinned state.
func (p *PinnedEpoch) Query(sql string) ([]Tuple, error) {
	c := p.pin.Warehouse()
	q, err := p.w.prepareQuery(c, sql)
	if err != nil {
		return nil, err
	}
	return evaluateQuery(c, q)
}

// Rows returns a view's rows (with multiplicities) in sorted order, as of
// the pinned epoch.
func (p *PinnedEpoch) Rows(name string) ([]CountedRow, error) {
	v := p.pin.Warehouse().View(name)
	if v == nil {
		return nil, fmt.Errorf("warehouse: unknown view %q", name)
	}
	var out []CountedRow
	for _, r := range v.SortedRows() {
		out = append(out, CountedRow{Tuple: r.Tuple, Count: r.Count})
	}
	return out, nil
}

// Size returns |V| as of the pinned epoch.
func (p *PinnedEpoch) Size(name string) (int64, error) {
	v := p.pin.Warehouse().View(name)
	if v == nil {
		return 0, fmt.Errorf("warehouse: unknown view %q", name)
	}
	return v.Cardinality(), nil
}

// Views returns all view names in definition order.
func (p *PinnedEpoch) Views() []string { return p.pin.Warehouse().ViewNames() }

// coreResolver resolves view schemas against one core snapshot.
func coreResolver(c *core.Warehouse) func(view string) (Schema, error) {
	return func(view string) (Schema, error) {
		v := c.View(view)
		if v == nil {
			return nil, fmt.Errorf("warehouse: unknown view %q", view)
		}
		return v.Schema(), nil
	}
}

// prepareQuery resolves sql to a bound plan, consulting the prepared-plan
// cache first. The cache key is the normalized SQL plus the snapshot's
// catalog version, so a plan is reused across epochs (window commits don't
// change the catalog) but never across a view definition or snapshot
// restore. Parse errors are not cached.
func (w *Warehouse) prepareQuery(c *core.Warehouse, sql string) (*sqlparse.Query, error) {
	cache := w.plans.Load()
	if cache == nil {
		return sqlparse.ParseQuery(sql, coreResolver(c))
	}
	version := c.CatalogVersion()
	if q, ok := cache.Get(sql, version); ok {
		return q, nil
	}
	q, err := sqlparse.ParseQuery(sql, coreResolver(c))
	if err != nil {
		return nil, err
	}
	cache.Put(sql, version, q)
	return q, nil
}

// evaluateQuery runs a bound plan against one core snapshot and applies
// the presentation clauses. The plan may be shared with concurrent queries
// (it comes from the cache) and is never mutated.
func evaluateQuery(c *core.Warehouse, q *sqlparse.Query) ([]Tuple, error) {
	tbl, err := c.Evaluate(q.CQ)
	if err != nil {
		return nil, err
	}
	rows := tbl.SortedRows()
	var out []Tuple
	for _, r := range rows {
		for i := int64(0); i < r.Count; i++ {
			out = append(out, r.Tuple)
		}
	}
	if len(q.OrderBy) > 0 {
		sort.SliceStable(out, func(i, j int) bool {
			for _, k := range q.OrderBy {
				c := relation.Compare(out[i][k.Column], out[j][k.Column])
				if c == 0 {
					continue
				}
				if k.Desc {
					return c > 0
				}
				return c < 0
			}
			return false
		})
	}
	if q.Offset > 0 {
		if q.Offset >= len(out) {
			out = out[:0]
		} else {
			out = out[q.Offset:]
		}
	}
	if q.Limit >= 0 && len(out) > q.Limit {
		out = out[:q.Limit]
	}
	return out, nil
}
