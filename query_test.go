package warehouse

import (
	"strings"
	"testing"
)

func TestQueryBasics(t *testing.T) {
	w := newRetail(t)
	rows, err := w.Query(`SELECT region, total FROM REGION_TOTALS ORDER BY total DESC`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %v", rows)
	}
	if rows[0][0].Str() != "west" || rows[1][0].Str() != "east" {
		t.Errorf("order wrong: %v", rows)
	}
}

func TestQueryJoinFilterLimit(t *testing.T) {
	w := newRetail(t)
	rows, err := w.Query(`
		SELECT s.sale_id, st.region
		FROM SALES s, STORES st
		WHERE s.store_id = st.store_id AND s.amount >= 10.0
		ORDER BY sale_id LIMIT 1`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0][0].Int() != 100 {
		t.Errorf("rows = %v", rows)
	}
}

func TestQueryAdHocAggregate(t *testing.T) {
	w := newRetail(t)
	rows, err := w.Query(`
		SELECT st.region, COUNT(*) AS n, MAX(s.amount) AS biggest
		FROM SALES s, STORES st
		WHERE s.store_id = st.store_id
		GROUP BY st.region
		ORDER BY biggest DESC`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %v", rows)
	}
	if rows[0][0].Str() != "west" || rows[0][2].Float() != 20 {
		t.Errorf("rows = %v", rows)
	}
}

func TestQueryDuringUpdateWindow(t *testing.T) {
	w := newRetail(t)
	stageSale(t, w)
	plan, err := w.PlanMinWork()
	if err != nil {
		t.Fatal(err)
	}
	// Execute only a prefix of the strategy (propagation of SALES into the
	// join view plus the install of SALES); summaries are not yet updated.
	prefix := plan.Strategy[:2]
	g, err := w.Graph()
	if err != nil {
		t.Fatal(err)
	}
	_ = g
	for _, e := range prefix {
		switch x := e.(type) {
		case Comp:
			if _, err := w.Internal().Compute(x.View, x.Over); err != nil {
				t.Fatal(err)
			}
		case Inst:
			if _, err := w.Internal().Install(x.View); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Mid-window OLAP queries still answer from current (mixed) state.
	rows, err := w.Query(`SELECT region, total FROM REGION_TOTALS ORDER BY region`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Errorf("mid-window query failed: %v", rows)
	}
}

func TestQueryDuplicatesExpanded(t *testing.T) {
	w := New()
	w.MustDefineBase("B", Schema{{Name: "x", Kind: KindInt}})
	if err := w.Load("B", []Tuple{{Int(1)}, {Int(1)}, {Int(2)}}); err != nil {
		t.Fatal(err)
	}
	rows, err := w.Query("SELECT x FROM B ORDER BY x")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 || rows[0][0].Int() != 1 || rows[1][0].Int() != 1 || rows[2][0].Int() != 2 {
		t.Errorf("rows = %v", rows)
	}
	// DISTINCT collapses them.
	rows, err = w.Query("SELECT DISTINCT x FROM B ORDER BY x")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Errorf("distinct rows = %v", rows)
	}
	// LIMIT 0 is allowed.
	rows, err = w.Query("SELECT x FROM B LIMIT 0")
	if err != nil || len(rows) != 0 {
		t.Errorf("LIMIT 0: %v, %v", rows, err)
	}
}

func TestQuerySchemaAndErrors(t *testing.T) {
	w := newRetail(t)
	s, err := w.QuerySchema("SELECT region, total FROM REGION_TOTALS")
	if err != nil {
		t.Fatal(err)
	}
	if s.String() != "region VARCHAR, total FLOAT" {
		t.Errorf("schema = %s", s)
	}
	bad := []string{
		"SELECT nope FROM REGION_TOTALS",
		"SELECT region FROM REGION_TOTALS ORDER BY nope",
		"SELECT region FROM REGION_TOTALS ORDER region",
		"SELECT region FROM REGION_TOTALS LIMIT x",
		"SELECT region FROM REGION_TOTALS LIMIT",
		"SELECT region FROM REGION_TOTALS x y",
	}
	for _, sql := range bad {
		if _, err := w.Query(sql); err == nil {
			t.Errorf("accepted %q", sql)
		}
		if _, err := w.QuerySchema(sql); err == nil {
			t.Errorf("QuerySchema accepted %q", sql)
		}
	}
}

func TestQueryOrderByMultipleKeys(t *testing.T) {
	w := New()
	w.MustDefineBase("B", Schema{{Name: "a", Kind: KindInt}, {Name: "b", Kind: KindInt}})
	if err := w.Load("B", []Tuple{
		{Int(1), Int(9)}, {Int(1), Int(3)}, {Int(2), Int(5)},
	}); err != nil {
		t.Fatal(err)
	}
	rows, err := w.Query("SELECT a, b FROM B ORDER BY a ASC, b DESC")
	if err != nil {
		t.Fatal(err)
	}
	want := "(1, 9)(1, 3)(2, 5)"
	got := ""
	for _, r := range rows {
		got += r.String()
	}
	if got != want {
		t.Errorf("order = %s, want %s", got, want)
	}
	if !strings.Contains(got, "(1, 9)") {
		t.Errorf("missing row")
	}
}
