package warehouse

import (
	"bytes"
	"strings"
	"testing"
)

func TestCSVFacadeEndToEnd(t *testing.T) {
	w := New()
	w.MustDefineBase("SALES", Schema{
		{Name: "sale_id", Kind: KindInt},
		{Name: "region", Kind: KindString},
		{Name: "amount", Kind: KindFloat},
	})
	w.MustDefineViewSQL("TOTALS", `
		SELECT region, SUM(amount) AS total FROM SALES GROUP BY region`)

	n, err := w.LoadCSV("SALES", strings.NewReader(
		"sale_id,region,amount\n1,west,10\n2,west,20\n3,east,5\n"))
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Errorf("loaded %d rows", n)
	}
	if err := w.Refresh(); err != nil {
		t.Fatal(err)
	}

	// Stage a CSV change batch: void sale 1, add sale 4.
	d, err := w.StageDeltaCSV("SALES", strings.NewReader(
		"sale_id,region,amount,__count\n1,west,10,-1\n4,east,50,1\n"))
	if err != nil {
		t.Fatal(err)
	}
	if d.PlusCount() != 1 || d.MinusCount() != 1 {
		t.Errorf("staged delta = +%d −%d", d.PlusCount(), d.MinusCount())
	}
	plan, err := w.PlanMinWork()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Execute(plan.Strategy); err != nil {
		t.Fatal(err)
	}
	if err := w.Verify(); err != nil {
		t.Fatal(err)
	}
	rows, err := w.Query("SELECT region, total FROM TOTALS ORDER BY region")
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].String() != "(east, 55)" || rows[1].String() != "(west, 20)" {
		t.Errorf("totals = %v", rows)
	}

	var buf bytes.Buffer
	if err := w.DumpCSV("TOTALS", &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "east,55") {
		t.Errorf("dump = %q", buf.String())
	}
	if err := w.DumpCSV("NOPE", &buf); err == nil {
		t.Errorf("unknown view accepted")
	}
	if _, err := w.LoadCSV("NOPE", strings.NewReader("")); err == nil {
		t.Errorf("unknown view accepted")
	}
	if _, err := w.StageDeltaCSV("NOPE", strings.NewReader("")); err == nil {
		t.Errorf("unknown view accepted")
	}
	if _, err := w.LoadCSV("SALES", strings.NewReader("bad")); err == nil {
		t.Errorf("bad csv accepted")
	}
	if _, err := w.StageDeltaCSV("SALES", strings.NewReader("bad")); err == nil {
		t.Errorf("bad delta csv accepted")
	}
}
