package warehouse

import (
	"bytes"
	"testing"

	"repro/internal/journal"
)

// shipRetailWindows journals n windows on a fresh retail warehouse and
// returns the leader plus the parsed shipped log.
func shipRetailWindows(t *testing.T, n int) (*Warehouse, journal.Log) {
	t.Helper()
	leader := newRetail(t)
	var buf bytes.Buffer
	j := NewJournal(&buf)
	for i := 0; i < n; i++ {
		stageEastSale(t, leader, int64(700+i))
		if _, err := leader.RunWindowOpts(WindowOptions{Mode: ModeDAG, Journal: j}); err != nil {
			t.Fatal(err)
		}
	}
	lg, err := journal.ReadLog(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	return leader, lg
}

// TestApplyWindowOrdering: shipped windows must apply in order — skipping
// one fails the pre-state digest check and leaves the follower untouched;
// re-applying an already-applied window fails the same way.
func TestApplyWindowOrdering(t *testing.T) {
	leader, lg := shipRetailWindows(t, 3)
	follower := newRetail(t)

	// Out of order: window 2 against a follower still at epoch 1.
	if _, err := follower.ApplyWindow(&lg.Windows[1]); err == nil {
		t.Fatal("skipped-ahead window applied")
	}
	if follower.Epoch() != 1 {
		t.Fatalf("failed apply flipped epoch to %d", follower.Epoch())
	}

	for i := range lg.Windows {
		if _, err := follower.ApplyWindow(&lg.Windows[i]); err != nil {
			t.Fatalf("window %d: %v", i, err)
		}
	}
	// Duplicate: the last window again.
	if _, err := follower.ApplyWindow(&lg.Windows[2]); err == nil {
		t.Fatal("duplicate window applied")
	}
	if got, want := follower.Epoch(), leader.Epoch(); got != want {
		t.Fatalf("epochs: follower %d, leader %d", got, want)
	}
	if got, want := follower.StateDigest(), leader.StateDigest(); got != want {
		t.Fatalf("digests: follower %016x, leader %016x", got, want)
	}
}

// TestApplyWindowPinnedReaders: a pin taken before a replicated flip keeps
// serving the old epoch; the flip is atomic for new readers.
func TestApplyWindowPinnedReaders(t *testing.T) {
	_, lg := shipRetailWindows(t, 1)
	follower := newRetail(t)
	p := follower.PinEpoch()
	defer p.Close()

	if _, err := follower.ApplyWindow(&lg.Windows[0]); err != nil {
		t.Fatal(err)
	}
	old, err := p.Rows("SALES_BY_STORE")
	if err != nil {
		t.Fatal(err)
	}
	if len(old) != 3 {
		t.Fatalf("pinned reader sees %d rows post-replay, want pre-window 3", len(old))
	}
	cur, err := follower.Rows("SALES_BY_STORE")
	if err != nil {
		t.Fatal(err)
	}
	if len(cur) != 4 {
		t.Fatalf("current epoch has %d rows, want 4", len(cur))
	}
	if follower.LiveEpochs() != 2 {
		t.Fatalf("live epochs = %d", follower.LiveEpochs())
	}
}

// TestResumeJournal: a promoted follower's journal continues the committed
// count and sequence numbering of the log it replicated.
func TestResumeJournal(t *testing.T) {
	leader, lg := shipRetailWindows(t, 2)
	follower := newRetail(t)
	for i := range lg.Windows {
		if _, err := follower.ApplyWindow(&lg.Windows[i]); err != nil {
			t.Fatal(err)
		}
	}

	var out bytes.Buffer
	j := ResumeJournal(&out, len(lg.Windows))
	if j.Committed() != 2 || j.NeedsRecovery() {
		t.Fatalf("resumed journal: committed=%d needsRecovery=%v", j.Committed(), j.NeedsRecovery())
	}
	stageEastSale(t, follower, 800)
	if _, err := follower.RunWindowOpts(WindowOptions{Journal: j}); err != nil {
		t.Fatal(err)
	}
	if j.Committed() != 3 {
		t.Fatalf("committed after resumed window = %d", j.Committed())
	}
	newLog, err := journal.ReadLog(bytes.NewReader(out.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(newLog.Windows) != 1 || newLog.Windows[0].Begin.Seq != 3 {
		t.Fatalf("resumed journal numbered the window %d, want 3", newLog.Windows[0].Begin.Seq)
	}
	if follower.Epoch() != leader.Epoch()+1 {
		t.Fatalf("promoted follower epoch %d", follower.Epoch())
	}
	hist := follower.History()
	if n := len(hist); n != 3 || !hist[0].Replicated || hist[n-1].Replicated {
		t.Fatalf("history shape wrong: %+v", hist)
	}
}
