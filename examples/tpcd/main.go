// TPC-D update windows: the paper's own scenario. Builds the Figure 4
// warehouse (six TPC-D base views, summary views Q3, Q5, Q10), stages a 10%
// decrease of the base views, and measures the update window of four
// strategies: MinWork, Prune's best 1-way, the reverse ordering, and the
// conventional dual-stage strategy.
//
//	go run ./examples/tpcd [-sf 0.002]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"repro/internal/cost"
	"repro/internal/exec"
	"repro/internal/planner"
	"repro/internal/strategy"
	"repro/internal/tpcd"
)

func main() {
	sf := flag.Float64("sf", 0.002, "TPC-D scale factor")
	flag.Parse()

	tw, err := tpcd.NewWarehouse(tpcd.Config{SF: *sf, Seed: 7})
	check(err)
	fmt.Println("TPC-D warehouse (Figure 4 of the paper):")
	for _, v := range tw.W.ViewNames() {
		fmt.Printf("  %-9s %8d rows\n", v, tw.W.MustView(v).Cardinality())
	}
	_, err = tw.StageChanges(tpcd.UniformDecrease(0.10))
	check(err)

	stats, err := exec.PlanningStats(tw.W)
	check(err)

	mw, err := planner.MinWork(tw.Graph, stats)
	check(err)
	fmt.Printf("\ndesired view ordering: %v\n", mw.DesiredOrdering)

	pr, err := planner.Prune(tw.Graph, cost.DefaultModel, stats, exec.RefCounts(tw.W))
	check(err)

	rev := append([]string(nil), mw.UsedOrdering...)
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	revStrategy, err := planner.ConstructEG(tw.Graph, rev).TopoSort()
	check(err)

	fmt.Println("\nstrategy                 measured work    update window")
	var baseline int64
	for _, c := range []struct {
		label string
		s     strategy.Strategy
	}{
		{"MinWork", mw.Strategy},
		{"Prune best 1-way", pr.Strategy},
		{"reverse ordering", revStrategy},
		{"dual-stage", strategy.DualStageVDAG(tw.Graph)},
	} {
		run := tw.W.Clone()
		t0 := time.Now()
		rep, err := exec.Execute(run, c.s, exec.Options{Validate: true})
		check(err)
		elapsed := time.Since(t0)
		check(run.VerifyAll())
		suffix := ""
		if baseline == 0 {
			baseline = rep.TotalWork()
		} else {
			suffix = fmt.Sprintf("  (%.2fx MinWork)", float64(rep.TotalWork())/float64(baseline))
		}
		fmt.Printf("%-24s %13d %16s%s\n", c.label, rep.TotalWork(), elapsed.Round(time.Microsecond), suffix)
	}
	fmt.Println("\nAll four strategies produce identical view states (verified against recomputation).")
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
