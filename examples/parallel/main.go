// Parallel update strategies (Section 9 of the paper): stage a sequential
// strategy into sets of expressions that run concurrently, and observe the
// work/span tradeoff between 1-way and dual-stage strategies.
//
//	go run ./examples/parallel
package main

import (
	"fmt"
	"log"
	"math/rand"

	warehouse "repro"
)

func main() {
	w := warehouse.New()
	w.MustDefineBase("EVENTS", warehouse.Schema{
		{Name: "event_id", Kind: warehouse.KindInt},
		{Name: "kind", Kind: warehouse.KindString},
		{Name: "user_id", Kind: warehouse.KindInt},
		{Name: "value", Kind: warehouse.KindFloat},
	})
	w.MustDefineBase("USERS", warehouse.Schema{
		{Name: "user_id", Kind: warehouse.KindInt},
		{Name: "plan", Kind: warehouse.KindString},
	})
	// Three sibling summaries over the same bases: their Comp expressions
	// are mutually independent, so a staged plan runs them concurrently.
	w.MustDefineViewSQL("BY_KIND", `
		SELECT kind, COUNT(*) AS n, SUM(value) AS total
		FROM EVENTS GROUP BY kind`)
	w.MustDefineViewSQL("BY_PLAN", `
		SELECT u.plan, SUM(e.value) AS total
		FROM EVENTS e, USERS u
		WHERE e.user_id = u.user_id
		GROUP BY u.plan`)
	w.MustDefineViewSQL("BIG_EVENTS", `
		SELECT event_id, kind, value
		FROM EVENTS WHERE value > 90.0`)

	loadData(w)
	check(w.Refresh())
	stageBatch(w)

	for _, variant := range []string{"minwork", "dualstage"} {
		run := w.Clone()
		var plan warehouse.Plan
		var err error
		if variant == "minwork" {
			plan, err = run.PlanMinWork()
		} else {
			plan, err = run.PlanDualStage()
		}
		check(err)
		staged := run.Parallelize(plan.Strategy)
		fmt.Printf("%s: %d expressions in %d stages\n", variant, staged.Exprs(), staged.Stages())
		fmt.Printf("  plan: %s\n", staged)
		rep, err := run.ExecuteParallel(staged)
		check(err)
		check(run.Verify())
		fmt.Printf("  total work %d, span work %d, work-parallelism %.2fx\n\n",
			rep.TotalWork, rep.SpanWork, rep.Speedup())
	}
	fmt.Println("Section 9's tradeoff: the dual-stage plan is shallower (more parallel)")
	fmt.Println("but its multi-term Comp expressions make the total work larger.")
}

func loadData(w *warehouse.Warehouse) {
	rng := rand.New(rand.NewSource(3))
	kinds := []string{"click", "view", "purchase"}
	plans := []string{"free", "pro"}
	var users []warehouse.Tuple
	for u := 0; u < 50; u++ {
		users = append(users, warehouse.Tuple{warehouse.Int(int64(u)), warehouse.String(plans[rng.Intn(2)])})
	}
	check(w.Load("USERS", users))
	var events []warehouse.Tuple
	for e := 0; e < 2000; e++ {
		events = append(events, warehouse.Tuple{
			warehouse.Int(int64(e)),
			warehouse.String(kinds[rng.Intn(3)]),
			warehouse.Int(rng.Int63n(50)),
			warehouse.Float(float64(rng.Intn(10000)) / 100),
		})
	}
	check(w.Load("EVENTS", events))
}

func stageBatch(w *warehouse.Warehouse) {
	rng := rand.New(rand.NewSource(4))
	d, err := w.NewDelta("EVENTS")
	check(err)
	rows, err := w.Rows("EVENTS")
	check(err)
	for _, r := range rows {
		if rng.Intn(10) == 0 {
			d.Add(r.Tuple, -r.Count)
		}
	}
	for i := 0; i < 100; i++ {
		d.Add(warehouse.Tuple{
			warehouse.Int(int64(10000 + i)),
			warehouse.String("purchase"),
			warehouse.Int(rng.Int63n(50)),
			warehouse.Float(float64(rng.Intn(10000)) / 100),
		}, 1)
	}
	check(w.StageDelta("EVENTS", d))
	du, err := w.NewDelta("USERS")
	check(err)
	du.Add(warehouse.Tuple{warehouse.Int(50), warehouse.String("pro")}, 1)
	check(w.StageDelta("USERS", du))
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
