// ETL pipeline: the complete warehouse lifecycle of the paper's Section 2
// model. A simulated remote OLTP source applies transactions; an extractor
// cleanses and reshapes its change log into base-view deltas ("base views
// are often obtained by cleansing and denormalizing OLTP data"); each
// update window plans a MinWork strategy and executes it; a deferred
// summary view goes stale and is refreshed on demand.
//
//	go run ./examples/etl
package main

import (
	"fmt"
	"log"
	"math/rand"

	warehouse "repro"
	"repro/internal/relation"
	"repro/internal/source"
)

// The OLTP side: a raw orders table with a status column. Only shipped
// orders with a positive amount reach the warehouse.
var oltpSchema = relation.Schema{
	{Name: "order_id", Kind: relation.KindInt},
	{Name: "customer", Kind: relation.KindInt},
	{Name: "amount", Kind: relation.KindFloat},
	{Name: "status", Kind: relation.KindString}, // draft | shipped | cancelled
}

var baseSchema = warehouse.Schema{
	{Name: "order_id", Kind: warehouse.KindInt},
	{Name: "customer", Kind: warehouse.KindInt},
	{Name: "amount", Kind: warehouse.KindFloat},
}

func main() {
	// --- source side -----------------------------------------------------
	src := source.New()
	check(src.DefineTable("ORDERS_RAW", oltpSchema, "order_id"))
	extractor, err := source.NewExtractor(src, map[string]source.Extraction{
		"ORDERS": {
			Table:      "ORDERS_RAW",
			Filter:     func(r relation.Tuple) bool { return r[3].Str() == "shipped" && r[2].Float() > 0 },
			Shape:      func(r relation.Tuple) relation.Tuple { return r[:3].Clone() },
			ViewSchema: relation.Schema(baseSchema),
		},
	})
	check(err)

	rng := rand.New(rand.NewSource(1))
	nextID := int64(0)
	txBurst := func(n int) {
		for i := 0; i < n; i++ {
			switch rng.Intn(4) {
			case 0, 1: // new shipped order
				src.MustApply(source.Tx{Table: "ORDERS_RAW", Op: source.OpInsert,
					Row: rawOrder(nextID, rng.Int63n(6), float64(rng.Intn(10000))/100, "shipped")})
				nextID++
			case 2: // draft order (invisible to the warehouse until shipped)
				src.MustApply(source.Tx{Table: "ORDERS_RAW", Op: source.OpInsert,
					Row: rawOrder(nextID, rng.Int63n(6), float64(rng.Intn(10000))/100, "draft")})
				nextID++
			case 3: // cancel a random past order (update → delete+insert)
				if nextID == 0 {
					continue
				}
				id := rng.Int63n(nextID)
				rows, _ := src.Rows("ORDERS_RAW")
				for _, r := range rows {
					if r[0].Int() == id {
						src.MustApply(source.Tx{Table: "ORDERS_RAW", Op: source.OpUpdate,
							Row: rawOrder(id, r[1].Int(), r[2].Float(), "cancelled")})
						break
					}
				}
			}
		}
	}
	txBurst(200)

	// --- warehouse side ---------------------------------------------------
	w := warehouse.New()
	w.MustDefineBase("ORDERS", baseSchema)
	w.MustDefineViewSQL("BY_CUSTOMER", `
		SELECT customer, SUM(amount) AS total, COUNT(*) AS orders
		FROM ORDERS GROUP BY customer`)
	w.MustDefineViewSQL("GRAND_TOTAL", `
		SELECT SUM(total) AS revenue FROM BY_CUSTOMER`)
	// GRAND_TOTAL is rarely read: defer it out of the update window.
	check(w.SetDeferred("GRAND_TOTAL", true))

	loaded, err := extractor.InitialLoad()
	check(err)
	check(w.Load("ORDERS", loaded["ORDERS"]))
	check(w.Refresh())
	fmt.Printf("initial load: %d cleansed orders\n\n", len(loaded["ORDERS"]))

	// --- nightly update windows -------------------------------------------
	for night := 1; night <= 3; night++ {
		txBurst(120)
		deltas, err := extractor.Drain()
		check(err)
		d := deltas["ORDERS"]
		if d == nil {
			fmt.Printf("night %d: no warehouse-visible changes\n", night)
			continue
		}
		fmt.Printf("night %d: extracted δORDERS = +%d −%d\n", night, d.PlusCount(), d.MinusCount())
		check(w.StageDelta("ORDERS", d))
		plan, err := w.PlanMinWork()
		check(err)
		rep, err := w.Execute(plan.Strategy)
		check(err)
		fmt.Printf("  update window: %s\n", rep)
		check(w.Verify())
	}

	fmt.Printf("\nstale views after the windows: %v\n", w.StaleViews())
	rows, err := w.Query(`SELECT customer, total FROM BY_CUSTOMER ORDER BY total DESC LIMIT 3`)
	check(err)
	fmt.Println("top customers (maintained incrementally):")
	for _, r := range rows {
		fmt.Printf("  %v\n", r)
	}

	check(w.RefreshStale())
	rows, err = w.Query(`SELECT revenue FROM GRAND_TOTAL`)
	check(err)
	fmt.Printf("grand total (refreshed on demand): %v\n", rows[0])
	check(w.Verify())
}

func rawOrder(id, cust int64, amount float64, status string) relation.Tuple {
	return relation.Tuple{
		relation.NewInt(id), relation.NewInt(cust),
		relation.NewFloat(amount), relation.NewString(status),
	}
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
