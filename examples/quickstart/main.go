// Quickstart: define a warehouse, load data, stage a change batch, plan an
// update strategy with MinWork, execute it, and inspect the result.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	warehouse "repro"
)

func main() {
	w := warehouse.New()

	// Two base views (populated from sources) and two derived views.
	w.MustDefineBase("PRODUCTS", warehouse.Schema{
		{Name: "product_id", Kind: warehouse.KindInt},
		{Name: "category", Kind: warehouse.KindString},
		{Name: "price", Kind: warehouse.KindFloat},
	})
	w.MustDefineBase("ORDERS", warehouse.Schema{
		{Name: "order_id", Kind: warehouse.KindInt},
		{Name: "product_id", Kind: warehouse.KindInt},
		{Name: "quantity", Kind: warehouse.KindInt},
	})
	w.MustDefineViewSQL("ORDER_DETAILS", `
		SELECT o.order_id, p.category, p.price * o.quantity AS amount
		FROM ORDERS o, PRODUCTS p
		WHERE o.product_id = p.product_id`)
	w.MustDefineViewSQL("CATEGORY_REVENUE", `
		SELECT category, SUM(amount) AS revenue, COUNT(*) AS orders
		FROM ORDER_DETAILS
		GROUP BY category`)

	// Initial load and materialization.
	check(w.Load("PRODUCTS", []warehouse.Tuple{
		{warehouse.Int(1), warehouse.String("books"), warehouse.Float(12.50)},
		{warehouse.Int(2), warehouse.String("games"), warehouse.Float(59.90)},
		{warehouse.Int(3), warehouse.String("books"), warehouse.Float(7.00)},
	}))
	check(w.Load("ORDERS", []warehouse.Tuple{
		{warehouse.Int(100), warehouse.Int(1), warehouse.Int(2)},
		{warehouse.Int(101), warehouse.Int(2), warehouse.Int(1)},
		{warehouse.Int(102), warehouse.Int(3), warehouse.Int(4)},
	}))
	check(w.Refresh())
	printView(w, "CATEGORY_REVENUE")

	// A batch of source changes arrives: one order cancelled, two new ones.
	d, err := w.NewDelta("ORDERS")
	check(err)
	d.Add(warehouse.Tuple{warehouse.Int(101), warehouse.Int(2), warehouse.Int(1)}, -1)
	d.Add(warehouse.Tuple{warehouse.Int(103), warehouse.Int(2), warehouse.Int(3)}, 1)
	d.Add(warehouse.Tuple{warehouse.Int(104), warehouse.Int(1), warehouse.Int(1)}, 1)
	check(w.StageDelta("ORDERS", d))

	// Plan the update window with MinWork and execute it.
	plan, err := w.PlanMinWork()
	check(err)
	fmt.Printf("\nplanned strategy: %s\n", plan.Strategy)
	report, err := w.Execute(plan.Strategy)
	check(err)
	fmt.Printf("update window: %s\n\n", report)

	check(w.Verify()) // every view equals its recomputation
	printView(w, "CATEGORY_REVENUE")
}

func printView(w *warehouse.Warehouse, name string) {
	rows, err := w.Rows(name)
	check(err)
	fmt.Printf("%s:\n", name)
	for _, r := range rows {
		fmt.Printf("  %v\n", r.Tuple)
	}
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
