// Retail: a three-level warehouse built entirely through the public API —
// cleansed base views (fact and dimension tables), a detail join view, and
// two summary levels above it. Demonstrates multi-level change propagation
// (C8 at work), the planners on a tree VDAG (where MinWork is provably
// optimal), and mixed insert/delete batches.
//
//	go run ./examples/retail
package main

import (
	"fmt"
	"log"
	"math/rand"

	warehouse "repro"
)

func main() {
	w := warehouse.New()

	// Level 0: cleansed base views.
	w.MustDefineBase("STORES", warehouse.Schema{
		{Name: "store_id", Kind: warehouse.KindInt},
		{Name: "city", Kind: warehouse.KindString},
		{Name: "country", Kind: warehouse.KindString},
	})
	w.MustDefineBase("SALES", warehouse.Schema{
		{Name: "sale_id", Kind: warehouse.KindInt},
		{Name: "store_id", Kind: warehouse.KindInt},
		{Name: "sold_on", Kind: warehouse.KindDate},
		{Name: "amount", Kind: warehouse.KindFloat},
	})

	// Level 1: the detail view ("fact join dimension").
	w.MustDefineViewSQL("SALE_FACTS", `
		SELECT s.sale_id, s.sold_on, s.amount, st.city, st.country
		FROM SALES s, STORES st
		WHERE s.store_id = st.store_id AND s.amount > 0`)

	// Level 2: a summary over the detail view.
	w.MustDefineViewSQL("CITY_DAILY", `
		SELECT city, sold_on, SUM(amount) AS revenue, COUNT(*) AS sales
		FROM SALE_FACTS
		GROUP BY city, sold_on`)

	// Level 3: a coarser rollup over the summary.
	w.MustDefineViewSQL("CITY_TOTALS", `
		SELECT city, SUM(revenue) AS revenue
		FROM CITY_DAILY
		GROUP BY city`)

	loadData(w)
	check(w.Refresh())

	g, err := w.Graph()
	check(err)
	fmt.Printf("VDAG: %s\n", g)
	fmt.Printf("tree=%v uniform=%v maxlevel=%d\n\n", g.IsTree(), g.IsUniform(), g.MaxLevel())
	printView(w, "CITY_TOTALS")

	// A day's batch: some sales voided, many new ones.
	stageBatch(w)

	plan, err := w.PlanMinWork()
	check(err)
	fmt.Printf("\nMinWork ordering %v (tree VDAG ⇒ provably optimal)\n", plan.Ordering)
	fmt.Printf("strategy: %s\n", plan.Strategy)

	// Compare against the conventional dual-stage strategy on a clone.
	dual, err := w.PlanDualStage()
	check(err)
	clone := w.Clone()
	dualRep, err := clone.Execute(dual.Strategy)
	check(err)

	rep, err := w.Execute(plan.Strategy)
	check(err)
	check(w.Verify())

	fmt.Printf("\nMinWork    update window: %s\n", rep)
	fmt.Printf("dual-stage update window: %s (%.2fx the work)\n\n",
		dualRep, float64(dualRep.TotalWork())/float64(rep.TotalWork()))
	printView(w, "CITY_TOTALS")
}

func loadData(w *warehouse.Warehouse) {
	stores := []warehouse.Tuple{
		{warehouse.Int(1), warehouse.String("Lisbon"), warehouse.String("PT")},
		{warehouse.Int(2), warehouse.String("Porto"), warehouse.String("PT")},
		{warehouse.Int(3), warehouse.String("Madrid"), warehouse.String("ES")},
	}
	check(w.Load("STORES", stores))
	rng := rand.New(rand.NewSource(1))
	var sales []warehouse.Tuple
	for i := 0; i < 500; i++ {
		sales = append(sales, warehouse.Tuple{
			warehouse.Int(int64(i)),
			warehouse.Int(1 + rng.Int63n(3)),
			warehouse.Date(fmt.Sprintf("2026-06-%02d", 1+rng.Intn(30))),
			warehouse.Float(float64(rng.Intn(20000)) / 100),
		})
	}
	check(w.Load("SALES", sales))
}

func stageBatch(w *warehouse.Warehouse) {
	rng := rand.New(rand.NewSource(2))
	d, err := w.NewDelta("SALES")
	check(err)
	rows, err := w.Rows("SALES")
	check(err)
	voided := 0
	for _, r := range rows {
		if rng.Intn(20) == 0 { // ~5% of sales voided
			d.Add(r.Tuple, -r.Count)
			voided++
		}
	}
	added := 0
	for i := 0; i < 40; i++ {
		d.Add(warehouse.Tuple{
			warehouse.Int(int64(1000 + i)),
			warehouse.Int(1 + rng.Int63n(3)),
			warehouse.Date("2026-07-01"),
			warehouse.Float(float64(rng.Intn(20000)) / 100),
		}, 1)
		added++
	}
	check(w.StageDelta("SALES", d))
	fmt.Printf("staged batch: %d voided, %d new sales\n", voided, added)
}

func printView(w *warehouse.Warehouse, name string) {
	rows, err := w.Rows(name)
	check(err)
	fmt.Printf("%s:\n", name)
	for _, r := range rows {
		fmt.Printf("  %v\n", r.Tuple)
	}
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
