package warehouse

import (
	"fmt"
	"strings"

	"repro/internal/cost"
	"repro/internal/exec"
	"repro/internal/maintain"
)

// Explain renders a strategy with its predicted per-expression cost under
// the linear work metric and the current planning statistics: for each
// Comp, the number of maintenance terms and the operand state it will read
// (pre- or post-install sizes); for each Inst, the delta size installed.
// The footer totals the prediction. Useful for understanding *why* one
// strategy beats another before running either.
func (w *Warehouse) Explain(s Strategy) (string, error) {
	if err := w.Validate(s); err != nil {
		return "", err
	}
	stats, err := w.PlanningStats()
	if err != nil {
		return "", err
	}
	refs := exec.RefCounts(w.core)
	b, err := cost.Simulate(w.model, stats, refs, s)
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "EXPLAIN (linear work metric; estimated |δ| for derived views)\n")
	installed := make(map[string]bool)
	for i, e := range s {
		fmt.Fprintf(&sb, "%3d. %-36s cost %10.0f", i+1, e.String(), b.PerExpr[i])
		switch x := e.(type) {
		case Comp:
			nTerms, err := maintain.TermCount(w.core.MustView(x.View).Def(), x.Over)
			if err != nil {
				return "", err
			}
			var operands []string
			for _, child := range w.core.Children(x.View) {
				st := stats[child]
				size := st.Size
				mark := ""
				if installed[child] {
					size = st.SizeAfter()
					mark = "′" // post-install state
				}
				operands = append(operands, fmt.Sprintf("|%s%s|=%d", child, mark, size))
				if containsStr(x.Over, child) {
					operands = append(operands, fmt.Sprintf("|δ%s|=%d", child, st.DeltaSize()))
				}
			}
			fmt.Fprintf(&sb, "  terms=%d  %s", nTerms, strings.Join(operands, " "))
		case Inst:
			fmt.Fprintf(&sb, "  |δ%s|=%d", x.View, stats[x.View].DeltaSize())
			installed[x.View] = true
		}
		sb.WriteString("\n")
	}
	fmt.Fprintf(&sb, "total predicted work: %.0f (comp %.0f + inst %.0f)\n", b.Total, b.Comp, b.Inst)
	return sb.String(), nil
}

func containsStr(list []string, s string) bool {
	for _, v := range list {
		if v == s {
			return true
		}
	}
	return false
}

// ExplainCompare explains two strategies side by side and reports their
// predicted ratio — e.g. a planned strategy against the dual-stage baseline.
func (w *Warehouse) ExplainCompare(a, b Strategy) (string, error) {
	ea, err := w.Explain(a)
	if err != nil {
		return "", err
	}
	eb, err := w.Explain(b)
	if err != nil {
		return "", err
	}
	wa, err := w.EstimateWork(a)
	if err != nil {
		return "", err
	}
	wb, err := w.EstimateWork(b)
	if err != nil {
		return "", err
	}
	ratio := "n/a"
	if wa > 0 {
		ratio = fmt.Sprintf("%.2f", wb/wa)
	}
	return fmt.Sprintf("--- strategy A ---\n%s\n--- strategy B ---\n%s\nB/A predicted work ratio: %s\n",
		ea, eb, ratio), nil
}
