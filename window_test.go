package warehouse

import (
	"strings"
	"testing"
)

func TestRunWindowAndHistory(t *testing.T) {
	w := newRetail(t)

	// Window 1: MinWork (default when planner is "").
	stageSale(t, w)
	win1, err := w.RunWindow("")
	if err != nil {
		t.Fatal(err)
	}
	if win1.Seq != 1 || win1.Planner != MinWorkPlanner {
		t.Errorf("window 1 = %+v", win1)
	}
	if win1.Report.TotalWork() == 0 {
		t.Errorf("no work recorded")
	}
	if err := w.Verify(); err != nil {
		t.Fatal(err)
	}

	// Window 2: Prune.
	d, err := w.NewDelta("SALES")
	if err != nil {
		t.Fatal(err)
	}
	d.Add(Tuple{Int(104), Int(2), Float(8)}, 1)
	if err := w.StageDelta("SALES", d); err != nil {
		t.Fatal(err)
	}
	win2, err := w.RunWindow(PrunePlanner)
	if err != nil {
		t.Fatal(err)
	}
	if win2.Seq != 2 || win2.Planner != PrunePlanner {
		t.Errorf("window 2 = %+v", win2)
	}
	if win2.Plan.EstimatedWork < 0 {
		t.Errorf("Prune should report an estimate")
	}

	// Window 3: dual-stage baseline.
	d, err = w.NewDelta("STORES")
	if err != nil {
		t.Fatal(err)
	}
	d.Add(Tuple{Int(3), String("north")}, 1)
	if err := w.StageDelta("STORES", d); err != nil {
		t.Fatal(err)
	}
	if _, err := w.RunWindow(DualStagePlanner); err != nil {
		t.Fatal(err)
	}

	hist := w.History()
	if len(hist) != 3 {
		t.Fatalf("history = %d windows", len(hist))
	}
	if w.TotalWindowWork() != hist[0].Report.TotalWork()+hist[1].Report.TotalWork()+hist[2].Report.TotalWork() {
		t.Errorf("TotalWindowWork inconsistent")
	}
	if !strings.Contains(hist[0].String(), "window 1 [minwork]") {
		t.Errorf("window string = %q", hist[0].String())
	}
	// History is a copy.
	hist[0].Seq = 99
	if w.History()[0].Seq != 1 {
		t.Errorf("History aliases internal state")
	}
	// Clone carries history.
	if got := len(w.Clone().History()); got != 3 {
		t.Errorf("clone history = %d", got)
	}
	if err := w.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestRunWindowModes(t *testing.T) {
	w := newRetail(t)

	// Window 1: staged parallel execution through the facade.
	stageSale(t, w)
	win1, err := w.RunWindowMode(MinWorkPlanner, ModeStaged, 2)
	if err != nil {
		t.Fatal(err)
	}
	if win1.Mode != ModeStaged || win1.Parallel == nil {
		t.Fatalf("window 1 = %+v", win1)
	}
	if win1.Report.TotalWork() != win1.Parallel.TotalWork {
		t.Errorf("flattened report work %d != parallel total %d",
			win1.Report.TotalWork(), win1.Parallel.TotalWork)
	}
	if !strings.Contains(win1.String(), "[minwork, staged") {
		t.Errorf("window string = %q", win1.String())
	}

	// Window 2: barrier-free DAG execution.
	d, err := w.NewDelta("SALES")
	if err != nil {
		t.Fatal(err)
	}
	d.Add(Tuple{Int(105), Int(1), Float(3)}, 1)
	if err := w.StageDelta("SALES", d); err != nil {
		t.Fatal(err)
	}
	win2, err := w.RunWindowMode(DualStagePlanner, ModeDAG, 4)
	if err != nil {
		t.Fatal(err)
	}
	if win2.Mode != ModeDAG || win2.Parallel == nil {
		t.Fatalf("window 2 = %+v", win2)
	}
	pr := win2.Parallel
	if pr.CriticalPathWork > pr.SpanWork || pr.SpanWork > pr.TotalWork {
		t.Errorf("metric ordering violated: critpath %d span %d total %d",
			pr.CriticalPathWork, pr.SpanWork, pr.TotalWork)
	}
	if !strings.Contains(win2.String(), "dag") || !strings.Contains(win2.String(), "critical path") {
		t.Errorf("window string = %q", win2.String())
	}

	// History records both scheduling styles.
	if len(w.History()) != 2 {
		t.Fatalf("history = %d windows", len(w.History()))
	}
	if err := w.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestRunWindowModeRejectsUnknown(t *testing.T) {
	w := newRetail(t)
	stageSale(t, w)
	if _, err := w.RunWindowMode(MinWorkPlanner, Mode("bogus"), 0); err == nil {
		t.Errorf("unknown mode accepted")
	}
}

func TestRunWindowUnknownPlanner(t *testing.T) {
	w := newRetail(t)
	if _, err := w.RunWindow("nope"); err == nil {
		t.Errorf("unknown planner accepted")
	}
}

func TestUseIndexesThroughFacade(t *testing.T) {
	w := New(Options{UseIndexes: true})
	w.MustDefineBase("B", Schema{{Name: "k", Kind: KindInt}, {Name: "v", Kind: KindInt}})
	w.MustDefineBase("C", Schema{{Name: "k", Kind: KindInt}, {Name: "w", Kind: KindInt}})
	w.MustDefineViewSQL("J", `SELECT b.v, c.w FROM B b, C c WHERE b.k = c.k`)
	var rows []Tuple
	for i := int64(0); i < 50; i++ {
		rows = append(rows, Tuple{Int(i % 5), Int(i)})
	}
	if err := w.Load("B", rows); err != nil {
		t.Fatal(err)
	}
	if err := w.Load("C", rows); err != nil {
		t.Fatal(err)
	}
	if err := w.Refresh(); err != nil {
		t.Fatal(err)
	}
	d, err := w.NewDelta("B")
	if err != nil {
		t.Fatal(err)
	}
	d.Add(Tuple{Int(1), Int(999)}, 1)
	if err := w.StageDelta("B", d); err != nil {
		t.Fatal(err)
	}
	win, err := w.RunWindow(MinWorkPlanner)
	if err != nil {
		t.Fatal(err)
	}
	// With |δB| = 1 and indexes, work must be far below the |C| = 50 scan.
	if win.Report.CompWork >= 50 {
		t.Errorf("indexed comp work = %d, expected probes ≪ 50", win.Report.CompWork)
	}
	if err := w.Verify(); err != nil {
		t.Fatal(err)
	}
}
