// Command experiments regenerates the paper's evaluation: Table 1 and
// Figures 12–15, plus the Section 9 parallel-strategy analysis, printing
// paper-style rows (and optionally a Markdown report for EXPERIMENTS.md).
//
// Usage:
//
//	experiments [-sf 0.002] [-seed 7] [-p 0.10] [-only fig12] [-markdown]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	sf := flag.Float64("sf", 0.002, "TPC-D scale factor")
	seed := flag.Int64("seed", 7, "data generation seed")
	p := flag.Float64("p", 0.10, "change fraction (paper default: 10% decrease)")
	only := flag.String("only", "", "run a single experiment: table1, fig12, fig13, fig14, fig15, parallel")
	markdown := flag.Bool("markdown", false, "emit Markdown tables instead of plain text")
	chart := flag.Bool("chart", false, "render ASCII bar charts (the paper's figures)")
	flag.Parse()

	cfg := experiments.Config{SF: *sf, Seed: *seed, ChangeFrac: *p}
	runners := map[string]func(experiments.Config) (experiments.Result, error){
		"table1":         func(experiments.Config) (experiments.Result, error) { return experiments.Table1(), nil },
		"fig12":          experiments.Fig12,
		"fig13":          experiments.Fig13,
		"fig14":          experiments.Fig14,
		"fig15":          experiments.Fig15,
		"parallel":       experiments.Parallel,
		"stagedvsdag":    experiments.StagedVsDAG,
		"termparallel":   experiments.TermParallel,
		"sharedcomp":     experiments.SharedComp,
		"sharedplan":     experiments.SharedPlan,
		"metric":         experiments.MetricAblation,
		"estimation":     experiments.Estimation,
		"deep":           experiments.Deep,
		"faulttolerance": experiments.FaultTolerance,
		"onlinewindow":   experiments.OnlineWindow,
		"replication":    experiments.Replication,
		"streaming":      experiments.Streaming,
		"spill":          experiments.Spill,
	}
	order := []string{"table1", "fig12", "fig13", "fig14", "fig15", "parallel", "stagedvsdag", "termparallel", "sharedcomp", "sharedplan", "metric", "estimation", "deep", "faulttolerance", "onlinewindow", "replication", "streaming", "spill"}

	var ids []string
	if *only != "" {
		if _, ok := runners[*only]; !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (have %s)\n", *only, strings.Join(order, ", "))
			os.Exit(2)
		}
		ids = []string{*only}
	} else {
		ids = order
	}

	for _, id := range ids {
		start := time.Now()
		res, err := runners[id](cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
			os.Exit(1)
		}
		switch {
		case *markdown:
			fmt.Print(markdownResult(res))
		case *chart:
			fmt.Print(res.Chart())
		default:
			fmt.Print(res.Format())
		}
		fmt.Printf("(%s ran in %s)\n\n", id, time.Since(start).Round(time.Millisecond))
	}
}

func markdownResult(r experiments.Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s\n\n", r.ID, r.Title)
	if r.PaperClaim != "" {
		fmt.Fprintf(&b, "*Paper:* %s\n\n", r.PaperClaim)
	}
	b.WriteString("| strategy | work | elapsed | predicted | |\n|---|---:|---:|---:|---|\n")
	for _, row := range r.Rows {
		pred := ""
		if row.Predicted >= 0 {
			pred = fmt.Sprintf("%.0f", row.Predicted)
		}
		fmt.Fprintf(&b, "| %s | %d | %s | %s | %s |\n",
			row.Label, row.Work, row.Elapsed.Round(time.Microsecond), pred, row.Marker)
	}
	b.WriteString("\n")
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "- %s\n", n)
	}
	b.WriteString("\n")
	return b.String()
}
