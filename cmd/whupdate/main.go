// Command whupdate runs one warehouse update window over the TPC-D
// warehouse of the paper: it stages a change batch, plans an update
// strategy with the chosen planner, prints the strategy, executes it, and
// reports the measured update window.
//
// Usage:
//
//	whupdate [-sf 0.002] [-seed 7] [-p 0.10] [-insert 0]
//	         [-planner minwork|prune|dualstage|reverse|shared]
//	         [-par sequential|staged|dag] [-workers N] [-par-terms]
//	         [-share] [-share-budget-mb N] [-explain-sharing] [-mem-budget-mb N]
//	         [-skip-empty] [-timeout d] [-journal f [-resume]] [-retries N]
//	         [-v] [-cpuprofile f] [-memprofile f]
//
// -par staged executes the Section 9 barrier plan (one goroutine per stage
// expression); -par dag schedules the precedence DAG barrier-free with a
// pool of -workers goroutines (0 = GOMAXPROCS). -parallel is a deprecated
// alias for -par staged. -par-terms additionally parallelizes *inside* each
// compute expression (concurrent maintenance terms, morsel-parallel probes,
// shared build tables); it composes with -par dag under the same -workers
// budget. -share enables window-wide shared computation: operands several
// views' compute expressions read are hashed once and reused across them,
// bounded by -share-budget-mb of transient materialization (0 = 64 MiB
// default). -planner shared runs the sharing-aware Prune search: candidates
// are costed by sharing-adjusted work (multi-consumer operands and
// jointly-elected join intermediates charged once, under the byte budget)
// and the winner's sharing plan seeds the window's registry.
// -explain-sharing prints the planned election (each candidate's estimated
// size, savings and admission) before the window and each shared entry's
// observed requests/hits/bytes after it.
// -mem-budget-mb bounds the window's total transient build-state
// memory: every build-side hash table draws on one budget and builds that do
// not fit spill to disk Grace-style, probed partition-wise — results and
// measured work are identical at any budget, only bytes moved change (0 =
// unbounded). -cpuprofile/-memprofile write pprof profiles of the run so
// term-evaluation hot spots are measurable in the field.
//
// -timeout bounds the window's wall-clock time; cancellation propagates
// through the DAG scheduler and the morsel pool. -journal makes the window
// crash-safe: a pre-window checkpoint is written next to the journal
// (<journal>.snap) and begin/step/commit records frame the execution in an
// append-only checksummed file. If the journal ends mid-window (the
// previous run died), whupdate exits with code 4 until rerun with -resume,
// which restores the checkpoint and completes the journaled window,
// skipping steps the dead run finished. -retries retries transient
// failures with exponential backoff.
//
// Exit codes: 0 success, 1 data/build error, 2 usage error, 3 window
// execution or verification failure, 4 recovery needed.
//
// SIGINT/SIGTERM cancel the in-flight window: execution stops at the next
// step boundary, the staged batch is not applied, and whupdate exits 3. A
// journaled window appends an abort record on the way out, so the journal
// stays consistent — no -resume is needed after an interrupt, only after a
// real crash.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/exec"
	"repro/internal/journal"
	"repro/internal/planner"
	"repro/internal/recovery"
	"repro/internal/strategy"
	"repro/internal/tpcd"
)

// Exit codes.
const (
	exitOK       = 0
	exitData     = 1
	exitUsage    = 2
	exitWindow   = 3
	exitRecovery = 4
)

// exitErr pairs an error with the process exit code it warrants.
type exitErr struct {
	code int
	err  error
}

func (e exitErr) Error() string { return e.err.Error() }
func (e exitErr) Unwrap() error { return e.err }

func usageErr(err error) error    { return exitErr{exitUsage, err} }
func windowErr(err error) error   { return exitErr{exitWindow, err} }
func recoveryErr(err error) error { return exitErr{exitRecovery, err} }

func main() {
	sf := flag.Float64("sf", 0.002, "TPC-D scale factor")
	seed := flag.Int64("seed", 7, "generation seed")
	p := flag.Float64("p", 0.10, "delete fraction for C, O, L, S, N")
	insert := flag.Float64("insert", 0, "insert fraction for C, O, L, S")
	plannerName := flag.String("planner", "minwork", "minwork | prune | dualstage | reverse | shared")
	parallelFlag := flag.Bool("parallel", false, "deprecated alias for -par staged")
	par := flag.String("par", "", "execution mode: sequential | staged | dag")
	workers := flag.Int("workers", 0, "worker budget for -par dag and -par-terms (0 = GOMAXPROCS)")
	parTerms := flag.Bool("par-terms", false, "parallelize inside each compute expression (terms + morsels, shared builds)")
	share := flag.Bool("share", false, "share computed operands across views within the window (cross-view CSE)")
	explainSharing := flag.Bool("explain-sharing", false, "print the sharing election (planned candidates) and each entry's estimated vs observed bytes and hits")
	shareBudgetMB := flag.Int64("share-budget-mb", 0, "transient materialization budget for -share, in MiB (0 = 64 MiB default)")
	memBudgetMB := flag.Int64("mem-budget-mb", 0, "window memory budget for build-side state, in MiB; oversized builds spill to disk (0 = unbounded)")
	skipEmpty := flag.Bool("skip-empty", false, "elide compute expressions whose deltas are empty (footnote 5)")
	timeout := flag.Duration("timeout", 0, "bound the window's wall-clock time (0 = no limit)")
	journalPath := flag.String("journal", "", "journal the window to this file (crash-safe execution)")
	resume := flag.Bool("resume", false, "complete the journal's in-flight window instead of running a new one")
	retries := flag.Int("retries", 0, "retry transient window failures this many times (exponential backoff)")
	verbose := flag.Bool("v", false, "print per-expression work")
	dot := flag.Bool("dot", false, "print the expression graph (Graphviz) instead of executing")
	script := flag.Bool("script", false, "print the §5.5 update script and stored-procedure catalog instead of executing")
	cpuprofile := flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
	memprofile := flag.String("memprofile", "", "write a pprof heap profile (post-run) to this file")
	flag.Parse()

	parName := *par
	if parName == "" && *parallelFlag {
		parName = "staged"
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "whupdate:", err)
			os.Exit(exitData)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "whupdate:", err)
			os.Exit(exitData)
		}
		defer pprof.StopCPUProfile()
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(options{
		ctx: ctx,
		sf:  *sf, seed: *seed, p: *p, insert: *insert, planner: *plannerName,
		par: parName, workers: *workers, parTerms: *parTerms,
		share: *share, shareBudgetMB: *shareBudgetMB, memBudgetMB: *memBudgetMB,
		explainSharing: *explainSharing,
		skipEmpty:      *skipEmpty, verbose: *verbose,
		dot: *dot, script: *script,
		timeout: *timeout, journal: *journalPath, resume: *resume, retries: *retries,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "whupdate:", err)
		code := exitData
		var xe exitErr
		if errors.As(err, &xe) {
			code = xe.code
		}
		os.Exit(code)
	}
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "whupdate:", err)
			os.Exit(exitData)
		}
		defer f.Close()
		runtime.GC() // settle allocations so the heap profile reflects live data
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "whupdate:", err)
			os.Exit(exitData)
		}
	}
}

type options struct {
	// ctx carries process-level cancellation (SIGINT/SIGTERM); nil means
	// Background.
	ctx                  context.Context
	sf, p, insert        float64
	seed                 int64
	planner, par         string
	workers              int
	parTerms             bool
	share                bool
	explainSharing       bool
	shareBudgetMB        int64
	memBudgetMB          int64
	skipEmpty            bool
	verbose, dot, script bool
	timeout              time.Duration
	journal              string
	resume               bool
	retries              int
}

func run(o options) error {
	sf, seed, p, insert := o.sf, o.seed, o.p, o.insert
	plannerName := o.planner
	skipEmpty, verbose := o.skipEmpty, o.verbose
	mode, err := exec.ParseMode(o.par)
	if err != nil {
		return usageErr(err)
	}
	if o.resume && o.journal == "" {
		return usageErr(errors.New("-resume requires -journal"))
	}
	switch plannerName {
	case "minwork", "prune", "dualstage", "reverse", "shared":
	default:
		return usageErr(fmt.Errorf("unknown planner %q", plannerName))
	}

	// Read the journal first: an in-flight window blocks new work.
	var jlog journal.Log
	if o.journal != "" {
		jlog, err = readJournalFile(o.journal)
		if err != nil {
			return err
		}
		if recovery.NeedsRecovery(&jlog) && !o.resume {
			return recoveryErr(fmt.Errorf("journal %s ends in an in-flight window; rerun with -resume (same -sf/-seed) to complete it", o.journal))
		}
		if !recovery.NeedsRecovery(&jlog) && o.resume {
			fmt.Printf("journal %s has no in-flight window; nothing to resume\n", o.journal)
			return nil
		}
	}

	ctx := o.ctx
	if ctx == nil {
		ctx = context.Background()
	}
	if o.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, o.timeout)
		defer cancel()
	}

	start := time.Now()
	tw, err := tpcd.NewWarehouse(tpcd.Config{
		SF: sf, Seed: seed, SkipEmptyDeltas: skipEmpty,
		ParallelTerms: o.parTerms, Workers: o.workers,
		ShareComputation:  o.share,
		SharedBudgetBytes: o.shareBudgetMB << 20,
		MemoryBudgetBytes: o.memBudgetMB << 20,
	})
	if err != nil {
		return err
	}
	if o.parTerms {
		fmt.Printf("term-parallel engine on (workers=%d)\n", o.workers)
	}
	if o.share {
		fmt.Printf("window-wide shared computation on (budget=%s)\n", budgetLabel(o.shareBudgetMB))
	}
	if o.memBudgetMB > 0 {
		fmt.Printf("window memory budget %dMiB (oversized builds spill to disk)\n", o.memBudgetMB)
	}
	fmt.Printf("built TPC-D warehouse (SF=%g) in %s\n", sf, time.Since(start).Round(time.Millisecond))
	for _, v := range tw.W.ViewNames() {
		fmt.Printf("  %-9s %8d rows\n", v, tw.W.MustView(v).Cardinality())
	}

	if o.resume {
		return resumeWindow(ctx, tw, &jlog, o)
	}
	// The checkpoint must capture the pre-window state before any staging:
	// the snapshot format holds installed views only, and -resume re-stages
	// the batch from the journal's begin record.
	if o.journal != "" {
		if err := writeCheckpoint(ctx, tw.W, o.journal); err != nil {
			if ctx.Err() != nil {
				// Interrupted mid-checkpoint: the temp file was abandoned
				// before the rename, so no half-written .snap was adopted
				// and the journal was never touched.
				return windowErr(err)
			}
			return err
		}
	}

	var spec tpcd.ChangeSpec
	if insert > 0 {
		spec = tpcd.Mixed(p, insert)
	} else {
		spec = tpcd.UniformDecrease(p)
	}
	sizes, err := tw.StageChanges(spec)
	if err != nil {
		return err
	}
	fmt.Printf("staged changes:")
	for _, v := range tpcd.BaseViews {
		if n, ok := sizes[v]; ok {
			fmt.Printf(" δ%s=%d", v, n)
		}
	}
	fmt.Println()

	stats, err := exec.PlanningStats(tw.W)
	if err != nil {
		return err
	}
	var s strategy.Strategy
	switch plannerName {
	case "minwork":
		res, err := planner.MinWork(tw.Graph, stats)
		if err != nil {
			return err
		}
		fmt.Printf("MinWork ordering: %v (modified=%v)\n", res.UsedOrdering, res.Modified)
		s = res.Strategy
	case "prune":
		res, err := planner.Prune(tw.Graph, cost.DefaultModel, stats, exec.RefCounts(tw.W))
		if err != nil {
			return err
		}
		fmt.Printf("Prune examined %d orderings (%d feasible); best work estimate %.0f\n",
			res.Examined, res.Feasible, res.Work)
		s = res.Strategy
	case "dualstage":
		s = strategy.DualStageVDAG(tw.Graph)
	case "shared":
		res, err := planner.PruneShared(tw.Graph, cost.DefaultModel, stats, exec.RefCounts(tw.W),
			planner.SharedSearchOptions{Refs: exec.RefsOf(tw.W), Sharing: sharingOpts(tw.W, o, stats)})
		if err != nil {
			return err
		}
		fmt.Printf("PruneShared examined %d orderings (%d feasible); best adjusted work %.0f (raw %.0f, dualstage=%v)\n",
			res.Examined, res.Feasible, res.AdjustedWork, res.Work, res.DualStage)
		tw.W.SetPlannedSharing(exec.HintsFromPlan(res.Plan))
		s = res.Strategy
	case "reverse":
		res, err := planner.MinWork(tw.Graph, stats)
		if err != nil {
			return err
		}
		rev := res.UsedOrdering
		for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
			rev[i], rev[j] = rev[j], rev[i]
		}
		s, err = planner.ConstructEG(tw.Graph, rev).TopoSort()
		if err != nil {
			return err
		}
	default:
		return usageErr(fmt.Errorf("unknown planner %q", plannerName))
	}
	fmt.Printf("strategy: %s\n", s)
	if o.explainSharing {
		printSharingElection(planner.AnalyzeSharingOpts(s, exec.RefsOf(tw.W), sharingOpts(tw.W, o, stats)))
	}

	if o.dot {
		ord, err := planner.DesiredOrdering(tw.Graph.ViewsWithParents(), stats)
		if err != nil {
			return err
		}
		fmt.Print(planner.ConstructEG(tw.Graph, ord).DotString())
		return nil
	}
	if o.script {
		fmt.Println("-- stored procedures (defined once per VDAG):")
		fmt.Print(exec.ProcedureCatalog(tw.W))
		fmt.Println()
		fmt.Print(exec.Script(s))
		return nil
	}

	if o.journal != "" || o.retries > 0 {
		return journaledRun(ctx, tw, s, mode, plannerName, &jlog, o)
	}

	if mode != exec.ModeSequential {
		rep, err := parallelRun(ctx, tw, s, mode, o.workers)
		if err != nil {
			return windowErr(err)
		}
		fmt.Printf("%s plan (%d stages, %d workers): %s\n", mode, rep.Plan.Stages(), rep.Workers, rep.Plan)
		if verbose {
			for _, stage := range rep.Steps {
				for _, step := range stage {
					fmt.Printf("  %-28s work=%8d worker=%d %s%s\n",
						step.Expr, step.Work, step.Worker, step.Elapsed.Round(time.Microsecond),
						cacheSuffix(step))
				}
			}
		}
		fmt.Printf("update window: %s, total work %d, span work %d, critical path %d, speedup %.2f\n",
			rep.Elapsed.Round(time.Microsecond), rep.TotalWork, rep.SpanWork, rep.CriticalPathWork, rep.Speedup())
		var flat []exec.StepReport
		for _, stage := range rep.Steps {
			flat = append(flat, stage...)
		}
		printSharedSummary(flat, rep.SharedBytesPeak)
		if o.explainSharing {
			printSharedObserved(rep.SharedDetail)
		}
		printSpillSummary(flat, rep.PeakReservedBytes)
	} else {
		rep, err := exec.Execute(tw.W, s, exec.Options{Validate: true, Context: ctx})
		if err != nil {
			return windowErr(err)
		}
		if verbose {
			for _, step := range rep.Steps {
				fmt.Printf("  %-28s work=%8d terms=%2d %s%s\n",
					step.Expr, step.Work, step.Terms, step.Elapsed.Round(time.Microsecond),
					cacheSuffix(step))
			}
		}
		fmt.Printf("update window: %s\n", rep)
		printSharedSummary(rep.Steps, rep.SharedBytesPeak)
		if o.explainSharing {
			printSharedObserved(rep.SharedDetail)
		}
		printSpillSummary(rep.Steps, rep.PeakReservedBytes)
	}

	return verify(tw.W)
}

// cacheSuffix renders a step's build-cache and shared-computation accounting
// (empty when neither engine touched the step).
func cacheSuffix(step exec.StepReport) string {
	var s string
	if step.CacheHits+step.CacheMisses > 0 {
		s += fmt.Sprintf(" cache=%d/%d saved=%d",
			step.CacheHits, step.CacheHits+step.CacheMisses, step.CacheTuplesSaved)
	}
	if step.SharedHits+step.SharedMisses > 0 {
		s += fmt.Sprintf(" shared=%d/%d saved=%d",
			step.SharedHits, step.SharedHits+step.SharedMisses, step.SharedTuplesSaved)
	}
	if step.SpillCount > 0 {
		s += fmt.Sprintf(" spills=%d", step.SpillCount)
	}
	return s
}

// printSharedSummary totals the window's cross-view sharing counters; silent
// when sharing never engaged.
func printSharedSummary(steps []exec.StepReport, peak int64) {
	var hits, misses int
	var saved int64
	for _, st := range steps {
		hits += st.SharedHits
		misses += st.SharedMisses
		saved += st.SharedTuplesSaved
	}
	if hits+misses == 0 {
		return
	}
	fmt.Printf("shared computation: %d/%d builds reused, %d operand tuples saved, peak %d bytes\n",
		hits, hits+misses, saved, peak)
}

// printSpillSummary totals the window's memory-budget spill counters; silent
// when nothing spilled.
func printSpillSummary(steps []exec.StepReport, peak int64) {
	var spills int
	var out, reread int64
	for _, st := range steps {
		spills += st.SpillCount
		out += st.SpilledBytes
		reread += st.SpillReReadBytes
	}
	if spills == 0 {
		return
	}
	fmt.Printf("memory budget: %d builds spilled, %d bytes out, %d bytes re-read, peak %d bytes resident\n",
		spills, out, reread, peak)
}

// budgetLabel renders the -share-budget-mb value for logging.
func budgetLabel(mb int64) string {
	if mb <= 0 {
		return "64MiB default"
	}
	return fmt.Sprintf("%dMiB", mb)
}

// sharingOpts builds the sharing-analysis parameters whupdate uses for both
// the joint planner and -explain-sharing: the configured byte budget, the
// warehouse's widths and pair candidates, and the share tuner.
func sharingOpts(w *core.Warehouse, o options, stats cost.Stats) planner.SharingOptions {
	budget := o.shareBudgetMB << 20
	if budget <= 0 {
		budget = core.DefaultSharedBudgetBytes
	}
	return planner.SharingOptions{
		Stats:       stats,
		BudgetBytes: budget,
		Width:       exec.WidthOf(w),
		Pairs:       exec.PairsOf(w),
		Tuner:       w.ShareTuner(),
	}
}

// printSharingElection renders the planned shared set: every candidate the
// election considered, its estimated size and savings, and whether the byte
// budget admitted it.
func printSharingElection(p planner.SharingPlan) {
	fmt.Printf("sharing election: %d shared operands, %d intermediates, est saved %d tuples\n",
		p.SharedOperands, p.SharedIntermediates, p.EstimatedSavedTuples)
	for _, e := range p.Elected {
		mark := "-"
		if e.Admitted {
			mark = "+"
		}
		fmt.Printf("  %s %-24s %-12s consumers=%d est_rows=%-8d est_bytes=%-10d est_saved=%d\n",
			mark, e.Name, e.Kind, e.Consumers, e.EstRows, e.EstBytes, e.EstSavedTuples)
	}
}

// printSharedObserved renders each shared entry's observed life after the
// window — requests, hits, built rows/bytes against the planner's estimate,
// and its fate under the byte budget.
func printSharedObserved(detail []core.SharedEntryStats) {
	if len(detail) == 0 {
		return
	}
	fmt.Println("shared entries observed:")
	for _, d := range detail {
		fmt.Printf("  %-24s %-12s consumers=%d requests=%d hits=%d est_rows=%-8d rows=%-8d bytes=%-10d fate=%s\n",
			d.Name, d.Kind, d.Consumers, d.Requests, d.Hits, d.EstRows, d.Rows, d.Bytes, d.Fate)
	}
}
