// Command whupdate runs one warehouse update window over the TPC-D
// warehouse of the paper: it stages a change batch, plans an update
// strategy with the chosen planner, prints the strategy, executes it, and
// reports the measured update window.
//
// Usage:
//
//	whupdate [-sf 0.002] [-seed 7] [-p 0.10] [-insert 0]
//	         [-planner minwork|prune|dualstage|reverse]
//	         [-par sequential|staged|dag] [-workers N] [-par-terms]
//	         [-skip-empty] [-v] [-cpuprofile f] [-memprofile f]
//
// -par staged executes the Section 9 barrier plan (one goroutine per stage
// expression); -par dag schedules the precedence DAG barrier-free with a
// pool of -workers goroutines (0 = GOMAXPROCS). -parallel is a deprecated
// alias for -par staged. -par-terms additionally parallelizes *inside* each
// compute expression (concurrent maintenance terms, morsel-parallel probes,
// shared build tables); it composes with -par dag under the same -workers
// budget. -cpuprofile/-memprofile write pprof profiles of the run so
// term-evaluation hot spots are measurable in the field.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"repro/internal/cost"
	"repro/internal/exec"
	"repro/internal/planner"
	"repro/internal/strategy"
	"repro/internal/tpcd"
)

func main() {
	sf := flag.Float64("sf", 0.002, "TPC-D scale factor")
	seed := flag.Int64("seed", 7, "generation seed")
	p := flag.Float64("p", 0.10, "delete fraction for C, O, L, S, N")
	insert := flag.Float64("insert", 0, "insert fraction for C, O, L, S")
	plannerName := flag.String("planner", "minwork", "minwork | prune | dualstage | reverse")
	parallelFlag := flag.Bool("parallel", false, "deprecated alias for -par staged")
	par := flag.String("par", "", "execution mode: sequential | staged | dag")
	workers := flag.Int("workers", 0, "worker budget for -par dag and -par-terms (0 = GOMAXPROCS)")
	parTerms := flag.Bool("par-terms", false, "parallelize inside each compute expression (terms + morsels, shared builds)")
	skipEmpty := flag.Bool("skip-empty", false, "elide compute expressions whose deltas are empty (footnote 5)")
	verbose := flag.Bool("v", false, "print per-expression work")
	dot := flag.Bool("dot", false, "print the expression graph (Graphviz) instead of executing")
	script := flag.Bool("script", false, "print the §5.5 update script and stored-procedure catalog instead of executing")
	cpuprofile := flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
	memprofile := flag.String("memprofile", "", "write a pprof heap profile (post-run) to this file")
	flag.Parse()

	parName := *par
	if parName == "" && *parallelFlag {
		parName = "staged"
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "whupdate:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "whupdate:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if err := run(options{
		sf: *sf, seed: *seed, p: *p, insert: *insert, planner: *plannerName,
		par: parName, workers: *workers, parTerms: *parTerms,
		skipEmpty: *skipEmpty, verbose: *verbose,
		dot: *dot, script: *script,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "whupdate:", err)
		os.Exit(1)
	}
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "whupdate:", err)
			os.Exit(1)
		}
		defer f.Close()
		runtime.GC() // settle allocations so the heap profile reflects live data
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "whupdate:", err)
			os.Exit(1)
		}
	}
}

type options struct {
	sf, p, insert        float64
	seed                 int64
	planner, par         string
	workers              int
	parTerms             bool
	skipEmpty            bool
	verbose, dot, script bool
}

func run(o options) error {
	sf, seed, p, insert := o.sf, o.seed, o.p, o.insert
	plannerName := o.planner
	skipEmpty, verbose := o.skipEmpty, o.verbose
	mode, err := exec.ParseMode(o.par)
	if err != nil {
		return err
	}
	start := time.Now()
	tw, err := tpcd.NewWarehouse(tpcd.Config{
		SF: sf, Seed: seed, SkipEmptyDeltas: skipEmpty,
		ParallelTerms: o.parTerms, Workers: o.workers,
	})
	if err != nil {
		return err
	}
	if o.parTerms {
		fmt.Printf("term-parallel engine on (workers=%d)\n", o.workers)
	}
	fmt.Printf("built TPC-D warehouse (SF=%g) in %s\n", sf, time.Since(start).Round(time.Millisecond))
	for _, v := range tw.W.ViewNames() {
		fmt.Printf("  %-9s %8d rows\n", v, tw.W.MustView(v).Cardinality())
	}

	var spec tpcd.ChangeSpec
	if insert > 0 {
		spec = tpcd.Mixed(p, insert)
	} else {
		spec = tpcd.UniformDecrease(p)
	}
	sizes, err := tw.StageChanges(spec)
	if err != nil {
		return err
	}
	fmt.Printf("staged changes:")
	for _, v := range tpcd.BaseViews {
		if n, ok := sizes[v]; ok {
			fmt.Printf(" δ%s=%d", v, n)
		}
	}
	fmt.Println()

	stats, err := exec.PlanningStats(tw.W)
	if err != nil {
		return err
	}
	var s strategy.Strategy
	switch plannerName {
	case "minwork":
		res, err := planner.MinWork(tw.Graph, stats)
		if err != nil {
			return err
		}
		fmt.Printf("MinWork ordering: %v (modified=%v)\n", res.UsedOrdering, res.Modified)
		s = res.Strategy
	case "prune":
		res, err := planner.Prune(tw.Graph, cost.DefaultModel, stats, exec.RefCounts(tw.W))
		if err != nil {
			return err
		}
		fmt.Printf("Prune examined %d orderings (%d feasible); best work estimate %.0f\n",
			res.Examined, res.Feasible, res.Work)
		s = res.Strategy
	case "dualstage":
		s = strategy.DualStageVDAG(tw.Graph)
	case "reverse":
		res, err := planner.MinWork(tw.Graph, stats)
		if err != nil {
			return err
		}
		rev := res.UsedOrdering
		for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
			rev[i], rev[j] = rev[j], rev[i]
		}
		s, err = planner.ConstructEG(tw.Graph, rev).TopoSort()
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown planner %q", plannerName)
	}
	fmt.Printf("strategy: %s\n", s)

	if o.dot {
		ord, err := planner.DesiredOrdering(tw.Graph.ViewsWithParents(), stats)
		if err != nil {
			return err
		}
		fmt.Print(planner.ConstructEG(tw.Graph, ord).DotString())
		return nil
	}
	if o.script {
		fmt.Println("-- stored procedures (defined once per VDAG):")
		fmt.Print(exec.ProcedureCatalog(tw.W))
		fmt.Println()
		fmt.Print(exec.Script(s))
		return nil
	}

	if mode != exec.ModeSequential {
		rep, err := parallelRun(tw, s, mode, o.workers)
		if err != nil {
			return err
		}
		fmt.Printf("%s plan (%d stages, %d workers): %s\n", mode, rep.Plan.Stages(), rep.Workers, rep.Plan)
		if verbose {
			for _, stage := range rep.Steps {
				for _, step := range stage {
					fmt.Printf("  %-28s work=%8d worker=%d %s%s\n",
						step.Expr, step.Work, step.Worker, step.Elapsed.Round(time.Microsecond),
						cacheSuffix(step))
				}
			}
		}
		fmt.Printf("update window: %s, total work %d, span work %d, critical path %d, speedup %.2f\n",
			rep.Elapsed.Round(time.Microsecond), rep.TotalWork, rep.SpanWork, rep.CriticalPathWork, rep.Speedup())
	} else {
		rep, err := exec.Execute(tw.W, s, exec.Options{Validate: true})
		if err != nil {
			return err
		}
		if verbose {
			for _, step := range rep.Steps {
				fmt.Printf("  %-28s work=%8d terms=%2d %s%s\n",
					step.Expr, step.Work, step.Terms, step.Elapsed.Round(time.Microsecond),
					cacheSuffix(step))
			}
		}
		fmt.Printf("update window: %s\n", rep)
	}

	t0 := time.Now()
	if err := tw.W.VerifyAll(); err != nil {
		return fmt.Errorf("final state verification failed: %w", err)
	}
	fmt.Printf("verified against recomputation in %s\n", time.Since(t0).Round(time.Millisecond))
	return nil
}

// cacheSuffix renders a step's build-cache accounting (term-parallel engine
// only; empty otherwise).
func cacheSuffix(step exec.StepReport) string {
	if step.CacheHits+step.CacheMisses == 0 {
		return ""
	}
	return fmt.Sprintf(" cache=%d/%d saved=%d",
		step.CacheHits, step.CacheHits+step.CacheMisses, step.CacheTuplesSaved)
}
