package main

import (
	"context"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/parallel"
	"repro/internal/strategy"
	"repro/internal/tpcd"
)

// parallelRun executes the strategy concurrently: staged (Section 9 barrier
// plan) or barrier-free over the precedence DAG with a bounded worker pool.
// The context bounds the window (-timeout): cancellation propagates through
// the DAG scheduler and the morsel pool.
func parallelRun(ctx context.Context, tw *tpcd.Warehouse, s strategy.Strategy, mode exec.Mode, workers int) (parallel.Report, error) {
	return parallel.Run(tw.W, s, tw.W.Children, mode, parallel.Options{Workers: workers, Context: ctx})
}

// verify checks the final state against full recomputation; a mismatch is a
// window failure (exit 3).
func verify(w *core.Warehouse) error {
	t0 := time.Now()
	if err := w.VerifyAll(); err != nil {
		return windowErr(fmt.Errorf("final state verification failed: %w", err))
	}
	fmt.Printf("verified against recomputation in %s\n", time.Since(t0).Round(time.Millisecond))
	return nil
}
