package main

import (
	"repro/internal/exec"
	"repro/internal/parallel"
	"repro/internal/strategy"
	"repro/internal/tpcd"
)

// parallelRun executes the strategy concurrently: staged (Section 9 barrier
// plan) or barrier-free over the precedence DAG with a bounded worker pool.
func parallelRun(tw *tpcd.Warehouse, s strategy.Strategy, mode exec.Mode, workers int) (parallel.Report, error) {
	return parallel.Run(tw.W, s, tw.W.Children, mode, parallel.Options{Workers: workers})
}
