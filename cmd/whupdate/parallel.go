package main

import (
	"repro/internal/parallel"
	"repro/internal/strategy"
	"repro/internal/tpcd"
)

func parallelPlan(tw *tpcd.Warehouse, s strategy.Strategy) parallel.Plan {
	return parallel.Parallelize(s, tw.W.Children)
}

func parallelRun(tw *tpcd.Warehouse, p parallel.Plan) (parallel.Report, error) {
	return parallel.Execute(tw.W, p)
}
