package main

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/exec"
	"repro/internal/faults"
	"repro/internal/journal"
	"repro/internal/planner"
	"repro/internal/recovery"
	"repro/internal/tpcd"
)

// exitCode extracts the exit code run's error maps to.
func exitCode(err error) int {
	if err == nil {
		return exitOK
	}
	var xe exitErr
	if errors.As(err, &xe) {
		return xe.code
	}
	return exitData
}

// TestUsageExitCode: unknown planners and modes are usage errors (2).
func TestUsageExitCode(t *testing.T) {
	if got := exitCode(run(options{sf: 0.001, par: "bogus"})); got != exitUsage {
		t.Fatalf("unknown mode: exit %d, want %d", got, exitUsage)
	}
	if got := exitCode(run(options{sf: 0.001, planner: "bogus"})); got != exitUsage {
		t.Fatalf("unknown planner: exit %d, want %d", got, exitUsage)
	}
	if got := exitCode(run(options{sf: 0.001, planner: "minwork", resume: true})); got != exitUsage {
		t.Fatalf("-resume without -journal: exit %d, want %d", got, exitUsage)
	}
}

// TestDataExitCode: an impossible warehouse build is a data error (1).
func TestDataExitCode(t *testing.T) {
	if got := exitCode(run(options{sf: -1, planner: "minwork"})); got != exitData {
		t.Fatalf("bad scale factor: exit %d, want %d", got, exitData)
	}
}

// TestCrashResumeFlow: a window that dies mid-execution leaves the journal
// in-flight; whupdate then refuses new windows (exit 4) until -resume,
// which rebuilds the warehouse from the same -sf/-seed and completes the
// journaled window exactly.
func TestCrashResumeFlow(t *testing.T) {
	const sf, seed, p = 0.001, int64(7), 0.10
	path := filepath.Join(t.TempDir(), "wh.journal")

	// Simulate the dying process: build, stage, journal, crash at step 3.
	tw, err := tpcd.NewWarehouse(tpcd.Config{SF: sf, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	if err := writeCheckpoint(context.Background(), tw.W, path); err != nil {
		t.Fatal(err)
	}
	if _, err := tw.StageChanges(tpcd.UniformDecrease(p)); err != nil {
		t.Fatal(err)
	}
	stats, err := exec.PlanningStats(tw.W)
	if err != nil {
		t.Fatal(err)
	}
	res, err := planner.MinWork(tw.Graph, stats)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	inj := faults.New(1)
	inj.CrashAt("step", 3)
	_, err = recovery.Run(tw.W, res.Strategy, recovery.Options{
		Journal: journal.NewWriter(f), Seq: 1, Planner: "minwork",
		Mode: exec.ModeDAG, Workers: 4, Validate: true, Faults: inj,
	})
	f.Close()
	if err == nil {
		t.Fatal("crashed window reported success")
	}

	// A fresh whupdate run without -resume must refuse with exit 4.
	base := options{sf: sf, seed: seed, p: p, planner: "minwork", journal: path}
	if got := exitCode(run(base)); got != exitRecovery {
		t.Fatalf("in-flight journal: exit %d, want %d", got, exitRecovery)
	}

	// -resume completes the window against the rebuilt warehouse and
	// verifies the final state against recomputation.
	withResume := base
	withResume.resume = true
	if err := run(withResume); err != nil {
		t.Fatalf("resume failed: %v", err)
	}
	lg, err := readJournalFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if recovery.NeedsRecovery(&lg) || lg.CommittedCount() != 1 {
		t.Fatalf("journal after resume: committed=%d needsRecovery=%v",
			lg.CommittedCount(), recovery.NeedsRecovery(&lg))
	}

	// With the journal clean, the next journaled window runs normally.
	if err := run(base); err != nil {
		t.Fatalf("post-recovery window failed: %v", err)
	}
	lg, err = readJournalFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if lg.CommittedCount() != 2 {
		t.Fatalf("journal holds %d committed windows, want 2", lg.CommittedCount())
	}
}

// TestInterruptExitCode: a cancelled process context (what SIGINT/SIGTERM
// deliver through main's NotifyContext) aborts the window with exit 3 and
// leaves the journal consistent — an abort record closes the window, so no
// -resume is needed and the next run proceeds normally.
func TestInterruptExitCode(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wh.journal")
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // the signal already fired
	o := options{ctx: ctx, sf: 0.001, seed: 7, p: 0.10, planner: "minwork", par: "dag", journal: path}
	if got := exitCode(run(o)); got != exitWindow {
		t.Fatalf("interrupted window: exit %d, want %d", got, exitWindow)
	}
	lg, err := readJournalFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if recovery.NeedsRecovery(&lg) {
		t.Fatal("interrupted window left the journal in-flight; want an abort record")
	}
	if lg.CommittedCount() != 0 {
		t.Fatalf("interrupted window committed %d windows", lg.CommittedCount())
	}

	// The same invocation with a live context completes and commits.
	o.ctx = context.Background()
	if err := run(o); err != nil {
		t.Fatalf("post-interrupt window failed: %v", err)
	}
	if lg, err = readJournalFile(path); err != nil || lg.CommittedCount() != 1 {
		t.Fatalf("journal after rerun: committed=%d err=%v", lg.CommittedCount(), err)
	}
}

// TestCheckpointNotAdoptedOnCancel: an interrupt during the pre-window
// checkpoint abandons the temp file before the rename, so no half-written
// .snap appears — and an existing good checkpoint is left untouched.
func TestCheckpointNotAdoptedOnCancel(t *testing.T) {
	tw, err := tpcd.NewWarehouse(tpcd.Config{SF: 0.001, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	jpath := filepath.Join(t.TempDir(), "wh.journal")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := writeCheckpoint(ctx, tw.W, jpath); err == nil {
		t.Fatal("cancelled checkpoint reported success")
	}
	if _, err := os.Stat(checkpointPath(jpath)); !os.IsNotExist(err) {
		t.Fatalf("cancelled checkpoint left %s behind (stat err=%v)", checkpointPath(jpath), err)
	}
	leftovers, _ := filepath.Glob(filepath.Join(filepath.Dir(jpath), ".snap-*"))
	if len(leftovers) != 0 {
		t.Fatalf("cancelled checkpoint leaked temp files: %v", leftovers)
	}

	// A good checkpoint, then a cancelled rewrite: the good one survives.
	if err := writeCheckpoint(context.Background(), tw.W, jpath); err != nil {
		t.Fatal(err)
	}
	before, err := os.ReadFile(checkpointPath(jpath))
	if err != nil {
		t.Fatal(err)
	}
	if err := writeCheckpoint(ctx, tw.W, jpath); err == nil {
		t.Fatal("cancelled rewrite reported success")
	}
	after, err := os.ReadFile(checkpointPath(jpath))
	if err != nil {
		t.Fatal(err)
	}
	if string(before) != string(after) {
		t.Fatal("cancelled rewrite clobbered the good checkpoint")
	}
}
