package main

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/journal"
	"repro/internal/recovery"
	"repro/internal/snapshot"
	"repro/internal/strategy"
	"repro/internal/tpcd"
)

// readJournalFile parses an existing journal file; a missing file is an
// empty journal. A torn final record (crash during a journal write) is
// tolerated by ReadLog and treated as not written.
func readJournalFile(path string) (journal.Log, error) {
	in, err := os.Open(path)
	if os.IsNotExist(err) {
		return journal.Log{}, nil
	}
	if err != nil {
		return journal.Log{}, err
	}
	defer in.Close()
	lg, err := journal.ReadLog(in)
	if err != nil {
		return journal.Log{}, fmt.Errorf("reading journal %s: %w", path, err)
	}
	return lg, nil
}

// appendWriter opens the journal file for appending new records.
func appendWriter(path string) (*journal.Writer, *os.File, error) {
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, nil, err
	}
	return journal.NewWriter(f), f, nil
}

// spillDirFor names the per-window spill directory next to the journal, so
// a crashed window's spill leftovers are attributable and sweepable.
func spillDirFor(journalPath string, seq int) string {
	if journalPath == "" {
		return ""
	}
	return filepath.Join(journalPath+".spill", fmt.Sprintf("w%d", seq))
}

// sweepSpill removes the spill leftovers of crashed runs before a new or
// resumed window executes; committed and aborted windows clean up after
// themselves, so anything under the root is stale.
func sweepSpill(journalPath string) {
	os.RemoveAll(journalPath + ".spill")
}

// checkpointPath names the pre-window checkpoint written next to the
// journal. Resume restores it instead of trusting a rebuild to be
// bit-identical: regeneration from -sf/-seed reproduces every row, but
// float aggregates accumulate in hash order, so their digests drift
// between runs.
func checkpointPath(journalPath string) string { return journalPath + ".snap" }

// writeCheckpoint snapshots the installed (pre-window) state atomically
// (temp file + rename). It must run before staging — the snapshot format
// holds installed views only; the journal's begin record carries the batch.
// The write observes ctx: an interrupt mid-checkpoint abandons the temp
// file, and because the rename is the commit point, a cancelled (half-
// written) checkpoint can never be adopted as <journal>.snap.
func writeCheckpoint(ctx context.Context, w *core.Warehouse, journalPath string) error {
	path := checkpointPath(journalPath)
	tmp, err := os.CreateTemp(filepath.Dir(path), ".snap-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := snapshot.WriteContext(ctx, w, tmp); err != nil {
		tmp.Close()
		return fmt.Errorf("writing checkpoint %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// journaledRun executes the window through the recovery runner: journaled
// (when -journal is set), with transient retries (-retries), on a clone
// that is adopted only on success.
func journaledRun(ctx context.Context, tw *tpcd.Warehouse, s strategy.Strategy, mode exec.Mode, plannerName string, lg *journal.Log, o options) error {
	ropts := recovery.Options{
		Planner:  plannerName,
		Mode:     mode,
		Workers:  o.workers,
		Context:  ctx,
		Validate: true,
		Retries:  o.retries,
	}
	if o.journal != "" {
		sweepSpill(o.journal)
		jw, f, err := appendWriter(o.journal)
		if err != nil {
			return err
		}
		defer f.Close()
		ropts.Journal = jw
		ropts.Seq = lg.CommittedCount() + 1
		ropts.SpillDir = spillDirFor(o.journal, ropts.Seq)
	}
	res, err := recovery.Run(tw.W, s, ropts)
	if err != nil {
		if o.journal != "" {
			if ctx.Err() != nil {
				// Interrupt or deadline: the attempt appended an abort
				// record, so the journal is consistent — no resume needed.
				fmt.Fprintf(os.Stderr, "whupdate: window aborted (%v); journal %s is consistent, staged batch not applied\n", ctx.Err(), o.journal)
			} else {
				fmt.Fprintf(os.Stderr, "whupdate: journal %s may hold an in-flight window; a rerun with -resume will complete it\n", o.journal)
			}
		}
		return windowErr(err)
	}
	tw.W = res.Core
	printWindow(res, o)
	return verify(tw.W)
}

// resumeWindow completes the journal's in-flight window: the pre-window
// checkpoint (written next to the journal) is restored over the rebuilt
// warehouse, the journaled state digest verifies the restore, the journaled
// batch is re-staged, and the journaled strategy re-executed — skipping
// steps the crashed run already completed.
func resumeWindow(ctx context.Context, tw *tpcd.Warehouse, lg *journal.Log, o options) error {
	snap, err := os.Open(checkpointPath(o.journal))
	if err != nil {
		return recoveryErr(fmt.Errorf("resume needs the pre-window checkpoint: %w", err))
	}
	err = snapshot.Read(tw.W, snap)
	snap.Close()
	if err != nil {
		return recoveryErr(fmt.Errorf("restoring checkpoint %s: %w", checkpointPath(o.journal), err))
	}
	fmt.Printf("restored pre-window checkpoint %s\n", checkpointPath(o.journal))
	sweepSpill(o.journal)
	jw, f, err := appendWriter(o.journal)
	if err != nil {
		return err
	}
	defer f.Close()
	res, err := recovery.Recover(tw.W, lg, recovery.Options{
		Journal:  jw,
		Context:  ctx,
		Validate: true,
		SpillDir: spillDirFor(o.journal, lg.InFlight().Begin.Seq),
	})
	if err != nil {
		return recoveryErr(fmt.Errorf("resuming journal %s: %w", o.journal, err))
	}
	tw.W = res.Core
	begin := lg.InFlight().Begin
	fmt.Printf("resumed in-flight window %d (%s, %s): strategy %s\n", begin.Seq, begin.Planner, res.Mode, begin.Strategy)
	printWindow(res, o)
	return verify(tw.W)
}

// printWindow reports a recovery-runner window in the same shape the
// direct execution paths use.
func printWindow(res *recovery.Result, o options) {
	rep := res.Report
	if o.verbose {
		for _, stage := range rep.Steps {
			for _, step := range stage {
				fmt.Printf("  %-28s work=%8d worker=%d %s%s\n",
					step.Expr, step.Work, step.Worker, step.Elapsed.Round(time.Microsecond),
					cacheSuffix(step))
			}
		}
	}
	var note string
	switch {
	case res.Recomputed:
		note = ", degraded to recompute"
	case res.FellBackSequential:
		note = ", degraded to sequential"
	}
	if res.Attempts > 1 {
		note += fmt.Sprintf(", %d attempts", res.Attempts)
	}
	fmt.Printf("update window (%s%s): %s, total work %d, span work %d, critical path %d, speedup %.2f\n",
		res.Mode, note, rep.Elapsed.Round(time.Microsecond),
		rep.TotalWork, rep.SpanWork, rep.CriticalPathWork, rep.Speedup())
	var flat []exec.StepReport
	for _, stage := range rep.Steps {
		flat = append(flat, stage...)
	}
	printSpillSummary(flat, rep.PeakReservedBytes)
}
