// Command tpcdgen dumps the synthetic TPC-D data (and optionally a change
// batch) as CSV, one file per base view, for inspection or for loading into
// other systems. Change batches carry the signed __count column the library
// uses for delta CSV files.
//
// Usage:
//
//	tpcdgen [-sf 0.001] [-seed 7] [-p 0.10] [-dir out]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/csvio"
	"repro/internal/tpcd"
)

func main() {
	sf := flag.Float64("sf", 0.001, "TPC-D scale factor")
	seed := flag.Int64("seed", 7, "generation seed")
	p := flag.Float64("p", 0, "also emit <view>.delta.csv with a p-fraction decrease batch")
	dir := flag.String("dir", ".", "output directory")
	flag.Parse()

	if err := run(*sf, *seed, *p, *dir); err != nil {
		fmt.Fprintln(os.Stderr, "tpcdgen:", err)
		os.Exit(1)
	}
}

func run(sf float64, seed int64, p float64, dir string) error {
	tw, err := tpcd.NewWarehouse(tpcd.Config{SF: sf, Seed: seed})
	if err != nil {
		return err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, view := range tpcd.BaseViews {
		v := tw.W.MustView(view)
		path := filepath.Join(dir, view+".csv")
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := csvio.WriteRows(f, v.Schema(), v); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d rows)\n", path, v.Cardinality())
	}
	if p > 0 {
		if _, err := tw.StageChanges(tpcd.UniformDecrease(p)); err != nil {
			return err
		}
		for _, view := range tpcd.BaseViews {
			d, err := tw.W.DeltaOf(view)
			if err != nil {
				return err
			}
			if d.IsEmpty() {
				continue
			}
			path := filepath.Join(dir, view+".delta.csv")
			f, err := os.Create(path)
			if err != nil {
				return err
			}
			if err := csvio.WriteDelta(f, d); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Printf("wrote %s (%d changes)\n", path, d.Size())
		}
	}
	return nil
}
