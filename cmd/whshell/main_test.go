package main

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	warehouse "repro"
)

// runScript feeds commands to a fresh shell and returns the output.
func runScript(t *testing.T, script string) (string, error) {
	t.Helper()
	var out strings.Builder
	sh := &shell{w: warehouse.New(), out: &out}
	err := sh.run(strings.NewReader(script), false)
	return out.String(), err
}

func writeFile(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestShellEndToEnd(t *testing.T) {
	sales := writeFile(t, "sales.csv", "id,region,amount\n1,west,10\n2,east,5\n")
	batch := writeFile(t, "batch.csv", "id,region,amount,__count\n3,west,7,1\n")
	snap := filepath.Join(t.TempDir(), "snap.bin")
	script := `
CREATE BASE SALES (id INTEGER, region VARCHAR, amount FLOAT);
CREATE VIEW TOTALS AS SELECT region, SUM(amount) AS total FROM SALES GROUP BY region;
LOAD SALES FROM '` + sales + `';
REFRESH;
DELTA SALES FROM '` + batch + `';
SHOW STRATEGY minwork;
WINDOW;
VERIFY;
SELECT region, total FROM TOTALS ORDER BY total DESC LIMIT 1;
SHOW VIEWS;
SHOW HISTORY;
SHOW SCRIPT dualstage;
SHOW STALE;
SHOW GRAPH;
DEFER TOTALS ON;
DEFER TOTALS OFF;
SNAPSHOT SAVE '` + snap + `';
SNAPSHOT LOAD '` + snap + `';
HELP;
EXIT;
`
	out, err := runScript(t, script)
	if err != nil {
		t.Fatalf("%v\noutput:\n%s", err, out)
	}
	for _, want := range []string{
		"loaded 2 rows into SALES",
		"staged δSALES: +1 −0",
		"Comp(TOTALS, {SALES})",
		"window 1 [minwork]",
		"every view matches recomputation",
		"west | 17",
		"(1 rows)",
		"EXEC comp_TOTALS_from_SALES;",
		"SALES",
		"digraph VDAG",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestShellDigest: DIGEST prints the epoch and state digest; two shells fed
// the same script agree (the replica-comparison use case), and a window
// changes the digest.
func TestShellDigest(t *testing.T) {
	sales := writeFile(t, "sales.csv", "id,region,amount\n1,west,10\n2,east,5\n")
	batch := writeFile(t, "batch.csv", "id,region,amount,__count\n3,west,7,1\n")
	script := `
CREATE BASE SALES (id INTEGER, region VARCHAR, amount FLOAT);
CREATE VIEW TOTALS AS SELECT region, SUM(amount) AS total FROM SALES GROUP BY region;
LOAD SALES FROM '` + sales + `';
REFRESH;
DIGEST;
DELTA SALES FROM '` + batch + `';
WINDOW;
DIGEST;
EXIT;
`
	digests := func() []string {
		out, err := runScript(t, script)
		if err != nil {
			t.Fatalf("%v\noutput:\n%s", err, out)
		}
		var got []string
		for _, line := range strings.Split(out, "\n") {
			if strings.Contains(line, "state digest") {
				got = append(got, line)
			}
		}
		return got
	}
	a, b := digests(), digests()
	if len(a) != 2 || a[0] == a[1] {
		t.Fatalf("digest lines: %q", a)
	}
	if !strings.HasPrefix(a[0], "epoch 1 ") || !strings.HasPrefix(a[1], "epoch 2 ") {
		t.Fatalf("digest lines missing epochs: %q", a)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same script, different digests: %q vs %q", a[i], b[i])
		}
	}
}

func TestShellWindowModes(t *testing.T) {
	sales := writeFile(t, "sales.csv", "id,region,amount\n1,west,10\n2,east,5\n")
	b1 := writeFile(t, "b1.csv", "id,region,amount,__count\n3,west,7,1\n")
	b2 := writeFile(t, "b2.csv", "id,region,amount,__count\n4,east,2,1\n")
	b3 := writeFile(t, "b3.csv", "id,region,amount,__count\n1,west,10,-1\n")
	script := `
CREATE BASE SALES (id INTEGER, region VARCHAR, amount FLOAT);
CREATE VIEW TOTALS AS SELECT region, SUM(amount) AS total FROM SALES GROUP BY region;
LOAD SALES FROM '` + sales + `';
REFRESH;
DELTA SALES FROM '` + b1 + `';
WINDOW STAGED;
DELTA SALES FROM '` + b2 + `';
WINDOW minwork DAG 4;
DELTA SALES FROM '` + b3 + `';
WINDOW dualstage DAG;
VERIFY;
EXIT;
`
	out, err := runScript(t, script)
	if err != nil {
		t.Fatalf("%v\noutput:\n%s", err, out)
	}
	for _, want := range []string{
		"window 1 [minwork, staged",
		"window 2 [minwork, dag ×3]", // pool of 4 capped at the 3 expressions
		"window 3 [dualstage, dag",
		"critical path",
		"every view matches recomputation",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if _, err := runScript(t, "CREATE BASE B (x INTEGER);\nWINDOW minwork bogus;\n"); err == nil {
		t.Error("bad mode accepted")
	}
	if _, err := runScript(t, "CREATE BASE B (x INTEGER);\nWINDOW dag two;\n"); err == nil {
		t.Error("bad worker count accepted")
	}
}

// TestShellSharing drives SHARE ON/OFF around a window whose two sibling
// join views read the same operands, so the cross-view registry engages and
// the WINDOW line reports it.
func TestShellSharing(t *testing.T) {
	r := writeFile(t, "r.csv", "id,a\n1,10\n2,20\n3,30\n")
	s := writeFile(t, "s.csv", "id,b\n1,1\n2,2\n3,3\n")
	dr := writeFile(t, "dr.csv", "id,a,__count\n4,40,1\n")
	ds := writeFile(t, "ds.csv", "id,b,__count\n4,4,1\n")
	script := `
CREATE BASE R (id INTEGER, a INTEGER);
CREATE BASE S (id INTEGER, b INTEGER);
CREATE VIEW V1 AS SELECT r.a AS a, s.b AS b FROM R r, S s WHERE r.id = s.id;
CREATE VIEW V2 AS SELECT r.a AS g, SUM(s.b) AS t FROM R r, S s WHERE r.id = s.id GROUP BY r.a;
LOAD R FROM '` + r + `';
LOAD S FROM '` + s + `';
REFRESH;
DELTA R FROM '` + dr + `';
DELTA S FROM '` + ds + `';
SHARE ON 32;
WINDOW dualstage;
VERIFY;
SHARE OFF;
EXIT;
`
	out, err := runScript(t, script)
	if err != nil {
		t.Fatalf("%v\noutput:\n%s", err, out)
	}
	for _, want := range []string{
		"ok: window-wide shared computation on (budget=32MiB)",
		" shared=",
		"every view matches recomputation",
		"ok: window-wide shared computation off",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if _, err := runScript(t, "SHARE MAYBE;\n"); err == nil {
		t.Error("bad SHARE argument accepted")
	}
	if _, err := runScript(t, "SHARE ON -3;\n"); err == nil {
		t.Error("negative SHARE budget accepted")
	}
}

func TestShellExplainSharing(t *testing.T) {
	r := writeFile(t, "r.csv", "id,a\n1,10\n2,20\n3,30\n")
	s := writeFile(t, "s.csv", "id,b\n1,1\n2,2\n3,3\n")
	dr := writeFile(t, "dr.csv", "id,a,__count\n4,40,1\n")
	script := `
CREATE BASE R (id INTEGER, a INTEGER);
CREATE BASE S (id INTEGER, b INTEGER);
CREATE VIEW V1 AS SELECT r.a AS a, s.b AS b FROM R r, S s WHERE r.id = s.id;
CREATE VIEW V2 AS SELECT r.a AS g, SUM(s.b) AS t FROM R r, S s WHERE r.id = s.id GROUP BY r.a;
LOAD R FROM '` + r + `';
LOAD S FROM '` + s + `';
REFRESH;
DELTA R FROM '` + dr + `';
SHARE ON;
EXPLAIN SHARING;
WINDOW shared;
EXPLAIN SHARING;
VERIFY;
EXIT;
`
	out, err := runScript(t, script)
	if err != nil {
		t.Fatalf("%v\noutput:\n%s", err, out)
	}
	for _, want := range []string{
		"sharing election [shared]:",
		"window 1 [shared]",
		"observed (window 1):",
		"every view matches recomputation",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if _, err := runScript(t, "EXPLAIN NOTHING;\n"); err == nil {
		t.Error("bad EXPLAIN argument accepted")
	}
	if _, err := runScript(t, "EXPLAIN SHARING bogus;\n"); err == nil {
		t.Error("unknown planner accepted by EXPLAIN SHARING")
	}
}

func TestShellMultilineAndComments(t *testing.T) {
	out, err := runScript(t, `
-- a comment line
CREATE BASE B (x INTEGER,
               y VARCHAR);
SELECT x
FROM B;
EXIT;
`)
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(out, "(0 rows)") {
		t.Errorf("multiline select failed:\n%s", out)
	}
}

func TestShellSemicolonInString(t *testing.T) {
	out, err := runScript(t, `
CREATE BASE B (x INTEGER, s VARCHAR);
SELECT x FROM B WHERE s = 'a;b';
EXIT;
`)
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(out, "(0 rows)") {
		t.Errorf("quoted semicolon mishandled:\n%s", out)
	}
}

func TestShellErrors(t *testing.T) {
	bad := []string{
		"BOGUS;",
		"CREATE TABLE X (a INTEGER);",
		"CREATE BASE;",
		"CREATE BASE B (x NOPE);",
		"CREATE BASE B x INTEGER;",
		"LOAD X FROM 'nope.csv';",
		"LOAD X 'nope.csv';",
		"DELTA X FROM 'nope.csv';",
		"WINDOW bogus;",
		"SHOW;",
		"SHOW BOGUS;",
		"SHOW STRATEGY bogus;",
		"DEFER X;",
		"DEFER X ON;",
		"SNAPSHOT;",
		"SNAPSHOT PUSH 'f';",
		"SELECT nope FROM nowhere;",
		"CREATE VIEW V AS SELECT x FROM NOWHERE;",
	}
	for _, cmd := range bad {
		if _, err := runScript(t, cmd+"\n"); err == nil {
			t.Errorf("accepted %q", cmd)
		}
	}
}

func TestCutStatement(t *testing.T) {
	stmt, rest, found := cutStatement("a; b;")
	if !found || stmt != "a" || rest != " b;" {
		t.Errorf("cut = %q %q %v", stmt, rest, found)
	}
	if _, _, found := cutStatement("no terminator"); found {
		t.Errorf("found statement without semicolon")
	}
	stmt, _, found = cutStatement("x = 'a;b'; rest")
	if !found || stmt != "x = 'a;b'" {
		t.Errorf("string-aware cut = %q %v", stmt, found)
	}
}

// TestShellJournalRecover: the documented crash-recovery recipe — restore
// the pre-window snapshot, reattach the journal, RECOVER — completes a
// window that died mid-execution, through shell statements alone.
func TestShellJournalRecover(t *testing.T) {
	sales := writeFile(t, "sales.csv", "id,region,amount\n1,west,10\n2,east,5\n")
	batch := writeFile(t, "batch.csv", "id,region,amount,__count\n3,west,7,1\n")
	dir := t.TempDir()
	snap := filepath.Join(dir, "pre.snap")
	jpath := filepath.Join(dir, "wh.journal")

	setup := `
CREATE BASE SALES (id INTEGER, region VARCHAR, amount FLOAT);
CREATE VIEW TOTALS AS SELECT region, SUM(amount) AS total FROM SALES GROUP BY region;
LOAD SALES FROM '` + sales + `';
REFRESH;
SNAPSHOT SAVE '` + snap + `';
DELTA SALES FROM '` + batch + `';
`
	// The "crashing process": set up via shell statements, then die
	// mid-window via an injected crash fault on the same warehouse.
	var out strings.Builder
	sh := &shell{w: warehouse.New(), out: &out}
	if err := sh.run(strings.NewReader(setup), false); err != nil {
		t.Fatalf("%v\noutput:\n%s", err, out.String())
	}
	j, err := warehouse.OpenJournal(jpath)
	if err != nil {
		t.Fatal(err)
	}
	inj := warehouse.NewFaultInjector(1)
	inj.CrashAt("step", 1)
	if _, err := sh.w.RunWindowOpts(warehouse.WindowOptions{Journal: j, Faults: inj}); err == nil {
		t.Fatal("crashed window reported success")
	}
	j.Close()

	// The "restarted process": rebuild schema, restore the snapshot,
	// reattach the journal, recover, and keep working.
	recoverScript := `
CREATE BASE SALES (id INTEGER, region VARCHAR, amount FLOAT);
CREATE VIEW TOTALS AS SELECT region, SUM(amount) AS total FROM SALES GROUP BY region;
SNAPSHOT LOAD '` + snap + `';
JOURNAL ON '` + jpath + `';
JOURNAL STATUS;
RECOVER;
VERIFY;
SELECT region, total FROM TOTALS ORDER BY total DESC LIMIT 1;
DELTA SALES FROM '` + batch + `';
WINDOW DAG 2;
JOURNAL STATUS;
JOURNAL OFF;
EXIT;
`
	got, err := runScript(t, recoverScript)
	if err != nil {
		t.Fatalf("%v\noutput:\n%s", err, got)
	}
	for _, want := range []string{
		"in-flight window found — RECOVER to complete it",
		"ok: in-flight window recovered",
		"every view matches recomputation",
		"west | 17",
		"journaling on: 2 committed windows, clean",
		"ok: journaling off",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

// TestShellJournalErrors: malformed JOURNAL statements and RECOVER without
// a journal are rejected.
func TestShellJournalErrors(t *testing.T) {
	for _, cmd := range []string{
		"JOURNAL;",
		"JOURNAL PUSH;",
		"JOURNAL ON;",
		"RECOVER;",
	} {
		if _, err := runScript(t, cmd+"\n"); err == nil {
			t.Errorf("accepted %q", cmd)
		}
	}
}

// TestShellInterrupt: a fired process signal (modelled as a cancelled shell
// context) aborts the WINDOW command with the interrupted exit code; the
// warehouse keeps its pre-window state, the batch stays pending, and the
// journal ends with an abort record, not an in-flight window.
func TestShellInterrupt(t *testing.T) {
	sales := writeFile(t, "sales.csv", "id,region,amount\n1,west,10\n2,east,5\n")
	batch := writeFile(t, "batch.csv", "id,region,amount,__count\n3,west,7,1\n")
	jpath := filepath.Join(t.TempDir(), "wh.journal")
	script := `
CREATE BASE SALES (id INTEGER, region VARCHAR, amount FLOAT);
CREATE VIEW TOTALS AS SELECT region, SUM(amount) AS total FROM SALES GROUP BY region;
LOAD SALES FROM '` + sales + `';
REFRESH;
DELTA SALES FROM '` + batch + `';
JOURNAL ON '` + jpath + `';
WINDOW;
`
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // the signal already fired
	var out strings.Builder
	sh := &shell{w: warehouse.New(), out: &out, ctx: ctx}
	err := sh.run(strings.NewReader(script), false)
	if sh.j != nil {
		sh.j.Close()
	}
	if err == nil {
		t.Fatalf("interrupted WINDOW succeeded:\n%s", out.String())
	}
	if got := exitCodeFor(err); got != exitInterrupted {
		t.Fatalf("exit code %d for %v, want %d", got, err, exitInterrupted)
	}
	if got, _ := sh.w.Size("TOTALS"); got != 2 {
		t.Errorf("TOTALS size = %d after aborted window", got)
	}
	if p := sh.w.Pending(); len(p) != 1 || p[0] != "SALES" {
		t.Errorf("pending = %v after aborted window", p)
	}
	j, jerr := warehouse.OpenJournal(jpath)
	if jerr != nil {
		t.Fatal(jerr)
	}
	defer j.Close()
	if j.NeedsRecovery() {
		t.Error("interrupted window left the journal in-flight; want abort record")
	}

	// A fresh shell over the same journal runs the window to completion.
	sh2 := &shell{w: warehouse.New(), out: &out, ctx: context.Background()}
	script2 := `
CREATE BASE SALES (id INTEGER, region VARCHAR, amount FLOAT);
CREATE VIEW TOTALS AS SELECT region, SUM(amount) AS total FROM SALES GROUP BY region;
LOAD SALES FROM '` + sales + `';
REFRESH;
DELTA SALES FROM '` + batch + `';
JOURNAL ON '` + jpath + `';
WINDOW;
VERIFY;
`
	if err := sh2.run(strings.NewReader(script2), false); err != nil {
		t.Fatalf("post-interrupt window failed: %v", err)
	}
	if sh2.j != nil {
		sh2.j.Close()
	}
}
