// Command whshell is an interactive shell over the warehouse library: define
// views, load data, stage change batches, run update windows, and query —
// the full lifecycle from a prompt (or a piped script).
//
//	go run ./cmd/whshell [-f script.whs]
//
// Commands (case-insensitive keywords; SQL per the library's dialect):
//
//	CREATE BASE <name> (<col> <TYPE>, ...);     define a base view
//	CREATE VIEW <name> AS SELECT ...;           define a derived view
//	LOAD <view> FROM '<file.csv>';              bulk-load a base view
//	DELTA <view> FROM '<file.csv>';             stage a change batch (CSV, __count column)
//	REFRESH;                                    materialize derived views
//	WINDOW [planner] [STAGED|DAG [workers]];    plan + execute an update window
//	PARALLEL ON|OFF [workers];                  intra-compute term/morsel parallelism
//	SHARE ON|OFF [budget-mb];                   window-wide cross-view shared computation
//	EXPLAIN SHARING [planner];                  sharing election + observed reuse
//	MEMORY <budget-mb>|OFF;                     window memory budget (spill-to-disk builds)
//	SELECT ...;                                 ad-hoc query (ORDER BY col|ordinal, LIMIT n OFFSET m)
//	SHOW VIEWS | STRATEGY [planner] | SCRIPT [planner] | HISTORY | STALE | GRAPH | CACHE;
//	DEFER <view> ON|OFF;                        deferred maintenance policy
//	REFRESH STALE;                              recompute stale views
//	VERIFY;                                     check every view against recomputation
//	DIGEST;                                     print epoch + state digest (replica comparison)
//	SNAPSHOT SAVE '<file>' | SNAPSHOT LOAD '<file>';
//	JOURNAL ON '<file>' | OFF | STATUS;         crash-safe (journaled) windows
//	RECOVER;                                    complete the journal's in-flight window
//	HELP; EXIT;
//
// With a journal attached, WINDOW runs crash-safe: begin/step/commit
// records frame the execution, and a process death mid-window leaves an
// in-flight record. To recover after a crash: restore the pre-window state
// (SNAPSHOT LOAD), reattach the journal (JOURNAL ON), and RECOVER.
//
// SIGINT/SIGTERM cancel the in-flight window and whshell exits 3: the
// warehouse keeps its pre-window state, the staged batch stays pending, and
// a journaled window closes with an abort record, so the journal never
// needs recovery after an interrupt. Exit codes: 0 success, 1 script or
// data error, 3 window interrupted, 4 recovery needed.
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	warehouse "repro"
)

// Exit codes (documented in the package comment).
const (
	exitOK          = 0
	exitError       = 1
	exitInterrupted = 3
	exitRecovery    = 4
)

func main() {
	scriptPath := flag.String("f", "", "execute commands from a file instead of stdin")
	flag.Parse()

	in := os.Stdin
	interactive := true
	if *scriptPath != "" {
		f, err := os.Open(*scriptPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "whshell:", err)
			os.Exit(exitError)
		}
		defer f.Close()
		in = f
		interactive = false
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	sh := &shell{w: warehouse.New(), out: os.Stdout, ctx: ctx}
	err := sh.run(in, interactive)
	if sh.j != nil {
		sh.j.Close()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "whshell:", err)
		os.Exit(exitCodeFor(err))
	}
}

// exitCodeFor classifies a shell error: an interrupted or timed-out window
// is 3 (state untouched, journal consistent), a journal that needs
// recovery is 4, anything else 1.
func exitCodeFor(err error) int {
	switch {
	case err == nil:
		return exitOK
	case errors.Is(err, warehouse.ErrWindowAborted),
		errors.Is(err, context.Canceled),
		errors.Is(err, context.DeadlineExceeded):
		return exitInterrupted
	case errors.Is(err, warehouse.ErrRecoveryNeeded):
		return exitRecovery
	default:
		return exitError
	}
}

type shell struct {
	w   *warehouse.Warehouse
	j   *warehouse.Journal // nil when journaling is off
	out io.Writer
	// ctx carries process-level cancellation (SIGINT/SIGTERM) into update
	// windows; nil means Background.
	ctx context.Context
}

// run reads semicolon-terminated statements and executes them.
func (sh *shell) run(in io.Reader, interactive bool) error {
	scanner := bufio.NewScanner(in)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	prompt := func() {
		if interactive {
			if buf.Len() == 0 {
				fmt.Fprint(sh.out, "wh> ")
			} else {
				fmt.Fprint(sh.out, "...> ")
			}
		}
	}
	prompt()
	for scanner.Scan() {
		line := scanner.Text()
		if trimmed := strings.TrimSpace(line); strings.HasPrefix(trimmed, "--") {
			prompt()
			continue
		}
		buf.WriteString(line)
		buf.WriteString("\n")
		for {
			stmt, rest, found := cutStatement(buf.String())
			if !found {
				break
			}
			buf.Reset()
			buf.WriteString(rest)
			if strings.TrimSpace(stmt) == "" {
				continue
			}
			quit, err := sh.execute(strings.TrimSpace(stmt))
			if err != nil {
				fmt.Fprintln(sh.out, "error:", err)
				if !interactive {
					return err
				}
			}
			if quit {
				return nil
			}
		}
		prompt()
	}
	return scanner.Err()
}

// cutStatement splits off the first semicolon-terminated statement,
// respecting single-quoted strings.
func cutStatement(s string) (stmt, rest string, found bool) {
	inString := false
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\'':
			inString = !inString
		case ';':
			if !inString {
				return s[:i], s[i+1:], true
			}
		}
	}
	return "", s, false
}

func (sh *shell) execute(stmt string) (quit bool, err error) {
	upper := strings.ToUpper(stmt)
	words := strings.Fields(upper)
	if len(words) == 0 {
		return false, nil
	}
	switch words[0] {
	case "EXIT", "QUIT":
		return true, nil
	case "HELP":
		sh.help()
		return false, nil
	case "SELECT":
		return false, sh.query(stmt)
	case "CREATE":
		if len(words) < 2 {
			return false, fmt.Errorf("CREATE BASE or CREATE VIEW expected")
		}
		switch words[1] {
		case "BASE":
			return false, sh.createBase(stmt)
		case "VIEW":
			_, err := sh.w.DefineViewSQLStatement(stmt)
			if err == nil {
				fmt.Fprintln(sh.out, "ok")
			}
			return false, err
		default:
			return false, fmt.Errorf("CREATE %s not supported", words[1])
		}
	case "LOAD":
		return false, sh.loadOrDelta(stmt, false)
	case "DELTA":
		return false, sh.loadOrDelta(stmt, true)
	case "REFRESH":
		if len(words) > 1 && words[1] == "STALE" {
			if err := sh.w.RefreshStale(); err != nil {
				return false, err
			}
			fmt.Fprintln(sh.out, "ok")
			return false, nil
		}
		if err := sh.w.Refresh(); err != nil {
			return false, err
		}
		fmt.Fprintln(sh.out, "ok")
		return false, nil
	case "WINDOW":
		// WINDOW [planner] [SEQUENTIAL|STAGED|DAG [workers]];
		planner := warehouse.MinWorkPlanner
		mode := warehouse.ModeSequential
		workers := 0
		rest := words[1:]
		if len(rest) > 0 {
			if m, err := warehouse.ParseMode(strings.ToLower(rest[0])); err == nil {
				mode, rest = m, rest[1:]
			} else {
				planner, rest = warehouse.PlannerName(strings.ToLower(rest[0])), rest[1:]
				if len(rest) > 0 {
					m, err := warehouse.ParseMode(strings.ToLower(rest[0]))
					if err != nil {
						return false, err
					}
					mode, rest = m, rest[1:]
				}
			}
		}
		if len(rest) > 0 {
			n, err := strconv.Atoi(rest[0])
			if err != nil {
				return false, fmt.Errorf("WINDOW: bad worker count %q", rest[0])
			}
			workers = n
		}
		var win warehouse.WindowReport
		if sh.j != nil || sh.ctx != nil {
			// Robust runner: journaled when a journal is attached, and
			// cancellable either way (SIGINT/SIGTERM aborts the window).
			win, err = sh.w.RunWindowOpts(warehouse.WindowOptions{
				Planner: planner, Mode: mode, Workers: workers,
				Journal: sh.j, Context: sh.ctx,
			})
		} else {
			win, err = sh.w.RunWindowMode(planner, mode, workers)
		}
		if err != nil {
			return false, err
		}
		fmt.Fprintln(sh.out, win)
		return false, nil
	case "SHOW":
		if len(words) < 2 {
			return false, fmt.Errorf("SHOW VIEWS | STRATEGY | SCRIPT | HISTORY | STALE | GRAPH | CACHE")
		}
		return false, sh.show(words[1:])
	case "EXPLAIN":
		// EXPLAIN SHARING [planner]: plan the staged changes (default: the
		// sharing-aware planner) and print the sharing election — each
		// candidate's estimated size, savings and admission under the byte
		// budget — plus, when a window has run with sharing, the observed
		// per-entry requests/hits/bytes from the latest one.
		if len(words) < 2 || words[1] != "SHARING" {
			return false, fmt.Errorf("usage: EXPLAIN SHARING [planner]")
		}
		return false, sh.explainSharing(words[2:])
	case "DEFER":
		fields := strings.Fields(stmt)
		if len(fields) != 3 {
			return false, fmt.Errorf("usage: DEFER <view> ON|OFF")
		}
		on := strings.EqualFold(fields[2], "ON")
		if err := sh.w.SetDeferred(fields[1], on); err != nil {
			return false, err
		}
		fmt.Fprintln(sh.out, "ok")
		return false, nil
	case "PARALLEL":
		// PARALLEL ON|OFF [workers]: toggle the intra-Compute parallel
		// engine (concurrent maintenance terms, morsel-parallel probes,
		// shared build tables). The worker budget is shared with DAG
		// windows (WINDOW ... DAG [workers]), so both levels compose.
		if len(words) < 2 || (words[1] != "ON" && words[1] != "OFF") {
			return false, fmt.Errorf("usage: PARALLEL ON|OFF [workers]")
		}
		on := words[1] == "ON"
		workers := 0
		if len(words) > 2 {
			n, err := strconv.Atoi(words[2])
			if err != nil || n < 0 {
				return false, fmt.Errorf("PARALLEL: bad worker count %q", words[2])
			}
			workers = n
		}
		sh.w.SetParallelism(workers, on)
		if on {
			label := "GOMAXPROCS"
			if workers > 0 {
				label = strconv.Itoa(workers)
			}
			fmt.Fprintf(sh.out, "ok: term-parallel engine on (workers=%s)\n", label)
		} else {
			fmt.Fprintln(sh.out, "ok: term-parallel engine off")
		}
		return false, nil
	case "SHARE":
		// SHARE ON|OFF [budget-mb]: toggle window-wide shared computation
		// (operands several views' Comps read are hashed once and reused
		// across them, bounded by the transient byte budget). WINDOW
		// reports shared=hits/total and the bytes peak when it engages.
		if len(words) < 2 || (words[1] != "ON" && words[1] != "OFF") {
			return false, fmt.Errorf("usage: SHARE ON|OFF [budget-mb]")
		}
		on := words[1] == "ON"
		var budget int64
		if len(words) > 2 {
			n, err := strconv.ParseInt(words[2], 10, 64)
			if err != nil || n < 0 {
				return false, fmt.Errorf("SHARE: bad budget %q (MiB)", words[2])
			}
			budget = n << 20
		}
		sh.w.SetSharing(on, budget)
		if on {
			label := "64MiB default"
			if budget > 0 {
				label = fmt.Sprintf("%dMiB", budget>>20)
			}
			fmt.Fprintf(sh.out, "ok: window-wide shared computation on (budget=%s)\n", label)
		} else {
			fmt.Fprintln(sh.out, "ok: window-wide shared computation off")
		}
		return false, nil
	case "MEMORY":
		// MEMORY <budget-mb>|OFF: bound the window's transient build-state
		// memory. Oversized builds spill to disk Grace-style and are probed
		// partition-wise; results and measured work are identical at any
		// budget. WINDOW reports spills/bytes/peak when spilling engages.
		if len(words) != 2 {
			return false, fmt.Errorf("usage: MEMORY <budget-mb>|OFF")
		}
		if words[1] == "OFF" {
			sh.w.SetMemoryBudget(0)
			fmt.Fprintln(sh.out, "ok: window memory budget off")
			return false, nil
		}
		n, err := strconv.ParseInt(words[1], 10, 64)
		if err != nil || n <= 0 {
			return false, fmt.Errorf("MEMORY: bad budget %q (MiB, or OFF)", words[1])
		}
		sh.w.SetMemoryBudget(n << 20)
		fmt.Fprintf(sh.out, "ok: window memory budget %dMiB (oversized builds spill to disk)\n", n)
		return false, nil
	case "VERIFY":
		if err := sh.w.Verify(); err != nil {
			return false, err
		}
		fmt.Fprintln(sh.out, "ok: every view matches recomputation")
		return false, nil
	case "DIGEST":
		fmt.Fprintf(sh.out, "epoch %d  state digest %016x\n", sh.w.Epoch(), sh.w.StateDigest())
		return false, nil
	case "SNAPSHOT":
		return false, sh.snapshot(stmt)
	case "JOURNAL":
		return false, sh.journal(stmt)
	case "RECOVER":
		if sh.j == nil {
			return false, fmt.Errorf("no journal attached (JOURNAL ON '<file>')")
		}
		win, err := sh.w.Recover(sh.j)
		if err != nil {
			return false, err
		}
		fmt.Fprintln(sh.out, win)
		fmt.Fprintln(sh.out, "ok: in-flight window recovered")
		return false, nil
	default:
		return false, fmt.Errorf("unknown command %q (try HELP)", words[0])
	}
}

func (sh *shell) help() {
	fmt.Fprint(sh.out, `commands:
  CREATE BASE <name> (<col> <INTEGER|FLOAT|VARCHAR|DATE|BOOLEAN>, ...);
  CREATE VIEW <name> AS SELECT ...;
  LOAD <view> FROM '<file.csv>';        DELTA <view> FROM '<file.csv>';
  REFRESH;                              REFRESH STALE;
  WINDOW [minwork|prune|dualstage|shared] [STAGED|DAG [workers]];    VERIFY;  DIGEST;
  PARALLEL ON|OFF [workers];            intra-compute term/morsel parallelism
  SHARE ON|OFF [budget-mb];             window-wide cross-view shared computation
  EXPLAIN SHARING [planner];            sharing election + last window's observed reuse
  MEMORY <budget-mb>|OFF;               window memory budget (spill-to-disk builds)
  SELECT ... [ORDER BY col|n [ASC|DESC], ...] [LIMIT n [OFFSET m]];
  SHOW VIEWS | STRATEGY [planner] | SCRIPT [planner] | HISTORY | STALE | GRAPH | CACHE;
  DEFER <view> ON|OFF;
  SNAPSHOT SAVE '<file>';               SNAPSHOT LOAD '<file>';
  JOURNAL ON '<file>' | OFF | STATUS;   crash-safe (journaled) windows
  RECOVER;                              complete the journal's in-flight window
  HELP;  EXIT;
`)
}

// planWith runs the named facade planner.
func (sh *shell) planWith(planner warehouse.PlannerName) (warehouse.Plan, error) {
	switch planner {
	case warehouse.MinWorkPlanner:
		return sh.w.PlanMinWork()
	case warehouse.PrunePlanner:
		return sh.w.PlanPrune()
	case warehouse.DualStagePlanner:
		return sh.w.PlanDualStage()
	case warehouse.SharedPlanner:
		return sh.w.PlanShared()
	default:
		return warehouse.Plan{}, fmt.Errorf("unknown planner %q", planner)
	}
}

// explainSharing plans with the named planner (default: shared) and prints
// the sharing election, then the latest window's observed per-entry stats.
func (sh *shell) explainSharing(words []string) error {
	planner := warehouse.SharedPlanner
	if len(words) > 0 {
		planner = warehouse.PlannerName(strings.ToLower(words[0]))
	}
	plan, err := sh.planWith(planner)
	if err != nil {
		return err
	}
	a, err := sh.w.AnalyzeSharing(plan.Strategy)
	if err != nil {
		return err
	}
	fmt.Fprintf(sh.out, "sharing election [%s]: %d shared operands, %d intermediates, est saved %d tuples\n",
		planner, a.SharedOperands, a.SharedIntermediates, a.EstimatedSavedTuples)
	for _, e := range a.Elected {
		mark := "-"
		if e.Admitted {
			mark = "+"
		}
		fmt.Fprintf(sh.out, "  %s %-24s %-12s consumers=%d est_rows=%-8d est_bytes=%-10d est_saved=%d\n",
			mark, e.Name, e.Kind, e.Consumers, e.EstRows, e.EstBytes, e.EstSavedTuples)
	}
	// Observed side: the latest executed window that ran with sharing on.
	hist := sh.w.History()
	for i := len(hist) - 1; i >= 0; i-- {
		detail := hist[i].Report.SharedDetail
		if len(detail) == 0 {
			continue
		}
		fmt.Fprintf(sh.out, "observed (window %d):\n", hist[i].Seq)
		for _, d := range detail {
			fmt.Fprintf(sh.out, "  %-26s %-12s requests=%d hits=%d est_rows=%-8d rows=%-8d bytes=%-10d fate=%s\n",
				d.Name, d.Kind, d.Requests, d.Hits, d.EstRows, d.Rows, d.Bytes, d.Fate)
		}
		break
	}
	return nil
}

var kindNames = map[string]warehouse.Kind{
	"INTEGER": warehouse.KindInt, "INT": warehouse.KindInt,
	"FLOAT": warehouse.KindFloat, "DOUBLE": warehouse.KindFloat,
	"VARCHAR": warehouse.KindString, "TEXT": warehouse.KindString, "STRING": warehouse.KindString,
	"DATE": warehouse.KindDate, "BOOLEAN": warehouse.KindBool, "BOOL": warehouse.KindBool,
}

// createBase parses CREATE BASE name (col TYPE, ...).
func (sh *shell) createBase(stmt string) error {
	open := strings.Index(stmt, "(")
	closeIdx := strings.LastIndex(stmt, ")")
	if open < 0 || closeIdx < open {
		return fmt.Errorf("usage: CREATE BASE <name> (<col> <TYPE>, ...)")
	}
	head := strings.Fields(stmt[:open])
	if len(head) != 3 {
		return fmt.Errorf("usage: CREATE BASE <name> (<col> <TYPE>, ...)")
	}
	name := head[2]
	var schema warehouse.Schema
	for _, part := range strings.Split(stmt[open+1:closeIdx], ",") {
		fields := strings.Fields(part)
		if len(fields) != 2 {
			return fmt.Errorf("bad column definition %q", strings.TrimSpace(part))
		}
		kind, ok := kindNames[strings.ToUpper(fields[1])]
		if !ok {
			return fmt.Errorf("unknown type %q", fields[1])
		}
		schema = append(schema, warehouse.Column{Name: fields[0], Kind: kind})
	}
	if err := sh.w.DefineBase(name, schema); err != nil {
		return err
	}
	fmt.Fprintln(sh.out, "ok")
	return nil
}

// loadOrDelta parses LOAD/DELTA <view> FROM '<file>'.
func (sh *shell) loadOrDelta(stmt string, isDelta bool) error {
	fields := strings.Fields(stmt)
	if len(fields) != 4 || !strings.EqualFold(fields[2], "FROM") {
		return fmt.Errorf("usage: %s <view> FROM '<file.csv>'", strings.ToUpper(fields[0]))
	}
	view := fields[1]
	path := strings.Trim(fields[3], "'")
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if isDelta {
		d, err := sh.w.StageDeltaCSV(view, f)
		if err != nil {
			return err
		}
		fmt.Fprintf(sh.out, "staged δ%s: +%d −%d\n", view, d.PlusCount(), d.MinusCount())
		return nil
	}
	n, err := sh.w.LoadCSV(view, f)
	if err != nil {
		return err
	}
	fmt.Fprintf(sh.out, "loaded %d rows into %s\n", n, view)
	return nil
}

func (sh *shell) query(stmt string) error {
	rows, err := sh.w.Query(stmt)
	if err != nil {
		return err
	}
	schema, err := sh.w.QuerySchema(stmt)
	if err != nil {
		return err
	}
	fmt.Fprintln(sh.out, strings.Join(schema.Names(), " | "))
	for _, r := range rows {
		parts := make([]string, len(r))
		for i, v := range r {
			parts[i] = v.String()
		}
		fmt.Fprintln(sh.out, strings.Join(parts, " | "))
	}
	fmt.Fprintf(sh.out, "(%d rows)\n", len(rows))
	return nil
}

func (sh *shell) show(words []string) error {
	switch words[0] {
	case "VIEWS":
		for _, v := range sh.w.Views() {
			size, err := sh.w.Size(v)
			if err != nil {
				return err
			}
			schema, err := sh.w.ViewSchema(v)
			if err != nil {
				return err
			}
			fmt.Fprintf(sh.out, "%-20s %8d rows  (%s)\n", v, size, schema)
		}
	case "STRATEGY", "SCRIPT":
		planner := warehouse.MinWorkPlanner
		if len(words) > 1 {
			planner = warehouse.PlannerName(strings.ToLower(words[1]))
		}
		plan, err := sh.planWith(planner)
		if err != nil {
			return err
		}
		if words[0] == "SCRIPT" {
			fmt.Fprint(sh.out, sh.w.Script(plan.Strategy))
		} else {
			fmt.Fprintln(sh.out, plan.Strategy)
		}
	case "HISTORY":
		for _, win := range sh.w.History() {
			fmt.Fprintln(sh.out, win)
		}
	case "STALE":
		fmt.Fprintln(sh.out, sh.w.StaleViews())
	case "GRAPH":
		g, err := sh.w.Graph()
		if err != nil {
			return err
		}
		fmt.Fprint(sh.out, g.Dot())
	case "CACHE":
		st := sh.w.PlanCacheStats()
		fmt.Fprintf(sh.out, "plan cache: %d/%d entries, %d hits, %d misses, %d evictions, %d invalidations\n",
			st.Entries, st.Cap, st.Hits, st.Misses, st.Evictions, st.Invalidations)
	default:
		return fmt.Errorf("SHOW %s not supported", words[0])
	}
	return nil
}

// journal parses JOURNAL ON '<file>' | OFF | STATUS.
func (sh *shell) journal(stmt string) error {
	fields := strings.Fields(stmt)
	if len(fields) < 2 {
		return fmt.Errorf("usage: JOURNAL ON '<file>' | OFF | STATUS")
	}
	switch strings.ToUpper(fields[1]) {
	case "ON":
		if len(fields) != 3 {
			return fmt.Errorf("usage: JOURNAL ON '<file>'")
		}
		j, err := warehouse.OpenJournal(strings.Trim(fields[2], "'"))
		if err != nil {
			return err
		}
		if sh.j != nil {
			sh.j.Close()
		}
		sh.j = j
		note := ""
		if j.NeedsRecovery() {
			note = "; in-flight window found — RECOVER to complete it"
		}
		fmt.Fprintf(sh.out, "ok: journaling windows (%d committed%s)\n", j.Committed(), note)
	case "OFF":
		if sh.j != nil {
			sh.j.Close()
			sh.j = nil
		}
		fmt.Fprintln(sh.out, "ok: journaling off")
	case "STATUS":
		if sh.j == nil {
			fmt.Fprintln(sh.out, "journaling off")
			return nil
		}
		state := "clean"
		if sh.j.NeedsRecovery() {
			state = "in-flight window (RECOVER to complete it)"
		}
		fmt.Fprintf(sh.out, "journaling on: %d committed windows, %s\n", sh.j.Committed(), state)
	default:
		return fmt.Errorf("usage: JOURNAL ON '<file>' | OFF | STATUS")
	}
	return nil
}

func (sh *shell) snapshot(stmt string) error {
	fields := strings.Fields(stmt)
	if len(fields) != 3 {
		return fmt.Errorf("usage: SNAPSHOT SAVE|LOAD '<file>'")
	}
	path := strings.Trim(fields[2], "'")
	switch strings.ToUpper(fields[1]) {
	case "SAVE":
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := sh.w.SaveSnapshot(f); err != nil {
			return err
		}
	case "LOAD":
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := sh.w.LoadSnapshot(f); err != nil {
			return err
		}
	default:
		return fmt.Errorf("usage: SNAPSHOT SAVE|LOAD '<file>'")
	}
	fmt.Fprintln(sh.out, "ok")
	return nil
}
