// Command whserverd is a long-running warehouse service: it serves ad-hoc
// OLAP queries over HTTP while update windows run, demonstrating the online
// update window end to end. Queries pass through a bounded admission queue
// (full queue → immediate 503, Retry-After: 1) and each one is answered
// from a pinned epoch, so results are snapshot-isolated across window
// commits: a client sees exactly the pre- or post-window state, never a
// blend, and epochs never go backwards.
//
//	whserverd [-addr :8080] [-queue 64] [-workers N] [-query-timeout 5s]
//	          [-window-budget 0] [-window-every 0] [-mode dag] [-planner minwork]
//	          [-share] [-mem-budget-mb 0] [-pprof addr] [-stores 8] [-sales 2000]
//	          [-seed 7] [-follow leader-addr] [-fetch-interval 100ms]
//	          [-ingest] [-ingest-rate 500] [-ingest-slo 200ms]
//	          [-ingest-queue 4096] [-ingest-journal path]
//
// The served warehouse is the retail demo VDAG (SALES/STORES bases, a join
// view, an aggregate summary), populated from -seed. With -window-every set,
// the daemon stages a synthetic change batch and runs an update window on
// that period — windows whose wall-clock exceeds -window-budget abort
// cleanly and leave the serving epoch unchanged. Windows can also be
// triggered externally with POST /window.
//
// With -ingest the daemon runs the continuous-ingestion regime instead of
// the periodic driver: a synthetic producer streams sales changes at
// -ingest-rate row-changes per second into a bounded staging queue
// (-ingest-queue), and adaptive micro-batch windows keep the views fresh
// against the -ingest-slo p99 staleness target. With -ingest-journal set,
// accepted changes are journaled so a crash resumes without dropping or
// double-applying any of them. The ingester owns the window schedule, so
// -ingest excludes -window-every and -follow, and POST /window answers 409;
// GET /ingest reports the freshness snapshot. On shutdown the ingester is
// quiesced first — its queue drains through final windows — before the HTTP
// listener and query server close, so a drain never strands accepted
// changes.
//
// Without -follow the daemon is a replication leader: every update window is
// journaled and the journal is published under /replicate/ for followers.
// With -follow <leader-addr> it is a follower: it builds the identical demo
// warehouse (same -stores/-sales/-seed), continuously fetches the leader's
// journal, replays each committed window with full digest verification, and
// serves queries at its own — possibly stale — epoch. Followers are
// read-only (POST /window answers 403) and report their staleness on /lag.
//
// Endpoints: /query, /window, /epoch, /stats, /healthz (liveness),
// /readyz (readiness; flips to 503 the moment a drain begins). Leaders add
// /replicate/log and /replicate/stats; followers add /lag and
// /replicate/stats.
//
// With -pprof set, the standard net/http/pprof profiling endpoints are
// served on that address through a separate mux, so profiling traffic never
// competes with (or exposes itself to) query clients.
//
// SIGINT/SIGTERM drain gracefully: readiness goes red, in-flight queries
// finish, new ones are refused, and the process exits 0. A second signal
// kills the process immediately (NotifyContext restores default handling).
//
// Exit codes: 0 clean shutdown, 1 startup or serve error, 2 usage error.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	warehouse "repro"
	"repro/internal/ingest"
	"repro/internal/replicate"
	"repro/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	queue := flag.Int("queue", 64, "admission queue depth (full queue sheds with 503)")
	workers := flag.Int("workers", 0, "query worker pool size (0 = GOMAXPROCS)")
	queryTimeout := flag.Duration("query-timeout", 5*time.Second, "per-query deadline (queue wait + execution)")
	windowBudget := flag.Duration("window-budget", 0, "wall-clock budget per update window (0 = unbounded)")
	windowEvery := flag.Duration("window-every", 0, "stage a synthetic batch and run a window on this period (0 = off)")
	mode := flag.String("mode", "dag", "window scheduling: sequential | staged | dag")
	plannerName := flag.String("planner", "minwork", "window planner: minwork | prune | dualstage")
	share := flag.Bool("share", false, "enable window-wide shared computation for update windows")
	memBudgetMB := flag.Int64("mem-budget-mb", 0, "window memory budget in MiB; oversized builds spill to disk (0 = unbounded)")
	planCacheSize := flag.Int("plan-cache-size", 256, "prepared-plan cache capacity for the query path (0 disables)")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (separate mux; empty = off)")
	stores := flag.Int("stores", 8, "demo warehouse: number of stores")
	sales := flag.Int("sales", 2000, "demo warehouse: initial sales rows")
	seed := flag.Int64("seed", 7, "demo warehouse generation seed")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "max time to wait for in-flight work on shutdown")
	follow := flag.String("follow", "", "run as a follower of this leader (host:port or URL); serve reads at a possibly-stale epoch")
	fetchInterval := flag.Duration("fetch-interval", 100*time.Millisecond, "follower: idle poll period against the leader's journal")
	ingestOn := flag.Bool("ingest", false, "continuous ingestion: synthetic producer + adaptive micro-batch windows (excludes -window-every and -follow)")
	ingestRate := flag.Int("ingest-rate", 500, "continuous ingestion: producer rate in row-changes per second")
	ingestSLO := flag.Duration("ingest-slo", 200*time.Millisecond, "continuous ingestion: p99 staleness target steering the batch sizer")
	ingestQueue := flag.Int("ingest-queue", 4096, "continuous ingestion: staging queue bound in row-changes (backpressure past this)")
	ingestJournal := flag.String("ingest-journal", "", "continuous ingestion: crash-safe ingest journal path (empty = in-memory only)")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, config{
		addr: *addr, queue: *queue, workers: *workers,
		queryTimeout: *queryTimeout, windowBudget: *windowBudget,
		windowEvery: *windowEvery, mode: *mode, planner: *plannerName,
		share: *share, memBudgetMB: *memBudgetMB,
		planCacheSize: *planCacheSize, pprofAddr: *pprofAddr,
		stores: *stores, sales: *sales, seed: *seed, drainTimeout: *drainTimeout,
		follow: *follow, fetchInterval: *fetchInterval,
		ingest: *ingestOn, ingestRate: *ingestRate, ingestSLO: *ingestSLO,
		ingestQueue: *ingestQueue, ingestJournal: *ingestJournal,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "whserverd:", err)
		os.Exit(1)
	}
}

type config struct {
	addr                       string
	queue, workers             int
	queryTimeout, windowBudget time.Duration
	windowEvery, drainTimeout  time.Duration
	mode, planner              string
	share                      bool
	memBudgetMB                int64
	planCacheSize              int
	pprofAddr                  string
	stores, sales              int
	seed                       int64
	follow                     string // leader address; empty = lead
	fetchInterval              time.Duration
	ingest                     bool // continuous ingestion replaces the periodic driver
	ingestRate                 int  // producer row-changes per second
	ingestSLO                  time.Duration
	ingestQueue                int
	ingestJournal              string
	ready                      chan<- string      // receives the bound address (tests); may be nil
	drained                    chan<- drainReport // receives the post-drain journal state (tests); may be nil
}

// drainReport is what a finished drain leaves behind, surfaced to tests: the
// window journal's final committed count and recovery flag, plus the
// ingester's last stats snapshot.
type drainReport struct {
	committed     int
	needsRecovery bool
	ingest        ingest.Stats
}

// run builds the demo warehouse, serves it until ctx is cancelled, then
// drains and returns. Without cfg.follow the daemon leads — every window is
// journaled into an in-memory log published under /replicate/. With
// cfg.follow it follows: the same demo warehouse is rebuilt locally and
// the leader's journal is continuously fetched and replayed.
func run(ctx context.Context, cfg config) error {
	if cfg.follow != "" && cfg.windowEvery > 0 {
		return fmt.Errorf("-window-every cannot be combined with -follow: a follower replays the leader's windows")
	}
	if cfg.ingest {
		if cfg.follow != "" {
			return fmt.Errorf("-ingest cannot be combined with -follow: a follower replays the leader's windows")
		}
		if cfg.windowEvery > 0 {
			return fmt.Errorf("-ingest replaces -window-every: the ingester owns the window schedule")
		}
		if cfg.ingestRate <= 0 {
			return fmt.Errorf("-ingest-rate must be positive (got %d)", cfg.ingestRate)
		}
	}
	w, gen, err := buildDemo(cfg.stores, cfg.sales, cfg.seed)
	if err != nil {
		return err
	}
	if cfg.share {
		w.SetSharing(true, 0)
	}
	if cfg.memBudgetMB > 0 {
		w.SetMemoryBudget(cfg.memBudgetMB << 20)
		fmt.Printf("whserverd: window memory budget %dMiB (oversized builds spill to disk)\n", cfg.memBudgetMB)
	}
	w.SetPlanCache(cfg.planCacheSize)
	svCfg := serve.Config{
		QueueDepth:   cfg.queue,
		Workers:      cfg.workers,
		QueryTimeout: cfg.queryTimeout,
		WindowBudget: cfg.windowBudget,
	}
	var leader *replicate.Leader
	var follower *replicate.Follower
	if cfg.follow == "" {
		// Leader: every window — driver loop or POST /window — lands in the
		// shipped journal.
		leader = replicate.NewLeader(w)
		svCfg.WindowJournal = leader.Journal()
	}
	s := serve.New(w, svCfg)

	var ing *ingest.Ingester
	if cfg.ingest {
		// The ingester commits through the leader's shipped journal, so its
		// micro-batch windows replicate to followers like any other window.
		ing, err = ingest.New(ingest.Config{
			Warehouse:   w,
			Journal:     leader.Journal(),
			JournalPath: cfg.ingestJournal,
			SLO:         cfg.ingestSLO,
			QueueLimit:  cfg.ingestQueue,
			Planner:     warehouse.PlannerName(cfg.planner),
			Mode:        warehouse.Mode(cfg.mode),
			Workers:     cfg.workers,
		})
		if err != nil {
			return fmt.Errorf("ingester: %w", err)
		}
		s.AttachIngest(ing)
	}

	mux := http.NewServeMux()
	mux.Handle("/", s.Handler())
	if ing != nil {
		// The ingester owns the window schedule; an operator-triggered window
		// would race its journal sequencing.
		mux.HandleFunc("/window", func(rw http.ResponseWriter, r *http.Request) {
			http.Error(rw, "windows are driven by the continuous ingester; see GET /ingest", http.StatusConflict)
		})
	}
	if leader != nil {
		mux.Handle("/replicate/", leader.Handler())
	} else {
		follower = replicate.NewFollower(w, replicate.FollowerConfig{
			Leader:   leaderURL(cfg.follow),
			Interval: cfg.fetchInterval,
		})
		fh := follower.Handler()
		mux.Handle("/lag", fh)
		mux.Handle("/replicate/", fh)
		mux.HandleFunc("/window", func(rw http.ResponseWriter, r *http.Request) {
			http.Error(rw, "read-only follower: windows replicate from the leader", http.StatusForbidden)
		})
	}

	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: mux}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()
	role := "leading"
	if follower != nil {
		role = "following " + follower.LeaderAddr()
	} else if ing != nil {
		role = fmt.Sprintf("leading, ingesting %d changes/s (slo=%s)", cfg.ingestRate, cfg.ingestSLO)
	}
	planCache := "plan-cache=off"
	if cfg.planCacheSize > 0 {
		planCache = fmt.Sprintf("plan-cache=%d", cfg.planCacheSize)
	}
	fmt.Printf("whserverd: serving %d views on %s (queue=%d, epoch=%d, share=%v, %s, %s)\n",
		len(w.Views()), ln.Addr(), cfg.queue, s.Epoch(), cfg.share, planCache, role)
	if cfg.ready != nil {
		cfg.ready <- ln.Addr().String()
	}

	var ps *http.Server
	if cfg.pprofAddr != "" {
		pln, err := net.Listen("tcp", cfg.pprofAddr)
		if err != nil {
			return fmt.Errorf("pprof listener: %w", err)
		}
		ps = &http.Server{Handler: pprofMux()}
		go func() { _ = ps.Serve(pln) }()
		fmt.Printf("whserverd: pprof on %s\n", pln.Addr())
	}

	windows := make(chan error, 1)
	if cfg.windowEvery > 0 {
		go windowDriver(ctx, s, gen, cfg, windows)
	}
	if ing != nil {
		// The window loop outlives ctx on purpose: a signal stops the
		// producer, then Close drains the queue through final windows.
		go func() {
			if err := ing.Run(context.Background()); err != nil && ctx.Err() == nil {
				windows <- fmt.Errorf("ingest window loop: %w", err)
			}
		}()
		go ingestProducer(ctx, ing, w, gen, cfg.ingestRate, windows)
	}
	if follower != nil {
		go func() {
			err := follower.Run(ctx)
			if err != nil && ctx.Err() == nil {
				windows <- fmt.Errorf("replication: %w", err)
			}
		}()
	}

	var runErr error
	select {
	case <-ctx.Done():
		fmt.Println("whserverd: signal received, draining")
	case runErr = <-serveErr:
	case runErr = <-windows:
	}

	// Drain: the ingester quiesces first — its queue flushes through final
	// windows while queries still answer, so accepted changes are never
	// stranded and the drained epoch includes them. Then readiness flips red
	// (Draining) and in-flight requests finish.
	shutCtx, cancel := context.WithTimeout(context.Background(), cfg.drainTimeout)
	defer cancel()
	if ing != nil {
		if err := ing.Close(shutCtx); err != nil && runErr == nil {
			runErr = fmt.Errorf("ingest drain: %w", err)
		}
	}
	if err := hs.Shutdown(shutCtx); err != nil && runErr == nil {
		runErr = fmt.Errorf("http shutdown: %w", err)
	}
	if err := s.Close(shutCtx); err != nil && runErr == nil {
		runErr = err
	}
	if ps != nil {
		_ = ps.Shutdown(shutCtx)
	}
	if errors.Is(runErr, http.ErrServerClosed) {
		runErr = nil
	}
	st := s.Stats()
	fmt.Printf("whserverd: drained (epoch=%d, served=%d, shed=%d, windows=%d committed / %d aborted)\n",
		st.Epoch, st.Completed, st.Shed, st.WindowsCommitted, st.WindowsAborted)
	if ing != nil {
		ist := ing.Stats()
		fmt.Printf("whserverd: ingest drained (accepted=%d, shed=%d, windows=%d, p99 staleness %.1fms)\n",
			ist.Accepted, ist.Shed, ist.Windows, ist.StalenessP99MS)
		if cfg.drained != nil {
			cfg.drained <- drainReport{
				committed:     leader.Journal().Committed(),
				needsRecovery: leader.Journal().NeedsRecovery(),
				ingest:        ist,
			}
		}
	}
	return runErr
}

// ingestProducer streams synthetic sales changes into the ingester at
// roughly rate row-changes per second until ctx is cancelled. Shed changes
// (backpressure) are dropped and counted by the ingester; pacing does not
// stop. Anything harder than shedding kills the daemon via out.
func ingestProducer(ctx context.Context, ing *ingest.Ingester, w *warehouse.Warehouse, gen *demoGen, rate int, out chan<- error) {
	const per = 8 // row-changes per submission
	interval := time.Duration(float64(time.Second) * per / float64(rate))
	if interval < 100*time.Microsecond {
		interval = 100 * time.Microsecond
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
		}
		d, err := w.NewDelta("SALES")
		if err != nil {
			out <- fmt.Errorf("ingest producer: %w", err)
			return
		}
		for i := 0; i < per; i++ {
			d.Add(gen.sale(), 1)
		}
		switch err := ing.Submit("SALES", d); {
		case err == nil:
		case errors.Is(err, ingest.ErrIngestOverloaded):
			// Shed under backpressure: drop this batch and keep pacing.
		case errors.Is(err, ingest.ErrIngestClosed) || ctx.Err() != nil:
			return
		default:
			out <- fmt.Errorf("ingest producer: %w", err)
			return
		}
	}
}

// leaderURL normalizes a -follow operand: a bare host:port gets an http://
// scheme so it can be handed straight to the follower.
func leaderURL(addr string) string {
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	return strings.TrimSuffix(addr, "/")
}

// pprofMux builds a mux carrying only the net/http/pprof endpoints, kept
// separate from the query mux so profiling is opt-in and unexposed by
// default.
func pprofMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// windowDriver periodically stages a synthetic sales batch and runs an
// update window through the server. Aborted (over-budget) windows are
// logged and the staged batch carries over into the next period.
func windowDriver(ctx context.Context, s *serve.Server, gen *demoGen, cfg config, out chan<- error) {
	tick := time.NewTicker(cfg.windowEvery)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
		}
		if err := gen.stageBatch(s.Warehouse()); err != nil {
			out <- fmt.Errorf("staging batch: %w", err)
			return
		}
		rep, err := s.RunWindow(ctx, warehouse.WindowOptions{
			Planner: warehouse.PlannerName(cfg.planner),
			Mode:    warehouse.Mode(cfg.mode),
		})
		switch {
		case errors.Is(err, warehouse.ErrWindowAborted):
			if ctx.Err() != nil {
				return // shutting down
			}
			fmt.Printf("whserverd: window aborted (budget %s); batch stays staged\n", cfg.windowBudget)
		case err != nil:
			out <- fmt.Errorf("update window: %w", err)
			return
		default:
			fmt.Printf("whserverd: committed %s -> epoch %d\n", rep, s.Epoch())
		}
	}
}

// demoGen generates synthetic change batches for the demo warehouse.
type demoGen struct {
	rng    *rand.Rand
	stores int
	nextID int64
}

// buildDemo assembles the retail demo warehouse: STORES and SALES bases, a
// join view, and a regional aggregate, populated from seed.
func buildDemo(stores, sales int, seed int64) (*warehouse.Warehouse, *demoGen, error) {
	if stores < 1 || sales < 0 {
		return nil, nil, fmt.Errorf("demo warehouse needs stores >= 1 and sales >= 0 (got %d, %d)", stores, sales)
	}
	w := warehouse.New()
	w.MustDefineBase("STORES", warehouse.Schema{
		{Name: "store_id", Kind: warehouse.KindInt},
		{Name: "region", Kind: warehouse.KindString},
	})
	w.MustDefineBase("SALES", warehouse.Schema{
		{Name: "sale_id", Kind: warehouse.KindInt},
		{Name: "store_id", Kind: warehouse.KindInt},
		{Name: "amount", Kind: warehouse.KindFloat},
	})
	w.MustDefineViewSQL("SALES_BY_STORE", `
		SELECT s.sale_id, s.amount, st.region
		FROM SALES s, STORES st
		WHERE s.store_id = st.store_id`)
	w.MustDefineViewSQL("REGION_TOTALS", `
		SELECT region, SUM(amount) AS total, COUNT(*) AS n
		FROM SALES_BY_STORE GROUP BY region`)

	regions := []string{"north", "south", "east", "west"}
	rng := rand.New(rand.NewSource(seed))
	var storeRows []warehouse.Tuple
	for i := 0; i < stores; i++ {
		storeRows = append(storeRows, warehouse.Tuple{
			warehouse.Int(int64(i + 1)),
			warehouse.String(regions[i%len(regions)]),
		})
	}
	if err := w.Load("STORES", storeRows); err != nil {
		return nil, nil, err
	}
	gen := &demoGen{rng: rng, stores: stores, nextID: 1}
	var saleRows []warehouse.Tuple
	for i := 0; i < sales; i++ {
		saleRows = append(saleRows, gen.sale())
	}
	if err := w.Load("SALES", saleRows); err != nil {
		return nil, nil, err
	}
	if err := w.Refresh(); err != nil {
		return nil, nil, err
	}
	return w, gen, nil
}

// sale generates one synthetic sales row. Amounts are quarter-unit prices:
// multiples of 0.25 are exact in binary floating point, so SUM(amount) is
// exact regardless of accumulation order and independently built replicas
// digest identically (cent prices are inexact and make the aggregate's low
// bits depend on map iteration order).
func (g *demoGen) sale() warehouse.Tuple {
	id := g.nextID
	g.nextID++
	return warehouse.Tuple{
		warehouse.Int(id),
		warehouse.Int(int64(g.rng.Intn(g.stores) + 1)),
		warehouse.Float(float64(g.rng.Intn(10000)) / 4),
	}
}

// stageBatch stages ~1% of the initial sales volume as new inserts.
func (g *demoGen) stageBatch(w *warehouse.Warehouse) error {
	d, err := w.NewDelta("SALES")
	if err != nil {
		return err
	}
	n := 1 + g.rng.Intn(20)
	for i := 0; i < n; i++ {
		d.Add(g.sale(), 1)
	}
	return w.StageDelta("SALES", d)
}
