// Command whserverd is a long-running warehouse service: it serves ad-hoc
// OLAP queries over HTTP while update windows run, demonstrating the online
// update window end to end. Queries pass through a bounded admission queue
// (full queue → immediate 503, Retry-After: 1) and each one is answered
// from a pinned epoch, so results are snapshot-isolated across window
// commits: a client sees exactly the pre- or post-window state, never a
// blend, and epochs never go backwards.
//
//	whserverd [-addr :8080] [-queue 64] [-workers N] [-query-timeout 5s]
//	          [-window-budget 0] [-window-every 0] [-mode dag] [-planner minwork]
//	          [-share] [-pprof addr] [-stores 8] [-sales 2000] [-seed 7]
//
// The served warehouse is the retail demo VDAG (SALES/STORES bases, a join
// view, an aggregate summary), populated from -seed. With -window-every set,
// the daemon stages a synthetic change batch and runs an update window on
// that period — windows whose wall-clock exceeds -window-budget abort
// cleanly and leave the serving epoch unchanged. Windows can also be
// triggered externally with POST /window.
//
// Endpoints: /query, /window, /epoch, /stats, /healthz (liveness),
// /readyz (readiness; flips to 503 the moment a drain begins).
//
// With -pprof set, the standard net/http/pprof profiling endpoints are
// served on that address through a separate mux, so profiling traffic never
// competes with (or exposes itself to) query clients.
//
// SIGINT/SIGTERM drain gracefully: readiness goes red, in-flight queries
// finish, new ones are refused, and the process exits 0. A second signal
// kills the process immediately (NotifyContext restores default handling).
//
// Exit codes: 0 clean shutdown, 1 startup or serve error, 2 usage error.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	warehouse "repro"
	"repro/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	queue := flag.Int("queue", 64, "admission queue depth (full queue sheds with 503)")
	workers := flag.Int("workers", 0, "query worker pool size (0 = GOMAXPROCS)")
	queryTimeout := flag.Duration("query-timeout", 5*time.Second, "per-query deadline (queue wait + execution)")
	windowBudget := flag.Duration("window-budget", 0, "wall-clock budget per update window (0 = unbounded)")
	windowEvery := flag.Duration("window-every", 0, "stage a synthetic batch and run a window on this period (0 = off)")
	mode := flag.String("mode", "dag", "window scheduling: sequential | staged | dag")
	plannerName := flag.String("planner", "minwork", "window planner: minwork | prune | dualstage")
	share := flag.Bool("share", false, "enable window-wide shared computation for update windows")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (separate mux; empty = off)")
	stores := flag.Int("stores", 8, "demo warehouse: number of stores")
	sales := flag.Int("sales", 2000, "demo warehouse: initial sales rows")
	seed := flag.Int64("seed", 7, "demo warehouse generation seed")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "max time to wait for in-flight work on shutdown")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, config{
		addr: *addr, queue: *queue, workers: *workers,
		queryTimeout: *queryTimeout, windowBudget: *windowBudget,
		windowEvery: *windowEvery, mode: *mode, planner: *plannerName,
		share: *share, pprofAddr: *pprofAddr,
		stores: *stores, sales: *sales, seed: *seed, drainTimeout: *drainTimeout,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "whserverd:", err)
		os.Exit(1)
	}
}

type config struct {
	addr                       string
	queue, workers             int
	queryTimeout, windowBudget time.Duration
	windowEvery, drainTimeout  time.Duration
	mode, planner              string
	share                      bool
	pprofAddr                  string
	stores, sales              int
	seed                       int64
	ready                      chan<- string // receives the bound address (tests); may be nil
}

// run builds the demo warehouse, serves it until ctx is cancelled, then
// drains and returns.
func run(ctx context.Context, cfg config) error {
	w, gen, err := buildDemo(cfg.stores, cfg.sales, cfg.seed)
	if err != nil {
		return err
	}
	if cfg.share {
		w.SetSharing(true, 0)
	}
	s := serve.New(w, serve.Config{
		QueueDepth:   cfg.queue,
		Workers:      cfg.workers,
		QueryTimeout: cfg.queryTimeout,
		WindowBudget: cfg.windowBudget,
	})

	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: s.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()
	fmt.Printf("whserverd: serving %d views on %s (queue=%d, epoch=%d)\n",
		len(w.Views()), ln.Addr(), cfg.queue, s.Epoch())
	if cfg.ready != nil {
		cfg.ready <- ln.Addr().String()
	}

	var ps *http.Server
	if cfg.pprofAddr != "" {
		pln, err := net.Listen("tcp", cfg.pprofAddr)
		if err != nil {
			return fmt.Errorf("pprof listener: %w", err)
		}
		ps = &http.Server{Handler: pprofMux()}
		go func() { _ = ps.Serve(pln) }()
		fmt.Printf("whserverd: pprof on %s\n", pln.Addr())
	}

	windows := make(chan error, 1)
	if cfg.windowEvery > 0 {
		go windowDriver(ctx, s, gen, cfg, windows)
	}

	var runErr error
	select {
	case <-ctx.Done():
		fmt.Println("whserverd: signal received, draining")
	case runErr = <-serveErr:
	case runErr = <-windows:
	}

	// Drain: readiness flips red (Draining), in-flight requests finish.
	shutCtx, cancel := context.WithTimeout(context.Background(), cfg.drainTimeout)
	defer cancel()
	if err := hs.Shutdown(shutCtx); err != nil && runErr == nil {
		runErr = fmt.Errorf("http shutdown: %w", err)
	}
	if err := s.Close(shutCtx); err != nil && runErr == nil {
		runErr = err
	}
	if ps != nil {
		_ = ps.Shutdown(shutCtx)
	}
	if errors.Is(runErr, http.ErrServerClosed) {
		runErr = nil
	}
	st := s.Stats()
	fmt.Printf("whserverd: drained (epoch=%d, served=%d, shed=%d, windows=%d committed / %d aborted)\n",
		st.Epoch, st.Completed, st.Shed, st.WindowsCommitted, st.WindowsAborted)
	return runErr
}

// pprofMux builds a mux carrying only the net/http/pprof endpoints, kept
// separate from the query mux so profiling is opt-in and unexposed by
// default.
func pprofMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// windowDriver periodically stages a synthetic sales batch and runs an
// update window through the server. Aborted (over-budget) windows are
// logged and the staged batch carries over into the next period.
func windowDriver(ctx context.Context, s *serve.Server, gen *demoGen, cfg config, out chan<- error) {
	tick := time.NewTicker(cfg.windowEvery)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
		}
		if err := gen.stageBatch(s.Warehouse()); err != nil {
			out <- fmt.Errorf("staging batch: %w", err)
			return
		}
		rep, err := s.RunWindow(ctx, warehouse.WindowOptions{
			Planner: warehouse.PlannerName(cfg.planner),
			Mode:    warehouse.Mode(cfg.mode),
		})
		switch {
		case errors.Is(err, warehouse.ErrWindowAborted):
			if ctx.Err() != nil {
				return // shutting down
			}
			fmt.Printf("whserverd: window aborted (budget %s); batch stays staged\n", cfg.windowBudget)
		case err != nil:
			out <- fmt.Errorf("update window: %w", err)
			return
		default:
			fmt.Printf("whserverd: committed %s -> epoch %d\n", rep, s.Epoch())
		}
	}
}

// demoGen generates synthetic change batches for the demo warehouse.
type demoGen struct {
	rng    *rand.Rand
	stores int
	nextID int64
}

// buildDemo assembles the retail demo warehouse: STORES and SALES bases, a
// join view, and a regional aggregate, populated from seed.
func buildDemo(stores, sales int, seed int64) (*warehouse.Warehouse, *demoGen, error) {
	if stores < 1 || sales < 0 {
		return nil, nil, fmt.Errorf("demo warehouse needs stores >= 1 and sales >= 0 (got %d, %d)", stores, sales)
	}
	w := warehouse.New()
	w.MustDefineBase("STORES", warehouse.Schema{
		{Name: "store_id", Kind: warehouse.KindInt},
		{Name: "region", Kind: warehouse.KindString},
	})
	w.MustDefineBase("SALES", warehouse.Schema{
		{Name: "sale_id", Kind: warehouse.KindInt},
		{Name: "store_id", Kind: warehouse.KindInt},
		{Name: "amount", Kind: warehouse.KindFloat},
	})
	w.MustDefineViewSQL("SALES_BY_STORE", `
		SELECT s.sale_id, s.amount, st.region
		FROM SALES s, STORES st
		WHERE s.store_id = st.store_id`)
	w.MustDefineViewSQL("REGION_TOTALS", `
		SELECT region, SUM(amount) AS total, COUNT(*) AS n
		FROM SALES_BY_STORE GROUP BY region`)

	regions := []string{"north", "south", "east", "west"}
	rng := rand.New(rand.NewSource(seed))
	var storeRows []warehouse.Tuple
	for i := 0; i < stores; i++ {
		storeRows = append(storeRows, warehouse.Tuple{
			warehouse.Int(int64(i + 1)),
			warehouse.String(regions[i%len(regions)]),
		})
	}
	if err := w.Load("STORES", storeRows); err != nil {
		return nil, nil, err
	}
	gen := &demoGen{rng: rng, stores: stores, nextID: 1}
	var saleRows []warehouse.Tuple
	for i := 0; i < sales; i++ {
		saleRows = append(saleRows, gen.sale())
	}
	if err := w.Load("SALES", saleRows); err != nil {
		return nil, nil, err
	}
	if err := w.Refresh(); err != nil {
		return nil, nil, err
	}
	return w, gen, nil
}

// sale generates one synthetic sales row.
func (g *demoGen) sale() warehouse.Tuple {
	id := g.nextID
	g.nextID++
	return warehouse.Tuple{
		warehouse.Int(id),
		warehouse.Int(int64(g.rng.Intn(g.stores) + 1)),
		warehouse.Float(float64(g.rng.Intn(10000)) / 100),
	}
}

// stageBatch stages ~1% of the initial sales volume as new inserts.
func (g *demoGen) stageBatch(w *warehouse.Warehouse) error {
	d, err := w.NewDelta("SALES")
	if err != nil {
		return err
	}
	n := 1 + g.rng.Intn(20)
	for i := 0; i < n; i++ {
		d.Add(g.sale(), 1)
	}
	return w.StageDelta("SALES", d)
}
