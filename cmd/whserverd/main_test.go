package main

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// TestServerLifecycle boots the daemon on an ephemeral port with a fast
// window driver, watches queries stay answerable while epochs advance, and
// then drains it the way a signal would (context cancellation).
func TestServerLifecycle(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, config{
			addr: "127.0.0.1:0", queue: 64, workers: 2,
			queryTimeout: 2 * time.Second, windowEvery: 5 * time.Millisecond,
			mode: "dag", planner: "minwork",
			stores: 4, sales: 200, seed: 7,
			drainTimeout: 5 * time.Second, ready: ready,
		})
	}()
	var base string
	select {
	case addr := <-ready:
		base = "http://" + addr
	case err := <-done:
		t.Fatalf("daemon exited during startup: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never became ready")
	}

	for _, path := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("%s = %d", path, resp.StatusCode)
		}
	}

	query := func() (uint64, int) {
		resp, err := http.Get(base + "/query?q=SELECT+region,+SUM(amount)+AS+total+FROM+SALES_BY_STORE+GROUP+BY+region")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			return 0, resp.StatusCode
		}
		var qr struct {
			Epoch uint64  `json:"epoch"`
			Rows  [][]any `json:"rows"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
			t.Fatal(err)
		}
		if len(qr.Rows) != 4 {
			t.Fatalf("query returned %d regions", len(qr.Rows))
		}
		return qr.Epoch, 200
	}

	// Queries keep answering while the window driver commits epochs; wait
	// until at least two windows have flipped the epoch.
	deadline := time.Now().Add(10 * time.Second)
	var last uint64
	for time.Now().Before(deadline) {
		e, code := query()
		if code != 200 {
			t.Fatalf("query = %d", code)
		}
		if e < last {
			t.Fatalf("epoch went backwards: %d after %d", e, last)
		}
		last = e
		if e >= 3 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if last < 3 {
		t.Fatalf("epoch stuck at %d; window driver not committing", last)
	}

	// /stats carries the engine counters (cache + cross-view sharing).
	resp, err := http.Get(base + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	for _, key := range []string{"CacheHits", "CacheTuplesSaved", "SharedHits", "SharedTuplesSaved", "SharedBytesPeak"} {
		if _, ok := stats[key]; !ok {
			t.Errorf("/stats missing %q: %v", key, stats)
		}
	}

	// Drain as a signal would.
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("drain returned %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not drain")
	}
}

// TestPprofMux checks the opt-in profiling mux serves the stdlib pprof
// index without touching the query mux.
func TestPprofMux(t *testing.T) {
	srv := httptest.NewServer(pprofMux())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/debug/pprof/ = %d", resp.StatusCode)
	}
}
