package main

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/ingest"
)

// TestServerLifecycle boots the daemon on an ephemeral port with a fast
// window driver, watches queries stay answerable while epochs advance, and
// then drains it the way a signal would (context cancellation).
func TestServerLifecycle(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, config{
			addr: "127.0.0.1:0", queue: 64, workers: 2,
			queryTimeout: 2 * time.Second, windowEvery: 5 * time.Millisecond,
			mode: "dag", planner: "minwork",
			stores: 4, sales: 200, seed: 7,
			drainTimeout: 5 * time.Second, ready: ready,
		})
	}()
	var base string
	select {
	case addr := <-ready:
		base = "http://" + addr
	case err := <-done:
		t.Fatalf("daemon exited during startup: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never became ready")
	}

	for _, path := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("%s = %d", path, resp.StatusCode)
		}
	}

	query := func() (uint64, int) {
		resp, err := http.Get(base + "/query?q=SELECT+region,+SUM(amount)+AS+total+FROM+SALES_BY_STORE+GROUP+BY+region")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			return 0, resp.StatusCode
		}
		var qr struct {
			Epoch uint64  `json:"epoch"`
			Rows  [][]any `json:"rows"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
			t.Fatal(err)
		}
		if len(qr.Rows) != 4 {
			t.Fatalf("query returned %d regions", len(qr.Rows))
		}
		return qr.Epoch, 200
	}

	// Queries keep answering while the window driver commits epochs; wait
	// until at least two windows have flipped the epoch.
	deadline := time.Now().Add(10 * time.Second)
	var last uint64
	for time.Now().Before(deadline) {
		e, code := query()
		if code != 200 {
			t.Fatalf("query = %d", code)
		}
		if e < last {
			t.Fatalf("epoch went backwards: %d after %d", e, last)
		}
		last = e
		if e >= 3 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if last < 3 {
		t.Fatalf("epoch stuck at %d; window driver not committing", last)
	}

	// /stats carries the engine counters (cache + cross-view sharing).
	resp, err := http.Get(base + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	for _, key := range []string{"CacheHits", "CacheTuplesSaved", "SharedHits", "SharedTuplesSaved", "SharedBytesPeak"} {
		if _, ok := stats[key]; !ok {
			t.Errorf("/stats missing %q: %v", key, stats)
		}
	}

	// Drain as a signal would.
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("drain returned %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not drain")
	}
}

// TestReplicaSmoke boots a leader with a fast window driver and two
// followers pointed at it, waits for both followers to drain their lag to
// zero at an advanced epoch, checks follower queries answer and followers
// refuse writes, then drains all three daemons.
func TestReplicaSmoke(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	boot := func(follow string, windowEvery time.Duration) (string, chan error) {
		ready := make(chan string, 1)
		done := make(chan error, 1)
		go func() {
			done <- run(ctx, config{
				addr: "127.0.0.1:0", queue: 64, workers: 2,
				queryTimeout: 2 * time.Second, windowEvery: windowEvery,
				mode: "dag", planner: "minwork",
				stores: 4, sales: 200, seed: 7,
				// Generous drain: under -race the whole module's test
				// binaries share this machine, and three daemons drain
				// at once.
				drainTimeout: 30 * time.Second, ready: ready,
				follow: follow, fetchInterval: 5 * time.Millisecond,
			})
		}()
		select {
		case addr := <-ready:
			return "http://" + addr, done
		case err := <-done:
			t.Fatalf("daemon (follow=%q) exited during startup: %v", follow, err)
		case <-time.After(30 * time.Second):
			t.Fatalf("daemon (follow=%q) never became ready", follow)
		}
		panic("unreachable")
	}

	leaderBase, leaderDone := boot("", 5*time.Millisecond)
	f1Base, f1Done := boot(leaderBase, 0)
	f2Base, f2Done := boot(leaderBase, 0)

	getJSON := func(url string, into any) int {
		t.Helper()
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode == 200 {
			if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
				t.Fatalf("%s: %v", url, err)
			}
		}
		return resp.StatusCode
	}

	// Both followers must catch up to an advanced epoch with zero lag.
	// Epoch 4 = three replayed windows, which the stats check below relies
	// on; waiting for epoch 3 only guarantees two.
	type lag struct {
		Epoch     uint64 `json:"epoch"`
		Leader    uint64 `json:"leader_epoch"`
		LagEpochs uint64 `json:"lag_epochs"`
		LagBytes  int64  `json:"lag_bytes"`
	}
	deadline := time.Now().Add(60 * time.Second)
	for _, base := range []string{f1Base, f2Base} {
		for {
			var l lag
			if code := getJSON(base+"/lag", &l); code != 200 {
				t.Fatalf("%s/lag = %d", base, code)
			}
			if l.Epoch >= 4 && l.LagEpochs == 0 && l.LagBytes == 0 {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("%s never caught up: %+v", base, l)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	// Follower answers queries at its replicated epoch and refuses writes.
	var qr struct {
		Epoch uint64  `json:"epoch"`
		Rows  [][]any `json:"rows"`
	}
	if code := getJSON(f1Base+"/query?q=SELECT+region,+SUM(amount)+AS+total+FROM+SALES_BY_STORE+GROUP+BY+region", &qr); code != 200 {
		t.Fatalf("follower query = %d", code)
	}
	if len(qr.Rows) != 4 || qr.Epoch < 3 {
		t.Fatalf("follower query: %d rows at epoch %d", len(qr.Rows), qr.Epoch)
	}
	resp, err := http.Post(f1Base+"/window", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("follower POST /window = %d, want 403", resp.StatusCode)
	}

	// Replication stats are live on both sides.
	var fs struct {
		Replayed int64  `json:"replayed_windows"`
		Shipped  int64  `json:"shipped_records"`
		Dead     string `json:"dead,omitempty"`
	}
	if code := getJSON(f2Base+"/replicate/stats", &fs); code != 200 {
		t.Fatalf("follower stats = %d", code)
	}
	if fs.Replayed < 3 || fs.Shipped == 0 || fs.Dead != "" {
		t.Fatalf("follower stats: %+v", fs)
	}
	var ls struct {
		Chunks int64 `json:"chunks_served"`
	}
	if code := getJSON(leaderBase+"/replicate/stats", &ls); code != 200 {
		t.Fatalf("leader stats = %d", code)
	}
	if ls.Chunks == 0 {
		t.Fatalf("leader served no chunks: %+v", ls)
	}

	cancel()
	for _, done := range []chan error{f1Done, f2Done, leaderDone} {
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("drain returned %v", err)
			}
		case <-time.After(60 * time.Second):
			t.Fatal("daemon did not drain")
		}
	}
}

// TestIngestDrainUnderLoad boots the daemon in continuous-ingestion mode,
// waits for micro-batch windows to commit while queries keep answering, then
// drains it mid-stream — the producer is still pushing when the signal
// lands. The drain must quiesce the ingester first: the window journal ends
// with no recovery needed and the ingest journal reconciles with every
// accepted change installed (nothing stranded, nothing torn).
func TestIngestDrainUnderLoad(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ijPath := filepath.Join(t.TempDir(), "ingest.journal")
	ready := make(chan string, 1)
	drained := make(chan drainReport, 1)
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, config{
			addr: "127.0.0.1:0", queue: 64, workers: 2,
			queryTimeout: 2 * time.Second,
			mode: "dag", planner: "minwork",
			stores: 4, sales: 200, seed: 7,
			drainTimeout: 30 * time.Second,
			ingest: true, ingestRate: 4000,
			ingestSLO: 100 * time.Millisecond, ingestQueue: 1024,
			ingestJournal: ijPath,
			ready:         ready, drained: drained,
		})
	}()
	var base string
	select {
	case addr := <-ready:
		base = "http://" + addr
	case err := <-done:
		t.Fatalf("daemon exited during startup: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never became ready")
	}

	// The ingester owns the window schedule; operator windows are refused.
	resp, err := http.Post(base+"/window", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("POST /window while ingesting = %d, want 409", resp.StatusCode)
	}

	// Queries answer while ingested windows commit; wait for a few windows.
	var st ingest.Stats
	deadline := time.Now().Add(15 * time.Second)
	for {
		resp, err := http.Get(base + "/ingest")
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != 200 {
			t.Fatalf("/ingest = %d", resp.StatusCode)
		}
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		qr, err := http.Get(base + "/query?q=SELECT+region,+SUM(amount)+AS+total+FROM+SALES_BY_STORE+GROUP+BY+region")
		if err != nil {
			t.Fatal(err)
		}
		qr.Body.Close()
		if qr.StatusCode != 200 {
			t.Fatalf("query during ingestion = %d", qr.StatusCode)
		}
		if st.Windows >= 3 && st.Accepted > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("ingester never committed 3 windows: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Drain mid-stream, as a signal would.
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("drain returned %v", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("daemon did not drain")
	}
	rep := <-drained
	if rep.needsRecovery {
		t.Fatal("window journal needs recovery after a graceful drain")
	}
	if rep.ingest.Err != "" {
		t.Fatalf("ingester died during the run: %s", rep.ingest.Err)
	}
	if rep.ingest.Accepted < st.Accepted {
		t.Fatalf("accepted count went backwards across the drain (%d < %d)",
			rep.ingest.Accepted, st.Accepted)
	}
	sum, err := ingest.InspectJournal(ijPath, rep.committed)
	if err != nil {
		t.Fatalf("ingest journal did not parse: %v", err)
	}
	if sum.Torn {
		t.Fatalf("ingest journal ends torn after a graceful drain: %+v", sum)
	}
	if sum.Requeued != 0 {
		t.Fatalf("drain stranded %d accepted entr(ies): %+v", sum.Requeued, sum)
	}
	if sum.Accepts != int(rep.ingest.AcceptedBatches) {
		t.Fatalf("journal holds %d accepts, ingester accepted %d batches", sum.Accepts, rep.ingest.AcceptedBatches)
	}
}

// TestPprofMux checks the opt-in profiling mux serves the stdlib pprof
// index without touching the query mux.
func TestPprofMux(t *testing.T) {
	srv := httptest.NewServer(pprofMux())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/debug/pprof/ = %d", resp.StatusCode)
	}
}
