package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.70GHz
BenchmarkSharedComp/off/staged-4         	       1	11985230005 ns/op	         0 tuples_saved
BenchmarkSharedComp/on/staged-4          	       1	1814129360 ns/op	   3140250 tuples_saved
BenchmarkComputeTermParallel/seq-4       	       2	 500000000 ns/op	    123 B/op	      4 allocs/op
PASS
ok  	repro	27.086s
`

func TestParse(t *testing.T) {
	sum, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if sum.GOOS != "linux" || sum.GOARCH != "amd64" || sum.Pkg != "repro" {
		t.Errorf("header: %+v", sum)
	}
	if len(sum.Benchmarks) != 3 {
		t.Fatalf("benchmarks = %d", len(sum.Benchmarks))
	}
	b := sum.Benchmarks[1]
	if b.Name != "BenchmarkSharedComp/on/staged" {
		t.Errorf("name = %q (GOMAXPROCS suffix must be stripped)", b.Name)
	}
	if b.Iterations != 1 || b.NsPerOp != 1814129360 {
		t.Errorf("parsed %+v", b)
	}
	if b.Metrics["tuples_saved"] != 3140250 {
		t.Errorf("metrics = %v", b.Metrics)
	}
	if m := sum.Benchmarks[2].Metrics; m["B/op"] != 123 || m["allocs/op"] != 4 {
		t.Errorf("benchmem metrics = %v", m)
	}
}

func TestCompare(t *testing.T) {
	base := Summary{Benchmarks: []Benchmark{
		{Name: "A", NsPerOp: 100e6}, // will regress 3×
		{Name: "B", NsPerOp: 100e6}, // within tolerance
		{Name: "C", NsPerOp: 1000},  // below the 1ms gate: never fails
		{Name: "D", NsPerOp: 100e6}, // missing from current: never fails
	}}
	cur := Summary{Benchmarks: []Benchmark{
		{Name: "A", NsPerOp: 300e6},
		{Name: "B", NsPerOp: 199e6},
		{Name: "C", NsPerOp: 1e9},
		{Name: "E", NsPerOp: 5e6}, // new: never fails
	}}
	var out strings.Builder
	if got := compare(&out, base, cur, 2.0, 1e6); got != 1 {
		t.Fatalf("failures = %d, want 1 (only A)\n%s", got, out.String())
	}
	for _, want := range []string{"REGRESSION", "below gate threshold", "missing from this run", "new benchmark"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("report lacks %q:\n%s", want, out.String())
		}
	}
}
