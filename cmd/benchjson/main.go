// Command benchjson converts `go test -bench` text output into a stable
// JSON summary, and checks a fresh run against a committed baseline.
//
// Usage:
//
//	go test . -run '^$' -bench ... > bench.txt
//	benchjson -out BENCH_5.json bench.txt       # write the summary
//	benchjson -baseline BENCH_5.json bench.txt  # tolerant regression check
//
// The regression check is deliberately loose: machines differ, CI runners
// jitter, and one-iteration runs are noisy, so it fails only when a
// benchmark present in both runs got more than -factor (default 2×) slower,
// and it ignores benchmarks whose baseline is below -min-ns (default 1ms —
// too fast to time reliably at -benchtime 1x). New and removed benchmarks
// are reported but never fail the check.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one `Benchmark...` result line.
type Benchmark struct {
	// Name has the -GOMAXPROCS suffix stripped so runs from machines with
	// different core counts stay comparable.
	Name       string  `json:"name"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	// Metrics holds every other reported unit (work, tuples_saved, B/op…).
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Summary is the JSON document: the run's environment plus its benchmarks.
type Summary struct {
	GOOS       string      `json:"goos,omitempty"`
	GOARCH     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	out := flag.String("out", "", "write the parsed summary as JSON to this file")
	baseline := flag.String("baseline", "", "compare the parsed run against this JSON baseline")
	factor := flag.Float64("factor", 2.0, "fail the baseline check when ns/op grew by more than this factor")
	minNs := flag.Float64("min-ns", 1e6, "ignore baseline entries faster than this (too noisy to gate on)")
	flag.Parse()
	if (*out == "") == (*baseline == "") {
		fmt.Fprintln(os.Stderr, "benchjson: exactly one of -out or -baseline is required")
		os.Exit(2)
	}

	in := io.Reader(os.Stdin)
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	sum, err := parse(in)
	if err != nil {
		fatal(err)
	}
	if len(sum.Benchmarks) == 0 {
		fatal(fmt.Errorf("no benchmark lines found in input"))
	}

	if *out != "" {
		buf, err := json.MarshalIndent(sum, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*out, append(buf, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("benchjson: wrote %d benchmarks to %s\n", len(sum.Benchmarks), *out)
		return
	}

	base, err := readSummary(*baseline)
	if err != nil {
		fatal(err)
	}
	if failures := compare(os.Stdout, base, sum, *factor, *minNs); failures > 0 {
		fmt.Fprintf(os.Stderr, "benchjson: %d benchmark(s) regressed more than %.1f× vs %s\n",
			failures, *factor, *baseline)
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}

func readSummary(path string) (Summary, error) {
	var s Summary
	buf, err := os.ReadFile(path)
	if err != nil {
		return s, err
	}
	return s, json.Unmarshal(buf, &s)
}

// trimProcs strips the trailing -GOMAXPROCS from a benchmark name.
func trimProcs(name string) string {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// parse reads `go test -bench` text output.
func parse(r io.Reader) (Summary, error) {
	var sum Summary
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		for field, dst := range map[string]*string{
			"goos:": &sum.GOOS, "goarch:": &sum.GOARCH, "pkg:": &sum.Pkg, "cpu:": &sum.CPU,
		} {
			if strings.HasPrefix(line, field) {
				*dst = strings.TrimSpace(strings.TrimPrefix(line, field))
			}
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		f := strings.Fields(line)
		// Name, iterations, then (value, unit) pairs.
		if len(f) < 4 || len(f)%2 != 0 {
			continue
		}
		iters, err := strconv.ParseInt(f[1], 10, 64)
		if err != nil {
			continue
		}
		b := Benchmark{Name: trimProcs(f[0]), Iterations: iters}
		for i := 2; i+1 < len(f); i += 2 {
			v, err := strconv.ParseFloat(f[i], 64)
			if err != nil {
				return sum, fmt.Errorf("line %q: bad value %q", line, f[i])
			}
			if f[i+1] == "ns/op" {
				b.NsPerOp = v
				continue
			}
			if b.Metrics == nil {
				b.Metrics = make(map[string]float64)
			}
			b.Metrics[f[i+1]] = v
		}
		sum.Benchmarks = append(sum.Benchmarks, b)
	}
	return sum, sc.Err()
}

// compare prints one line per baseline benchmark and returns the number of
// regressions beyond factor. Timings gate only above the minNs noise floor;
// allocs/op (when both runs report it) gates unconditionally — allocation
// counts are deterministic, so even sub-threshold benchmarks catch a
// regression, and a 0-alloc baseline fails on any allocation at all.
func compare(w io.Writer, base, cur Summary, factor, minNs float64) int {
	current := make(map[string]Benchmark, len(cur.Benchmarks))
	for _, b := range cur.Benchmarks {
		current[b.Name] = b
	}
	failures := 0
	for _, b := range base.Benchmarks {
		got, ok := current[b.Name]
		if !ok {
			fmt.Fprintf(w, "  %-50s missing from this run (skipped)\n", b.Name)
			continue
		}
		if baseAllocs, ok := b.Metrics["allocs/op"]; ok {
			if gotAllocs, ok := got.Metrics["allocs/op"]; ok && gotAllocs > baseAllocs*factor {
				fmt.Fprintf(w, "  %-50s allocs %.0f -> %.0f REGRESSION\n", b.Name, baseAllocs, gotAllocs)
				failures++
			}
		}
		if b.NsPerOp < minNs {
			fmt.Fprintf(w, "  %-50s baseline %.0fns below gate threshold (skipped)\n", b.Name, b.NsPerOp)
			continue
		}
		ratio := got.NsPerOp / b.NsPerOp
		verdict := "ok"
		if ratio > factor {
			verdict = "REGRESSION"
			failures++
		}
		fmt.Fprintf(w, "  %-50s %.2fx (%.0fns -> %.0fns) %s\n", b.Name, ratio, b.NsPerOp, got.NsPerOp, verdict)
	}
	for _, b := range cur.Benchmarks {
		found := false
		for _, o := range base.Benchmarks {
			if o.Name == b.Name {
				found = true
				break
			}
		}
		if !found {
			fmt.Fprintf(w, "  %-50s new benchmark (not in baseline)\n", b.Name)
		}
	}
	return failures
}
