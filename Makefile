GO ?= go

.PHONY: all build test race fuzz fuzz-smoke bench bench-smoke bench-json bench-check staticcheck serve-smoke replica-smoke spill-smoke soak-smoke

all: build test

build:
	$(GO) build ./...

# -shuffle=on randomizes test order within each package: tests that lean on
# sibling-test side effects fail here before they flake anywhere else.
test:
	$(GO) test -shuffle=on ./...

# Static analysis beyond go vet, when the tool is installed (CI installs
# it; locally this degrades to a notice instead of a hard dependency).
staticcheck:
	@command -v staticcheck >/dev/null 2>&1 \
		&& staticcheck ./... \
		|| echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"

# End-to-end smoke of the query daemon: boot whserverd with a fast window
# driver, then hit readiness, run queries against flipping epochs, commit a
# window over HTTP, and drain — the TestServerLifecycle path plus the HTTP
# handler tests.
serve-smoke:
	$(GO) test ./cmd/whserverd/ ./internal/serve/ -count=1

# End-to-end smoke of replication: a whserverd leader with a fast window
# driver plus two -follow daemons whose lag drains to zero at an advanced
# epoch, and the replicate package's ship/replay, torn-stream, and failover
# tests. (The full differential harness runs in the race tier.)
replica-smoke:
	$(GO) test ./cmd/whserverd/ -run 'TestReplicaSmoke' -count=1
	$(GO) test ./internal/replicate/ -count=1

# End-to-end smoke of bounded-memory execution: the budget's accounting, the
# CRC-framed spill file format (corruption, truncation, injected I/O and
# ENOSPC faults), the core spill + partition-odometer path, the recovery
# ladder under persistent spill faults, and the facade's window counters,
# stale-spill-dir sweep, and bounded-vs-unbounded differential legs.
spill-smoke:
	$(GO) test ./internal/memory/ ./internal/storage/ -count=1
	$(GO) test ./internal/core/ -run 'TestSpilled|TestBounded|TestSharedEntrySpills|TestSpillENOSPC|TestCrashMidSpill|TestAttachMemory' -count=1
	$(GO) test ./internal/recovery/ -run 'TestSpillFault' -count=1
	$(GO) test . -run 'TestWindowCountersReportSpilling|TestCrashMidSpillSweptOnReopen|TestBoundedMemoryDifferential' -count=1

# Fault-injected soak of the continuous-ingestion path, under the race
# detector: a paced producer drives micro-batch windows while probabilistic
# crash and transient faults fire at every journaled point; each crash is
# recovered in place and the final state must match a sequential oracle,
# with no goroutine leaks and no staleness runaway. The -soak flag sets the
# wall-clock duration (the package default is 1.5s for plain `make test`).
soak-smoke:
	$(GO) test -race ./internal/ingest/ -run 'TestSoakIngest' -count=1 -soak 25s

# The concurrency tier: the full suite under the race detector. The
# parallel, exec and core packages are the ones exercising goroutines
# (barrier-staged and DAG-scheduled executors against shared warehouse
# state); running everything keeps the tier honest as coverage grows.
race:
	$(GO) test -race ./...

# Quick race pass over just the concurrent packages.
race-fast:
	$(GO) test -race ./internal/parallel/... ./internal/exec/... ./internal/core/...

# Extended fuzzing of the conflict-order invariants (the seed corpus runs
# under plain `make test` already).
fuzz:
	$(GO) test ./internal/parallel/ -run '^$$' -fuzz FuzzParallelizeRespectsConflicts -fuzztime 30s

# Short fuzz pass over the durability surfaces — the journal reader and the
# snapshot reader both consume arbitrary on-disk bytes and must reject
# corruption without panicking or mutating state — plus the SQL front end's
# old-vs-new differential oracle. Cheap enough for CI.
fuzz-smoke:
	$(GO) test ./internal/journal/ -run '^$$' -fuzz FuzzJournal -fuzztime 10s
	$(GO) test ./internal/snapshot/ -run '^$$' -fuzz FuzzSnapshotRead -fuzztime 10s
	$(GO) test ./internal/sqlparse/ -run '^$$' -fuzz FuzzParseDifferential -fuzztime 10s

bench:
	$(GO) test . -run '^$$' -bench . -benchtime 1x

# One-iteration pass over the Compute benchmarks with allocation stats:
# cheap enough for CI, and catches probe-path allocation regressions.
bench-smoke:
	$(GO) test . -run '^$$' -bench 'BenchmarkCompute' -benchtime 1x -benchmem

# The key performance benchmarks as a machine-readable baseline: the
# window-level schedulers and the two sharing layers (intra-Compute build
# cache, window-wide cross-view registry) at one iteration, plus the SQL
# front end and prepared-plan cache microbenchmarks (BenchmarkTokenize,
# BenchmarkParseQuery, BenchmarkQueryCold/Cached/EndToEnd) at 1000
# iterations with allocation stats, plus the spill-path benchmarks
# (BenchmarkSpillBuild, BenchmarkBoundedWindow) in internal/core, plus the
# continuous-ingestion steady-state bench (BenchmarkIngestSteadyState:
# Submit + micro-batch drain, reported per change) at 1000 iterations.
# bench-json refreshes the committed BENCH_10.json; bench-check reruns the
# same benchmarks and fails on a >2x ns/op slowdown (sub-millisecond
# baselines are ignored as noise — except allocs/op, which is deterministic
# and gates unconditionally, so the 0-alloc tokenizer baseline fails on any
# allocation at all).
BENCH_JSON           ?= BENCH_10.json
BENCH_PATTERN        ?= BenchmarkSharedPlan|BenchmarkSharedComp|BenchmarkComputeTermParallel|BenchmarkParallelStaged|BenchmarkParallelDAG
BENCH_CORE_PATTERN   ?= BenchmarkSpillBuild|BenchmarkBoundedWindow
BENCH_PARSE_PATTERN  ?= BenchmarkTokenize|BenchmarkParseQuery|BenchmarkQueryCold|BenchmarkQueryCached|BenchmarkQueryEndToEnd
BENCH_INGEST_PATTERN ?= BenchmarkIngestSteadyState

bench-json:
	$(GO) test . -run '^$$' -bench '$(BENCH_PATTERN)' -benchtime 1x > bench-out.txt
	$(GO) test ./internal/core -run '^$$' -bench '$(BENCH_CORE_PATTERN)' -benchtime 1x >> bench-out.txt
	$(GO) test . ./internal/sqlparse -run '^$$' -bench '$(BENCH_PARSE_PATTERN)' -benchtime 1000x -benchmem >> bench-out.txt
	$(GO) test ./internal/ingest -run '^$$' -bench '$(BENCH_INGEST_PATTERN)' -benchtime 1000x -benchmem >> bench-out.txt
	$(GO) run ./cmd/benchjson -out $(BENCH_JSON) bench-out.txt
	@rm -f bench-out.txt

bench-check:
	$(GO) test . -run '^$$' -bench '$(BENCH_PATTERN)' -benchtime 1x > bench-out.txt
	$(GO) test ./internal/core -run '^$$' -bench '$(BENCH_CORE_PATTERN)' -benchtime 1x >> bench-out.txt
	$(GO) test . ./internal/sqlparse -run '^$$' -bench '$(BENCH_PARSE_PATTERN)' -benchtime 1000x -benchmem >> bench-out.txt
	$(GO) test ./internal/ingest -run '^$$' -bench '$(BENCH_INGEST_PATTERN)' -benchtime 1000x -benchmem >> bench-out.txt
	$(GO) run ./cmd/benchjson -baseline $(BENCH_JSON) bench-out.txt
	@rm -f bench-out.txt
