package warehouse

import (
	"context"
	"errors"
	"path/filepath"
	"testing"
	"time"
)

// rowsOf snapshots a view's rows for comparison.
func rowsOf(t *testing.T, w *Warehouse, view string) []CountedRow {
	t.Helper()
	rows, err := w.Rows(view)
	if err != nil {
		t.Fatal(err)
	}
	return rows
}

func sameRows(a, b []CountedRow) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Count != b[i].Count || a[i].Tuple.String() != b[i].Tuple.String() {
			return false
		}
	}
	return true
}

// TestRunWindowOptsJournaled: a journaled window commits, matches the
// legacy path's result, and the journal accumulates committed windows.
func TestRunWindowOptsJournaled(t *testing.T) {
	ref := newRetail(t)
	stageSale(t, ref)
	if _, err := ref.RunWindow(MinWorkPlanner); err != nil {
		t.Fatal(err)
	}

	w := newRetail(t)
	stageSale(t, w)
	j, err := OpenJournal(filepath.Join(t.TempDir(), "wh.journal"))
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	rep, err := w.RunWindowOpts(WindowOptions{Journal: j, Mode: ModeDAG, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Attempts != 1 || rep.Recovered || rep.Recomputed {
		t.Fatalf("window report flags: %+v", rep)
	}
	if j.Committed() != 1 || j.NeedsRecovery() {
		t.Fatalf("journal: committed=%d needsRecovery=%v", j.Committed(), j.NeedsRecovery())
	}
	if err := w.Verify(); err != nil {
		t.Fatal(err)
	}
	for _, v := range ref.Views() {
		if !sameRows(rowsOf(t, ref, v), rowsOf(t, w, v)) {
			t.Fatalf("%s differs from the legacy window's result", v)
		}
	}
	// A second window through the same journal.
	stageSale2(t, w)
	if _, err := w.RunWindowOpts(WindowOptions{Journal: j}); err != nil {
		t.Fatal(err)
	}
	if j.Committed() != 2 {
		t.Fatalf("journal committed = %d after two windows", j.Committed())
	}
	if len(w.History()) != 2 {
		t.Fatalf("history has %d windows", len(w.History()))
	}
}

// stageSale2 stages a second, different change batch.
func stageSale2(t *testing.T, w *Warehouse) {
	t.Helper()
	d, err := w.NewDelta("SALES")
	if err != nil {
		t.Fatal(err)
	}
	d.Add(Tuple{Int(104), Int(1), Float(7)}, 1)
	if err := w.StageDelta("SALES", d); err != nil {
		t.Fatal(err)
	}
}

// TestRunWindowOptsDegradation: persistent step failures degrade to the
// recompute fallback, which still produces the correct state.
func TestRunWindowOptsDegradation(t *testing.T) {
	ref := newRetail(t)
	stageSale(t, ref)
	if _, err := ref.RunWindow(MinWorkPlanner); err != nil {
		t.Fatal(err)
	}

	w := newRetail(t)
	stageSale(t, w)
	inj := NewFaultInjector(3)
	inj.SetProbability("step", 1)
	rep, err := w.RunWindowOpts(WindowOptions{
		Mode: ModeDAG, Workers: 4, Faults: inj,
		Retries: 1, FallbackSequential: true, FallbackRecompute: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Recomputed || rep.Mode != ModeRecompute {
		t.Fatalf("expected recompute fallback, got %+v", rep)
	}
	if err := w.Verify(); err != nil {
		t.Fatal(err)
	}
	for _, v := range ref.Views() {
		if !sameRows(rowsOf(t, ref, v), rowsOf(t, w, v)) {
			t.Fatalf("%s differs after recompute fallback", v)
		}
	}
}

// TestCrashAndRecoverThroughFacade: a crash-class fault mid-window leaves
// the journal in-flight and the warehouse untouched; a fresh process
// (rebuilt warehouse + reopened journal) recovers to the exact state an
// uninterrupted window produces.
func TestCrashAndRecoverThroughFacade(t *testing.T) {
	ref := newRetail(t)
	stageSale(t, ref)
	if _, err := ref.RunWindow(MinWorkPlanner); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "wh.journal")
	w := newRetail(t)
	stageSale(t, w)
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	inj := NewFaultInjector(1)
	inj.CrashAt("step", 2)
	_, err = w.RunWindowOpts(WindowOptions{Journal: j, Faults: inj})
	if err == nil {
		t.Fatal("crashed window reported success")
	}
	// The in-memory warehouse is untouched: the batch is still pending.
	if len(w.Pending()) == 0 {
		t.Fatal("crashed window consumed the staged batch")
	}
	// The handle refuses further work and in-handle recovery.
	if !j.NeedsRecovery() {
		t.Fatal("crashed handle does not report recovery needed")
	}
	if _, err := w.RunWindowOpts(WindowOptions{Journal: j}); !errors.Is(err, ErrRecoveryNeeded) {
		t.Fatalf("window after crash: %v", err)
	}
	if _, err := w.Recover(j); err == nil {
		t.Fatal("stale handle recovery accepted")
	}
	j.Close()

	// "Restart": reopen the journal, rebuild the pre-window warehouse.
	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if !j2.NeedsRecovery() {
		t.Fatal("reopened journal does not show the in-flight window")
	}
	w2 := newRetail(t)
	rep, err := w2.Recover(j2)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Recovered {
		t.Fatalf("recovered window not flagged: %+v", rep)
	}
	if err := w2.Verify(); err != nil {
		t.Fatal(err)
	}
	for _, v := range ref.Views() {
		if !sameRows(rowsOf(t, ref, v), rowsOf(t, w2, v)) {
			t.Fatalf("%s differs from the uninterrupted window's result", v)
		}
	}
	if j2.Committed() != 1 || j2.NeedsRecovery() {
		t.Fatalf("journal after recovery: committed=%d needsRecovery=%v", j2.Committed(), j2.NeedsRecovery())
	}
	// Recovered warehouse keeps working: run the next window through the
	// same journal.
	stageSale2(t, w2)
	if _, err := w2.RunWindowOpts(WindowOptions{Journal: j2, Mode: ModeDAG}); err != nil {
		t.Fatal(err)
	}
	if j2.Committed() != 2 {
		t.Fatalf("journal committed = %d after post-recovery window", j2.Committed())
	}
}

// TestRunWindowOptsTimeout: an already-expired deadline stops the window
// before it mutates anything.
func TestRunWindowOptsTimeout(t *testing.T) {
	w := newRetail(t)
	stageSale(t, w)
	_, err := w.RunWindowOpts(WindowOptions{Mode: ModeDAG, Timeout: time.Nanosecond})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", err)
	}
	if len(w.Pending()) == 0 {
		t.Fatal("timed-out window consumed the staged batch")
	}
	// Without the timeout the same window succeeds.
	if _, err := w.RunWindowOpts(WindowOptions{Mode: ModeDAG}); err != nil {
		t.Fatal(err)
	}
	if err := w.Verify(); err != nil {
		t.Fatal(err)
	}
}
