package warehouse

// Bounded-memory differential harness: for seeded random warehouses and
// change batches, the same window is run unbounded, at a 1 MiB budget, and
// at a 1-byte budget (everything spills). All three must produce identical
// bags in every view and identical installed-delta digests step for step —
// spilling changes bytes moved, never results. The starved leg must actually
// spill somewhere across the run, or the harness proved nothing.

import (
	"fmt"
	"math/rand"
	"testing"
)

// instDigests keys each step's installed-delta digest by its expression.
func instDigests(rep WindowReport) map[string]uint64 {
	out := make(map[string]uint64)
	for _, step := range rep.Report.Steps {
		if step.Skipped {
			continue
		}
		out[fmt.Sprintf("%v", step.Expr)] = step.Digest
	}
	return out
}

func digestsMatch(a, b map[string]uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

func TestBoundedMemoryDifferential(t *testing.T) {
	trials := 6
	if testing.Short() {
		trials = 2
	}
	const windowsPer = 5
	modes := []Mode{ModeSequential, ModeStaged, ModeDAG}
	legs := []struct {
		name   string
		budget int64
	}{
		{"1MiB", 1 << 20},
		{"starved", 1}, // the "0 budget" leg: nothing fits, every build spills
	}

	// Seed base chosen so the generated catalogs include join views in most
	// trials (including both -short trials): join-free catalogs build no
	// hash state and cannot spill, and a harness that never spills proves
	// nothing. The two join-free seeds in range stay as controls.
	var starvedSpills int
	for trial := 0; trial < trials; trial++ {
		catalogSeed := int64(99105 + trial)
		rng := rand.New(rand.NewSource(catalogSeed * 13))
		ref := buildOnline(t, catalogSeed)

		for win := 0; win < windowsPer; win++ {
			stageOnline(t, ref, rng)
			mode := modes[win%len(modes)]
			opts := WindowOptions{Mode: mode, Workers: 1 + rng.Intn(4)}

			// Budgeted legs run the identical window on clones of the staged
			// warehouse, then the unbounded reference commits.
			clones := make([]*Warehouse, len(legs))
			for i, leg := range legs {
				clones[i] = ref.Clone()
				clones[i].SetMemoryBudget(leg.budget)
			}
			refRep, err := ref.RunWindowOpts(opts)
			if err != nil {
				t.Fatalf("trial %d win %d: unbounded window: %v", trial, win, err)
			}
			refBags, _ := snapshotBags(t, ref)
			refDigests := instDigests(refRep)

			for i, leg := range legs {
				rep, err := clones[i].RunWindowOpts(opts)
				if err != nil {
					t.Fatalf("trial %d win %d leg %s: %v", trial, win, leg.name, err)
				}
				bags, _ := snapshotBags(t, clones[i])
				if !bagsEqual(bags, refBags) {
					t.Fatalf("trial %d win %d leg %s: bags diverge from unbounded run", trial, win, leg.name)
				}
				if got := instDigests(rep); !digestsMatch(got, refDigests) {
					t.Fatalf("trial %d win %d leg %s: installed-delta digests diverge:\n got %v\nwant %v",
						trial, win, leg.name, got, refDigests)
				}
				if err := clones[i].Verify(); err != nil {
					t.Fatalf("trial %d win %d leg %s: %v", trial, win, leg.name, err)
				}
				if leg.budget == 1 {
					starvedSpills += rep.Counters().SpillCount
				}
			}
		}
	}
	if starvedSpills == 0 {
		t.Fatal("the starved leg never spilled: the harness exercised nothing")
	}
}

// TestJointSharingDifferential is the sharing-on leg of the differential
// harness: for seeded random warehouses, every window is planned by the
// sharing-aware search (SharedPlanner) at a tiny 1 MiB transient budget and
// run twice from identical clones — sharing off and sharing on. Both legs
// execute the same jointly-optimized strategy, so their installed-delta
// digests and OperandTuples work must be identical and their bags must match
// the reference warehouse's committed state: sharing elides physical scans,
// never results or the metric. All four scheduling shapes are exercised —
// sequential, staged, DAG, and term-parallel — and the sharing leg must
// actually register hits somewhere across the run.
func TestJointSharingDifferential(t *testing.T) {
	trials := 4
	if testing.Short() {
		trials = 2
	}
	cfgs := []struct {
		name    string
		mode    Mode
		workers int
		terms   bool
	}{
		{"sequential", ModeSequential, 0, false},
		{"staged", ModeStaged, 2, false},
		{"dag", ModeDAG, 3, false},
		{"termparallel", ModeSequential, 2, true},
	}
	const budget = 1 << 20

	var sharedHits int
	var tuplesSaved int64
	for trial := 0; trial < trials; trial++ {
		catalogSeed := int64(99105 + trial)
		rng := rand.New(rand.NewSource(catalogSeed * 29))
		ref := buildOnline(t, catalogSeed)

		for win, cfg := range cfgs {
			stageOnline(t, ref, rng)
			opts := WindowOptions{Planner: SharedPlanner, Mode: cfg.mode, Workers: cfg.workers}

			legOff, legOn := ref.Clone(), ref.Clone()
			legOff.SetSharing(false, budget)
			legOn.SetSharing(true, budget)
			if cfg.terms {
				legOff.SetParallelism(cfg.workers, true)
				legOn.SetParallelism(cfg.workers, true)
			}
			offRep, err := legOff.RunWindowOpts(opts)
			if err != nil {
				t.Fatalf("trial %d win %d %s: share-off leg: %v", trial, win, cfg.name, err)
			}
			onRep, err := legOn.RunWindowOpts(opts)
			if err != nil {
				t.Fatalf("trial %d win %d %s: share-on leg: %v", trial, win, cfg.name, err)
			}

			// Identical strategy, identical modeled work: OperandTuples counts
			// an operand once per term whether or not its build was shared.
			if off, on := offRep.Report.TotalWork(), onRep.Report.TotalWork(); off != on {
				t.Fatalf("trial %d win %d %s: work moved under sharing: %d vs %d",
					trial, win, cfg.name, on, off)
			}
			if got, want := instDigests(onRep), instDigests(offRep); !digestsMatch(got, want) {
				t.Fatalf("trial %d win %d %s: installed-delta digests diverge:\n got %v\nwant %v",
					trial, win, cfg.name, got, want)
			}

			// The reference commits the same batch through the default planner;
			// every leg's final state must match it bag for bag.
			if _, err := ref.RunWindowOpts(WindowOptions{Mode: cfg.mode, Workers: cfg.workers}); err != nil {
				t.Fatalf("trial %d win %d %s: reference window: %v", trial, win, cfg.name, err)
			}
			refBags, _ := snapshotBags(t, ref)
			for leg, w := range map[string]*Warehouse{"share-off": legOff, "share-on": legOn} {
				bags, _ := snapshotBags(t, w)
				if !bagsEqual(bags, refBags) {
					t.Fatalf("trial %d win %d %s leg %s: bags diverge from reference commit",
						trial, win, cfg.name, leg)
				}
				if err := w.Verify(); err != nil {
					t.Fatalf("trial %d win %d %s leg %s: %v", trial, win, cfg.name, leg, err)
				}
			}
			for _, step := range onRep.Report.Steps {
				sharedHits += step.SharedHits
				tuplesSaved += step.SharedTuplesSaved
			}
		}
	}
	if sharedHits == 0 || tuplesSaved == 0 {
		t.Fatalf("the sharing leg never shared (hits=%d saved=%d): the harness exercised nothing",
			sharedHits, tuplesSaved)
	}
}
