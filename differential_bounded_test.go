package warehouse

// Bounded-memory differential harness: for seeded random warehouses and
// change batches, the same window is run unbounded, at a 1 MiB budget, and
// at a 1-byte budget (everything spills). All three must produce identical
// bags in every view and identical installed-delta digests step for step —
// spilling changes bytes moved, never results. The starved leg must actually
// spill somewhere across the run, or the harness proved nothing.

import (
	"fmt"
	"math/rand"
	"testing"
)

// instDigests keys each step's installed-delta digest by its expression.
func instDigests(rep WindowReport) map[string]uint64 {
	out := make(map[string]uint64)
	for _, step := range rep.Report.Steps {
		if step.Skipped {
			continue
		}
		out[fmt.Sprintf("%v", step.Expr)] = step.Digest
	}
	return out
}

func digestsMatch(a, b map[string]uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

func TestBoundedMemoryDifferential(t *testing.T) {
	trials := 6
	if testing.Short() {
		trials = 2
	}
	const windowsPer = 5
	modes := []Mode{ModeSequential, ModeStaged, ModeDAG}
	legs := []struct {
		name   string
		budget int64
	}{
		{"1MiB", 1 << 20},
		{"starved", 1}, // the "0 budget" leg: nothing fits, every build spills
	}

	// Seed base chosen so the generated catalogs include join views in most
	// trials (including both -short trials): join-free catalogs build no
	// hash state and cannot spill, and a harness that never spills proves
	// nothing. The two join-free seeds in range stay as controls.
	var starvedSpills int
	for trial := 0; trial < trials; trial++ {
		catalogSeed := int64(99105 + trial)
		rng := rand.New(rand.NewSource(catalogSeed * 13))
		ref := buildOnline(t, catalogSeed)

		for win := 0; win < windowsPer; win++ {
			stageOnline(t, ref, rng)
			mode := modes[win%len(modes)]
			opts := WindowOptions{Mode: mode, Workers: 1 + rng.Intn(4)}

			// Budgeted legs run the identical window on clones of the staged
			// warehouse, then the unbounded reference commits.
			clones := make([]*Warehouse, len(legs))
			for i, leg := range legs {
				clones[i] = ref.Clone()
				clones[i].SetMemoryBudget(leg.budget)
			}
			refRep, err := ref.RunWindowOpts(opts)
			if err != nil {
				t.Fatalf("trial %d win %d: unbounded window: %v", trial, win, err)
			}
			refBags, _ := snapshotBags(t, ref)
			refDigests := instDigests(refRep)

			for i, leg := range legs {
				rep, err := clones[i].RunWindowOpts(opts)
				if err != nil {
					t.Fatalf("trial %d win %d leg %s: %v", trial, win, leg.name, err)
				}
				bags, _ := snapshotBags(t, clones[i])
				if !bagsEqual(bags, refBags) {
					t.Fatalf("trial %d win %d leg %s: bags diverge from unbounded run", trial, win, leg.name)
				}
				if got := instDigests(rep); !digestsMatch(got, refDigests) {
					t.Fatalf("trial %d win %d leg %s: installed-delta digests diverge:\n got %v\nwant %v",
						trial, win, leg.name, got, refDigests)
				}
				if err := clones[i].Verify(); err != nil {
					t.Fatalf("trial %d win %d leg %s: %v", trial, win, leg.name, err)
				}
				if leg.budget == 1 {
					starvedSpills += rep.Counters().SpillCount
				}
			}
		}
	}
	if starvedSpills == 0 {
		t.Fatal("the starved leg never spilled: the harness exercised nothing")
	}
}
