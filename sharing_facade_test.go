package warehouse

import (
	"fmt"
	"testing"
)

// newSharingWarehouse builds the joint-sharing fixture: bases D(k,x), A(k,y),
// B(y,z) and three sibling views Vi = D ⋈ A ⋈ B with distinct selections.
// Staging δD makes every Comp(Vi, {D}) read the same delta, and leaves the
// adjacent pair A ⋈ B quiescent in every maintenance term — the shape where
// both operand sharing and a shared join intermediate pay off.
func newSharingWarehouse(t *testing.T, opts Options) *Warehouse {
	t.Helper()
	w := New(opts)
	w.MustDefineBase("D", Schema{{Name: "k", Kind: KindInt}, {Name: "x", Kind: KindInt}})
	w.MustDefineBase("A", Schema{{Name: "k", Kind: KindInt}, {Name: "y", Kind: KindInt}})
	w.MustDefineBase("B", Schema{{Name: "y", Kind: KindInt}, {Name: "z", Kind: KindInt}})
	for i := 1; i <= 3; i++ {
		w.MustDefineViewSQL(fmt.Sprintf("V%d", i), fmt.Sprintf(`
			SELECT d.x, b.z
			FROM D d, A a, B b
			WHERE d.k = a.k AND a.y = b.y AND b.z > %d`, i))
	}
	var dRows, aRows, bRows []Tuple
	for i := int64(0); i < 60; i++ {
		dRows = append(dRows, Tuple{Int(i), Int(i * 3)})
		aRows = append(aRows, Tuple{Int(i), Int(i % 7)})
	}
	for j := int64(0); j < 7; j++ {
		bRows = append(bRows, Tuple{Int(j), Int(j * 2)})
	}
	for name, rows := range map[string][]Tuple{"D": dRows, "A": aRows, "B": bRows} {
		if err := w.Load(name, rows); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Refresh(); err != nil {
		t.Fatal(err)
	}
	return w
}

func stageSharingDelta(t *testing.T, w *Warehouse) {
	t.Helper()
	d, err := w.NewDelta("D")
	if err != nil {
		t.Fatal(err)
	}
	d.Add(Tuple{Int(3), Int(500)}, 1)
	d.Add(Tuple{Int(7), Int(-1)}, 1)
	if err := w.StageDelta("D", d); err != nil {
		t.Fatal(err)
	}
}

// TestAnalyzeSharingBudgetClamp is the regression test for savings estimates
// ignoring the byte budget: with a starved budget the analysis must refuse
// every candidate and report zero estimated savings, instead of promising
// reuse the registry cannot retain.
func TestAnalyzeSharingBudgetClamp(t *testing.T) {
	w := newSharingWarehouse(t, Options{})
	stageSharingDelta(t, w)
	plan, err := w.PlanMinWork()
	if err != nil {
		t.Fatal(err)
	}

	open, err := w.AnalyzeSharing(plan.Strategy)
	if err != nil {
		t.Fatal(err)
	}
	if open.SharedOperands == 0 || open.EstimatedSavedTuples == 0 {
		t.Fatalf("default budget found no sharing: %+v", open)
	}
	if len(open.Elected) == 0 {
		t.Fatalf("no elected candidates reported: %+v", open)
	}

	w.SetSharing(true, 1) // 1-byte budget: nothing fits
	starved, err := w.AnalyzeSharing(plan.Strategy)
	if err != nil {
		t.Fatal(err)
	}
	if starved.EstimatedSavedTuples != 0 {
		t.Errorf("1-byte budget still estimates %d saved tuples (unclamped)",
			starved.EstimatedSavedTuples)
	}
	for _, e := range starved.Elected {
		if e.Admitted {
			t.Errorf("1-byte budget admitted %q (%d bytes)", e.Name, e.EstBytes)
		}
	}
}

// TestRunWindowSharedPlanner runs a jointly-optimized window end to end:
// the sharing-aware planner's hints seed the registry, the window reports
// reuse hits and per-entry detail, and state stays correct. A following
// minwork window must not inherit the stale joint hints.
func TestRunWindowSharedPlanner(t *testing.T) {
	for _, mode := range []Mode{ModeSequential, ModeStaged} {
		t.Run(string(mode), func(t *testing.T) {
			w := newSharingWarehouse(t, Options{ShareComputation: true})
			stageSharingDelta(t, w)
			win, err := w.RunWindowMode(SharedPlanner, mode, 2)
			if err != nil {
				t.Fatal(err)
			}
			if win.Planner != SharedPlanner {
				t.Errorf("planner = %q", win.Planner)
			}
			c := win.Counters()
			if c.SharedHits == 0 || c.SharedTuplesSaved == 0 {
				t.Errorf("joint window saw no reuse: %+v", c)
			}
			if len(win.Report.SharedDetail) == 0 {
				t.Errorf("no shared detail recorded")
			}
			if err := w.Verify(); err != nil {
				t.Fatal(err)
			}

			// The tuner folded the window's observations in.
			if cal := w.SharingCalibration(); cal.HitObservations == 0 {
				t.Errorf("tuner uncalibrated after a shared window: %+v", cal)
			}

			// A minwork window after a shared one: stale joint hints must
			// not leak into the differently-planned strategy.
			stageSharingDelta(t, w)
			if _, err := w.RunWindowMode(MinWorkPlanner, mode, 2); err != nil {
				t.Fatal(err)
			}
			if err := w.Verify(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestSharedPlannerMatchesPlainResults: the jointly-optimized window must
// produce bit-identical view states to a sharing-off window over the same
// changes.
func TestSharedPlannerMatchesPlainResults(t *testing.T) {
	plain := newSharingWarehouse(t, Options{})
	shared := newSharingWarehouse(t, Options{ShareComputation: true})
	stageSharingDelta(t, plain)
	stageSharingDelta(t, shared)
	if _, err := plain.RunWindow(MinWorkPlanner); err != nil {
		t.Fatal(err)
	}
	if _, err := shared.RunWindow(SharedPlanner); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		name := fmt.Sprintf("V%d", i)
		a, err := plain.Rows(name)
		if err != nil {
			t.Fatal(err)
		}
		b, err := shared.Rows(name)
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Fatalf("%s: %d rows plain vs %d shared", name, len(a), len(b))
		}
	}
	if err := shared.Verify(); err != nil {
		t.Fatal(err)
	}
}
