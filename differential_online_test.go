package warehouse

// Online-window differential harness: the snapshot-isolation leg. For ~100
// seeded update windows over randomized multi-level warehouses, concurrent
// readers hammer the serving warehouse while each window runs — windows
// that commit (across execution modes, some planned by the sharing-aware
// search with shared computation on under a tiny budget), windows that
// abort on a nanosecond deadline, and windows that die to an injected crash
// and are completed by Recover on a snapshot-restored rebuild. Every read pins an epoch and
// captures the full bag of every view; the capture must equal exactly the
// pre-window or the post-window state — never a blend — and aborted or
// crashed windows must leave the serving epoch unchanged.
//
// This complements internal/recovery's crash differential harness (which
// proves the recovered *state* is bag-identical to an uninterrupted run):
// here the property under test is what concurrent readers can observe.

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/relation"
)

// buildOnline constructs a random leveled warehouse through the public SQL
// API: 2–3 integer base views, then 1–3 derivation levels mixing
// filter/projection, join, and aggregate views. Integer columns keep bag
// comparisons exact. Deterministic in seed, so a "process restart" can
// rebuild the identical catalog before restoring a snapshot.
func buildOnline(t *testing.T, seed int64) *Warehouse {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	w := New()
	type vi struct {
		name string
		cols []string
	}
	var all, prev []vi

	nBase := 2 + rng.Intn(2)
	for i := 0; i < nBase; i++ {
		name := fmt.Sprintf("B%d", i)
		w.MustDefineBase(name, Schema{
			{Name: "c0", Kind: KindInt},
			{Name: "c1", Kind: KindInt},
		})
		var rows []Tuple
		for r := 0; r < 8+rng.Intn(16); r++ {
			rows = append(rows, Tuple{Int(rng.Int63n(5)), Int(rng.Int63n(5))})
		}
		if err := w.Load(name, rows); err != nil {
			t.Fatal(err)
		}
		v := vi{name, []string{"c0", "c1"}}
		all = append(all, v)
		prev = append(prev, v)
	}

	levels := 1 + rng.Intn(3)
	id := 0
	for level := 1; level <= levels; level++ {
		var cur []vi
		for k := 0; k < 1+rng.Intn(2); k++ {
			name := fmt.Sprintf("D%d", id)
			id++
			var sql string
			var cols []string
			switch rng.Intn(3) {
			case 0: // filter + projection
				src := prev[rng.Intn(len(prev))]
				a := src.cols[rng.Intn(len(src.cols))]
				b := src.cols[rng.Intn(len(src.cols))]
				sql = fmt.Sprintf("SELECT %s AS p0, %s AS p1 FROM %s WHERE %s <= %d",
					a, b, src.name, a, 1+rng.Int63n(6))
				cols = []string{"p0", "p1"}
			case 1: // join a previous-level view with any earlier view
				s1 := prev[rng.Intn(len(prev))]
				s2 := all[rng.Intn(len(all))]
				a := s1.cols[rng.Intn(len(s1.cols))]
				b := s2.cols[rng.Intn(len(s2.cols))]
				sql = fmt.Sprintf("SELECT x.%s AS j0, y.%s AS j1 FROM %s x, %s y WHERE x.%s = y.%s",
					a, b, s1.name, s2.name, a, b)
				cols = []string{"j0", "j1"}
			default: // aggregate
				src := prev[rng.Intn(len(prev))]
				g := src.cols[0]
				m := src.cols[len(src.cols)-1]
				sql = fmt.Sprintf("SELECT %s, SUM(%s) AS s, COUNT(*) AS n FROM %s GROUP BY %s",
					g, m, src.name, g)
				cols = []string{g, "s", "n"}
			}
			if err := w.DefineViewSQL(name, sql); err != nil {
				t.Fatalf("seed %d view %s (%s): %v", seed, name, sql, err)
			}
			v := vi{name, cols}
			cur = append(cur, v)
			all = append(all, v)
		}
		prev = cur
	}
	if err := w.Refresh(); err != nil {
		t.Fatal(err)
	}
	return w
}

// stageOnline stages a random change batch on every base view: inserts
// only, deletes only, or mixed.
func stageOnline(t *testing.T, w *Warehouse, rng *rand.Rand) {
	t.Helper()
	kind := rng.Intn(3)
	for _, name := range w.Views() {
		if name[0] != 'B' {
			continue
		}
		d, err := w.NewDelta(name)
		if err != nil {
			t.Fatal(err)
		}
		if kind != 0 {
			rows, err := w.Rows(name)
			if err != nil {
				t.Fatal(err)
			}
			for _, r := range rows {
				if rng.Intn(4) == 0 {
					d.Add(r.Tuple, -1)
				}
			}
		}
		if kind != 1 {
			for i := 0; i < 1+rng.Intn(5); i++ {
				d.Add(Tuple{Int(rng.Int63n(5)), Int(rng.Int63n(5))}, 1)
			}
		}
		if err := w.StageDelta(name, d); err != nil {
			t.Fatal(err)
		}
	}
}

// captureBags reads every view's full sorted bag under one epoch pin,
// returning the bag set and the epoch it was served from. Because all views
// come from the same pin, any cross-view inconsistency is a blend.
func captureBags(p *PinnedEpoch) (map[string][]string, error) {
	bags := make(map[string][]string)
	for _, v := range p.Views() {
		rows, err := p.Rows(v)
		if err != nil {
			return nil, err
		}
		lines := make([]string, 0, len(rows))
		for _, r := range rows {
			lines = append(lines, fmt.Sprintf("%v x%d", r.Tuple, r.Count))
		}
		bags[v] = lines
	}
	return bags, nil
}

func snapshotBags(t *testing.T, w *Warehouse) (map[string][]string, uint64) {
	t.Helper()
	p := w.PinEpoch()
	defer p.Close()
	bags, err := captureBags(p)
	if err != nil {
		t.Fatal(err)
	}
	return bags, p.Epoch()
}

func bagsEqual(a, b map[string][]string) bool {
	if len(a) != len(b) {
		return false
	}
	for v, ar := range a {
		br, ok := b[v]
		if !ok || len(ar) != len(br) {
			return false
		}
		for i := range ar {
			if ar[i] != br[i] {
				return false
			}
		}
	}
	return true
}

type onlineRead struct {
	epoch uint64
	bags  map[string][]string
}

// checkOrderedQuery runs one random ad-hoc ORDER BY/LIMIT query against a
// pinned epoch and checks the presentation-clause contract: the full
// result is sorted per the keys, and the LIMIT n OFFSET m result is
// exactly the corresponding contiguous slice of the full result (both
// queries hit the same pin, so they see the same state; the sort is
// stable over a deterministic input order, so the slice comparison is
// exact even with ties).
func checkOrderedQuery(t *testing.T, p *PinnedEpoch, rng *rand.Rand) {
	views := p.Views()
	name := views[rng.Intn(len(views))]
	v := p.pin.Warehouse().View(name)
	if v == nil {
		t.Errorf("pinned view %q vanished", name)
		return
	}
	schema := v.Schema()
	var sel []string
	for _, c := range schema {
		sel = append(sel, c.Name)
	}
	type key struct {
		col  int
		desc bool
	}
	var keys []key
	var obys []string
	for _, k := range rng.Perm(len(schema))[:1+rng.Intn(len(schema))] {
		desc := rng.Intn(2) == 0
		ref := schema[k].Name
		if rng.Intn(2) == 0 {
			ref = fmt.Sprintf("%d", k+1) // 1-based ordinal
		}
		if desc {
			ref += " DESC"
		}
		keys = append(keys, key{k, desc})
		obys = append(obys, ref)
	}
	base := fmt.Sprintf("SELECT %s FROM %s ORDER BY %s",
		strings.Join(sel, ", "), name, strings.Join(obys, ", "))
	full, err := p.Query(base)
	if err != nil {
		t.Errorf("%s: %v", base, err)
		return
	}
	for i := 1; i < len(full); i++ {
		for _, k := range keys {
			c := relation.Compare(full[i-1][k.col], full[i][k.col])
			if c == 0 {
				continue
			}
			if (k.desc && c < 0) || (!k.desc && c > 0) {
				t.Errorf("%s: rows %d,%d out of order: %v then %v", base, i-1, i, full[i-1], full[i])
			}
			break
		}
	}
	limit, offset := rng.Intn(len(full)+2), rng.Intn(len(full)+2)
	limited, err := p.Query(fmt.Sprintf("%s LIMIT %d OFFSET %d", base, limit, offset))
	if err != nil {
		t.Errorf("%s LIMIT %d OFFSET %d: %v", base, limit, offset, err)
		return
	}
	want := full
	if offset >= len(want) {
		want = nil
	} else {
		want = want[offset:]
	}
	if len(want) > limit {
		want = want[:limit]
	}
	if len(limited) != len(want) {
		t.Errorf("%s LIMIT %d OFFSET %d: %d rows, want %d", base, limit, offset, len(limited), len(want))
		return
	}
	for i := range want {
		if limited[i].String() != want[i].String() {
			t.Errorf("%s LIMIT %d OFFSET %d: row %d = %v, want %v", base, limit, offset, i, limited[i], want[i])
			return
		}
	}
}

// TestOnlineSnapshotIsolationDifferential is the harness entry point:
// 12 trials x 9 windows = 108 seeded windows (27 under -short).
func TestOnlineSnapshotIsolationDifferential(t *testing.T) {
	trials := 12
	if testing.Short() {
		trials = 3
	}
	const windowsPer = 9
	modes := []Mode{ModeSequential, ModeStaged, ModeDAG}
	dir := t.TempDir()

	for trial := 0; trial < trials; trial++ {
		catalogSeed := int64(88400 + trial)
		rng := rand.New(rand.NewSource(catalogSeed * 7))
		w := buildOnline(t, catalogSeed)

		for win := 0; win < windowsPer; win++ {
			// 0..4 commit (mode cycles), 5 deadline abort, 6 injected crash.
			variant := rng.Intn(7)
			preBags, preEpoch := snapshotBags(t, w)

			var snap bytes.Buffer
			if variant == 6 {
				if err := w.SaveSnapshot(&snap); err != nil {
					t.Fatal(err)
				}
			}
			stageOnline(t, w, rng)

			// Readers race the window on the current serving warehouse.
			stop := make(chan struct{})
			var wg sync.WaitGroup
			reads := make([][]onlineRead, 3)
			for g := range reads {
				wg.Add(1)
				go func(g int, out *[]onlineRead) {
					defer wg.Done()
					qrng := rand.New(rand.NewSource(catalogSeed*1000 + int64(win*10+g)))
					for len(*out) < 200 {
						select {
						case <-stop:
							return
						default:
						}
						p := w.PinEpoch()
						bags, err := captureBags(p)
						epoch := p.Epoch()
						if len(*out)%8 == 0 {
							// Ad-hoc ORDER BY/LIMIT queries race the window on
							// the same pin the bag capture used.
							checkOrderedQuery(t, p, qrng)
						}
						p.Close()
						if err != nil {
							t.Error(err)
							return
						}
						*out = append(*out, onlineRead{epoch, bags})
					}
					<-stop
				}(g, &reads[g])
			}

			crashed := false
			switch variant {
			case 5: // deadline abort, then a clean rerun commits the batch
				_, err := w.RunWindowOpts(WindowOptions{Mode: ModeDAG, Timeout: time.Nanosecond})
				if !errors.Is(err, ErrWindowAborted) {
					t.Fatalf("trial %d win %d: abort returned %v", trial, win, err)
				}
				if got := w.Epoch(); got != preEpoch {
					t.Fatalf("trial %d win %d: abort moved epoch %d -> %d", trial, win, preEpoch, got)
				}
				if _, err := w.RunWindowOpts(WindowOptions{Mode: modes[win%len(modes)]}); err != nil {
					t.Fatalf("trial %d win %d: rerun after abort: %v", trial, win, err)
				}
			case 6: // crash mid-window, recover on a restored rebuild
				crashed = true
				plan, err := w.PlanMinWork()
				if err != nil {
					t.Fatal(err)
				}
				jpath := filepath.Join(dir, fmt.Sprintf("t%d-w%d.journal", trial, win))
				j, err := OpenJournal(jpath)
				if err != nil {
					t.Fatal(err)
				}
				inj := NewFaultInjector(catalogSeed + int64(win))
				inj.CrashAt("step", 1+rng.Intn(len(plan.Strategy)))
				_, err = w.RunWindowOpts(WindowOptions{
					Mode: modes[win%len(modes)], Journal: j, Faults: inj,
				})
				if err == nil {
					t.Fatalf("trial %d win %d: injected crash did not fire", trial, win)
				}
				if got := w.Epoch(); got != preEpoch {
					t.Fatalf("trial %d win %d: crash moved epoch %d -> %d", trial, win, preEpoch, got)
				}
				if !j.NeedsRecovery() {
					t.Fatalf("trial %d win %d: crashed journal not in-flight", trial, win)
				}
				j.Close()
			default: // plain commit
				opts := WindowOptions{Mode: modes[win%len(modes)], Workers: 1 + rng.Intn(4)}
				if variant >= 3 {
					// Sharing-on commit: the window is planned by the
					// sharing-aware search at a tiny 1 MiB transient budget
					// (variant 4 adds term parallelism) while the readers
					// race it — shared builds must never blend epochs.
					w.SetSharing(true, 1<<20)
					opts.Planner = SharedPlanner
					if variant == 4 {
						w.SetParallelism(2, true)
					}
				}
				_, err := w.RunWindowOpts(opts)
				if variant >= 3 {
					w.SetSharing(false, 0)
					w.SetParallelism(0, false)
				}
				if err != nil {
					t.Fatalf("trial %d win %d: window failed: %v", trial, win, err)
				}
			}

			close(stop)
			wg.Wait()

			if crashed {
				// Every read raced a window that died: all must have seen
				// exactly the pre-window state.
				for g := range reads {
					for i, r := range reads[g] {
						if r.epoch != preEpoch || !bagsEqual(r.bags, preBags) {
							t.Fatalf("trial %d win %d reader %d read %d: crashed window leaked state (epoch %d, pre %d)",
								trial, win, g, i, r.epoch, preEpoch)
						}
					}
				}
				// "Process restart": rebuild the identical catalog, restore
				// the pre-window snapshot, and complete the in-flight window.
				// The recovered state must be bag-identical to running the
				// same window uninterrupted on the old warehouse.
				ref := w.Clone()
				if _, err := ref.RunWindowOpts(WindowOptions{Mode: ModeSequential}); err != nil {
					t.Fatalf("trial %d win %d: reference rerun: %v", trial, win, err)
				}
				refBags, _ := snapshotBags(t, ref)

				fresh := buildOnline(t, catalogSeed)
				if err := fresh.LoadSnapshot(bytes.NewReader(snap.Bytes())); err != nil {
					t.Fatalf("trial %d win %d: restoring snapshot: %v", trial, win, err)
				}
				j2, err := OpenJournal(filepath.Join(dir, fmt.Sprintf("t%d-w%d.journal", trial, win)))
				if err != nil {
					t.Fatal(err)
				}
				if !j2.NeedsRecovery() {
					t.Fatalf("trial %d win %d: reopened journal lost the in-flight window", trial, win)
				}
				if _, err := fresh.Recover(j2); err != nil {
					t.Fatalf("trial %d win %d: recovery: %v", trial, win, err)
				}
				if j2.NeedsRecovery() {
					t.Fatalf("trial %d win %d: journal still in-flight after recovery", trial, win)
				}
				j2.Close()
				got, _ := snapshotBags(t, fresh)
				if !bagsEqual(got, refBags) {
					t.Fatalf("trial %d win %d: recovered state diverges from uninterrupted run", trial, win)
				}
				if err := fresh.Verify(); err != nil {
					t.Fatalf("trial %d win %d: recovered warehouse inconsistent: %v", trial, win, err)
				}
				w = fresh // the recovered process serves from here on
				continue
			}

			postBags, postEpoch := snapshotBags(t, w)
			if postEpoch != preEpoch+1 {
				t.Fatalf("trial %d win %d: commit epochs %d -> %d", trial, win, preEpoch, postEpoch)
			}
			for g := range reads {
				var last uint64
				for i, r := range reads[g] {
					if r.epoch < last {
						t.Fatalf("trial %d win %d reader %d: epoch went backwards %d -> %d", trial, win, g, last, r.epoch)
					}
					last = r.epoch
					switch r.epoch {
					case preEpoch:
						if !bagsEqual(r.bags, preBags) {
							t.Fatalf("trial %d win %d reader %d read %d: epoch %d does not match pre-window state",
								trial, win, g, i, r.epoch)
						}
					case postEpoch:
						if !bagsEqual(r.bags, postBags) {
							t.Fatalf("trial %d win %d reader %d read %d: epoch %d does not match post-window state",
								trial, win, g, i, r.epoch)
						}
					default:
						t.Fatalf("trial %d win %d reader %d read %d: impossible epoch %d (window was %d -> %d)",
							trial, win, g, i, r.epoch, preEpoch, postEpoch)
					}
				}
			}
			if err := w.Verify(); err != nil {
				t.Fatalf("trial %d win %d: %v", trial, win, err)
			}
			if live := w.LiveEpochs(); live != 1 {
				t.Fatalf("trial %d win %d: %d live epochs after readers unpinned", trial, win, live)
			}
		}
	}
}
