package warehouse

// Serving-path benchmarks for the prepared-plan cache, measuring plan
// acquisition — the step the cache elides. BenchmarkQueryCold is the cold
// parse path every request pays without the cache: lex + parse + bind +
// validate through the same facade entry the serving path uses.
// BenchmarkQueryCached is the steady-state hit path: normalized map probe
// to the same bound plan, no front-end work at all. BenchmarkQueryEndToEnd
// puts the pair in context: the full Query (prepare + evaluate + present),
// cold and cached, over the same shape.

import "testing"

// benchQuerySQL is the filter-heavy shape a dashboard or API endpoint
// repeats all day: one view, a long predicate list, aliases, and the
// presentation clauses.
const benchQuerySQL = `
	SELECT sale_id AS id, store_id, amount, day
	FROM SALES
	WHERE sale_id > 0 AND sale_id < 1000000 AND store_id >= 1 AND store_id <= 99
	  AND amount >= 1.0 AND amount <= 5000.0 AND NOT amount = 13.0
	  AND amount <> 17.5 AND day >= DATE '1999-01-01' AND day <= DATE '1999-12-31'
	  AND sale_id <> 31337 AND store_id <> 55 AND amount BETWEEN 0.5 AND 9000.0
	  AND sale_id BETWEEN 1 AND 2000000 AND NOT store_id = 77
	ORDER BY 3 DESC, id LIMIT 2 OFFSET 1`

func benchQueryWarehouse(b *testing.B) *Warehouse {
	b.Helper()
	w := New()
	w.MustDefineBase("SALES", Schema{
		{Name: "sale_id", Kind: KindInt},
		{Name: "store_id", Kind: KindInt},
		{Name: "amount", Kind: KindFloat},
		{Name: "day", Kind: KindDate},
	})
	if err := w.Load("SALES", []Tuple{
		{Int(100), Int(1), Float(10), Date("1999-03-01")},
		{Int(101), Int(1), Float(20), Date("1999-03-02")},
		{Int(102), Int(2), Float(5), Date("1999-03-03")},
	}); err != nil {
		b.Fatal(err)
	}
	if err := w.Refresh(); err != nil {
		b.Fatal(err)
	}
	return w
}

// BenchmarkQueryCold: plan acquisition with the cache disabled — the full
// front end runs on every request.
func BenchmarkQueryCold(b *testing.B) {
	w := benchQueryWarehouse(b)
	w.SetPlanCache(0)
	p := w.PinEpoch()
	defer p.Close()
	c := p.pin.Warehouse()
	if _, err := w.prepareQuery(c, benchQuerySQL); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.prepareQuery(c, benchQuerySQL); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQueryCached: plan acquisition on the steady-state hit path —
// one normalized, zero-copy map probe straight to the bound plan.
func BenchmarkQueryCached(b *testing.B) {
	w := benchQueryWarehouse(b)
	p := w.PinEpoch()
	defer p.Close()
	c := p.pin.Warehouse()
	if _, err := w.prepareQuery(c, benchQuerySQL); err != nil { // warm
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.prepareQuery(c, benchQuerySQL); err != nil {
			b.Fatal(err)
		}
	}
	if st := w.PlanCacheStats(); st.Hits < uint64(b.N) {
		b.Fatalf("cache went cold mid-benchmark: %+v", st)
	}
}

// BenchmarkQueryEndToEnd contextualizes the pair: the whole serving path
// (prepare + evaluate + sort/limit), with and without the cache.
func BenchmarkQueryEndToEnd(b *testing.B) {
	run := func(b *testing.B, cacheSize int) {
		b.Helper()
		w := benchQueryWarehouse(b)
		w.SetPlanCache(cacheSize)
		if _, err := w.Query(benchQuerySQL); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := w.Query(benchQuerySQL); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("cold", func(b *testing.B) { run(b, 0) })
	b.Run("cached", func(b *testing.B) { run(b, DefaultPlanCacheSize) })
}
