package warehouse

import (
	"fmt"
	"time"

	"repro/internal/exec"
	"repro/internal/parallel"
)

// PlannerName selects the planning algorithm for RunWindow.
type PlannerName string

// Available planners.
const (
	// MinWorkPlanner is Algorithm 5.1 — the default: fast, optimal on tree
	// and uniform VDAGs.
	MinWorkPlanner PlannerName = "minwork"
	// PrunePlanner is Algorithm 6.1 — exhaustive over view orderings
	// (factorial in the number of views with parents); optimal over 1-way
	// strategies on any VDAG.
	PrunePlanner PlannerName = "prune"
	// DualStagePlanner is the conventional propagate-then-install strategy
	// ([CGL+96]), provided as the baseline.
	DualStagePlanner PlannerName = "dualstage"
	// SharedPlanner is the sharing-aware Prune search: candidates are costed
	// by sharing-adjusted work (multi-consumer operands and jointly-elected
	// join intermediates charged once, under the shared byte budget), and
	// the winner's sharing plan seeds the executed window's registry.
	SharedPlanner PlannerName = "shared"
)

// WindowReport records one executed update window.
type WindowReport struct {
	// Seq numbers windows from 1 in execution order.
	Seq int
	// Planner that produced the strategy.
	Planner PlannerName
	// Plan holds the strategy and its provenance.
	Plan Plan
	// Report is the measured execution.
	Report Report
	// Mode records how the strategy was scheduled (sequential when zero).
	Mode Mode
	// Parallel carries the scheduling metrics (TotalWork, SpanWork,
	// CriticalPathWork, per-worker steps) for windows run through
	// RunWindowMode with a concurrent mode; nil for sequential windows.
	Parallel *ParallelReport
	// Started is when the window began.
	Started time.Time
	// StaleAfter lists views left stale (deferred maintenance).
	StaleAfter []string
	// Attempts counts execution attempts for windows run through
	// RunWindowOpts (retries and fallbacks included); 0 for legacy paths.
	Attempts int
	// FellBackSequential reports a parallel window that succeeded only
	// after degrading to sequential execution.
	FellBackSequential bool
	// Recomputed reports the window was completed by the recompute fallback
	// (install base deltas, rebuild derived views) instead of incrementally.
	Recomputed bool
	// Recovered reports the window was completed by Recover after a crash.
	Recovered bool
	// Replicated reports the window was not run locally but replayed from a
	// leader's shipped journal (ApplyWindow).
	Replicated bool
	// SpillDirsSwept counts stale spill directories — left behind by crashed
	// windows — that opening the journal removed before this window ran.
	// Only Recover-produced reports set it.
	SpillDirsSwept int
	// Ingest carries the micro-batch context for windows triggered by the
	// continuous ingester (internal/ingest); nil for operator-invoked windows.
	Ingest *IngestInfo
}

// IngestInfo is the micro-batch context an ingester-triggered window carries:
// how the batch was cut and what the freshness picture looked like when the
// window committed.
type IngestInfo struct {
	// Batch is the ingest-journal batch id this window installed.
	Batch int
	// Changes is the number of row-changes in the batch.
	Changes int
	// Accepted is when the batch's oldest change was accepted — the staleness
	// clock the SLO is measured against.
	Accepted time.Time
	// BatchTarget is the ingester's adaptive batch-size target when the
	// batch was cut.
	BatchTarget int
	// QueueDepth is the change-queue depth (row-changes) after the cut.
	QueueDepth int
	// Shed is the cumulative count of changes shed with ErrIngestOverloaded.
	Shed int64
	// PredictedWork is the calibrated cost model's work prediction for the
	// batch; -1 when no prediction was available.
	PredictedWork int64
	// StalenessNS is the batch's measured staleness at commit: commit time
	// minus Accepted.
	StalenessNS int64
}

// String summarizes the window.
func (r WindowReport) String() string {
	var s string
	if r.Parallel != nil {
		s = fmt.Sprintf("window %d [%s, %s ×%d]: %s (span %d, critical path %d)",
			r.Seq, r.Planner, r.Mode, r.Parallel.Workers, r.Report,
			r.Parallel.SpanWork, r.Parallel.CriticalPathWork)
	} else {
		s = fmt.Sprintf("window %d [%s]: %s", r.Seq, r.Planner, r.Report)
	}
	c := r.Counters()
	if c.SharedHits+c.SharedMisses > 0 {
		s += fmt.Sprintf(" shared=%d/%d saved=%d peakB=%d",
			c.SharedHits, c.SharedHits+c.SharedMisses, c.SharedTuplesSaved, c.SharedBytesPeak)
	}
	if c.SpillCount > 0 {
		s += fmt.Sprintf(" spills=%d spilledB=%d rereadB=%d memPeakB=%d",
			c.SpillCount, c.SpilledBytes, c.SpillReReadBytes, c.PeakReservedBytes)
	}
	if in := r.Ingest; in != nil {
		s += fmt.Sprintf(" ingest batch=%d n=%d target=%d queue=%d staleness=%s",
			in.Batch, in.Changes, in.BatchTarget, in.QueueDepth, time.Duration(in.StalenessNS))
	}
	return s
}

// WindowCounters aggregates one window's engine counters: the per-Compute
// build cache (intra-Compute sharing across a Comp's maintenance terms) and
// the window-wide shared-computation registry (cross-view sharing). Both
// report physical scans elided; the work metric counts those scans
// regardless.
type WindowCounters struct {
	// CacheHits and CacheMisses count build tables served from / built
	// into the per-Compute build cache.
	CacheHits, CacheMisses int
	// CacheTuplesSaved totals operand tuples the per-Compute cache spared.
	CacheTuplesSaved int64
	// SharedHits and SharedMisses count build tables served from / built
	// into the cross-view shared registry.
	SharedHits, SharedMisses int
	// SharedTuplesSaved totals operand tuples cross-view sharing spared.
	SharedTuplesSaved int64
	// SharedBytesPeak is the registry's high-water transient footprint.
	SharedBytesPeak int64
	// SpillCount counts build tables the window spilled to disk under its
	// memory budget (0 when no budget is configured).
	SpillCount int
	// SpilledBytes and SpillReReadBytes total the bytes written to and
	// re-read from spill files. Work is unaffected: spilling changes bytes
	// moved, never the linear metric.
	SpilledBytes, SpillReReadBytes int64
	// PeakReservedBytes is the high-water mark of the window memory
	// budget's reserved build-state bytes.
	PeakReservedBytes int64
	// IngestChanges, IngestQueueDepth, IngestBatchTarget, IngestShed and
	// IngestStalenessNS mirror IngestInfo for ingester-triggered windows
	// (all zero otherwise), so counter consumers see the freshness picture
	// without a separate path.
	IngestChanges, IngestQueueDepth, IngestBatchTarget int
	IngestShed                                         int64
	IngestStalenessNS                                  int64
	// WorkPerChange is the window's total work divided by the ingest batch's
	// row-changes — the amortized per-tuple maintenance cost; 0 for
	// non-ingest windows.
	WorkPerChange float64
}

// Counters sums the per-step engine counters of the window.
func (r WindowReport) Counters() WindowCounters {
	var c WindowCounters
	for _, step := range r.Report.Steps {
		c.CacheHits += step.CacheHits
		c.CacheMisses += step.CacheMisses
		c.CacheTuplesSaved += step.CacheTuplesSaved
		c.SharedHits += step.SharedHits
		c.SharedMisses += step.SharedMisses
		c.SharedTuplesSaved += step.SharedTuplesSaved
		c.SpillCount += step.SpillCount
		c.SpilledBytes += step.SpilledBytes
		c.SpillReReadBytes += step.SpillReReadBytes
	}
	c.SharedBytesPeak = r.Report.SharedBytesPeak
	c.PeakReservedBytes = r.Report.PeakReservedBytes
	if in := r.Ingest; in != nil {
		c.IngestChanges = in.Changes
		c.IngestQueueDepth = in.QueueDepth
		c.IngestBatchTarget = in.BatchTarget
		c.IngestShed = in.Shed
		c.IngestStalenessNS = in.StalenessNS
		if in.Changes > 0 {
			c.WorkPerChange = float64(r.Report.TotalWork()) / float64(in.Changes)
		}
	}
	return c
}

// RunWindow executes one complete update window: plan the staged changes
// with the named planner, validate, execute, and record the outcome in the
// warehouse's history. Changes must already be staged (StageDelta /
// StageDeltaCSV).
func (w *Warehouse) RunWindow(planner PlannerName) (WindowReport, error) {
	return w.RunWindowMode(planner, ModeSequential, 0)
}

// RunWindowMode is RunWindow with an explicit scheduling mode: the planned
// strategy executes sequentially, as barrier-separated stages, or
// barrier-free over its precedence DAG with a pool of up to workers
// goroutines (0 means runtime.GOMAXPROCS(0)). Concurrent windows carry
// their scheduling metrics in WindowReport.Parallel.
//
// The window executes on a copy-on-write clone and commits by an atomic
// epoch flip, so concurrent readers see exactly the pre- or post-window
// state; a failed window leaves the serving epoch unchanged.
func (w *Warehouse) RunWindowMode(planner PlannerName, mode Mode, workers int) (WindowReport, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	var (
		plan Plan
		err  error
	)
	// Planners other than SharedPlanner clear any jointly-optimized hints a
	// prior PlanShared recorded, so the window's registry falls back to the
	// after-the-fact analysis of the strategy it actually runs.
	switch planner {
	case MinWorkPlanner, "":
		planner = MinWorkPlanner
		w.core.SetPlannedSharing(nil)
		plan, err = w.PlanMinWork()
	case PrunePlanner:
		w.core.SetPlannedSharing(nil)
		plan, err = w.PlanPrune()
	case DualStagePlanner:
		w.core.SetPlannedSharing(nil)
		plan, err = w.PlanDualStage()
	case SharedPlanner:
		plan, err = w.PlanShared()
	default:
		return WindowReport{}, fmt.Errorf("warehouse: unknown planner %q", planner)
	}
	if err != nil {
		return WindowReport{}, err
	}
	started := time.Now()
	window := WindowReport{
		Seq:     len(w.history) + 1,
		Planner: planner,
		Plan:    plan,
		Started: started,
	}
	clone := w.core.Clone()
	switch mode {
	case ModeSequential, "":
		window.Mode = ModeSequential
		window.Report, err = exec.Execute(clone, plan.Strategy, exec.Options{Validate: true})
		if err != nil {
			return WindowReport{}, err
		}
	default:
		pr, err := parallel.Run(clone, plan.Strategy, clone.Children, mode, parallel.Options{
			Workers:  workers,
			Validate: true,
		})
		if err != nil {
			return WindowReport{}, err
		}
		window.Mode = pr.Mode
		window.Parallel = &pr
		window.Report = sequentialView(plan.Strategy, pr)
	}
	w.adopt(clone)
	window.StaleAfter = w.StaleViews()
	w.history = append(w.history, window)
	return window, nil
}

// sequentialView flattens a parallel report into the exec.Report shape the
// window history stores, so TotalWindowWork and friends see concurrent
// windows too.
func sequentialView(s Strategy, pr ParallelReport) Report {
	rep := Report{
		Strategy: s, Elapsed: pr.Elapsed,
		SharedBytesPeak:   pr.SharedBytesPeak,
		SharedDetail:      pr.SharedDetail,
		PeakReservedBytes: pr.PeakReservedBytes,
	}
	for _, stage := range pr.Steps {
		for _, step := range stage {
			rep.Steps = append(rep.Steps, step)
			if _, ok := step.Expr.(Comp); ok {
				rep.CompWork += step.Work
			} else {
				rep.InstWork += step.Work
			}
		}
	}
	return rep
}

// History returns the executed windows in order.
func (w *Warehouse) History() []WindowReport {
	w.mu.Lock()
	defer w.mu.Unlock()
	return append([]WindowReport(nil), w.history...)
}

// TotalWindowWork sums the measured work of every executed window.
func (w *Warehouse) TotalWindowWork() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	var total int64
	for _, win := range w.history {
		total += win.Report.TotalWork()
	}
	return total
}
