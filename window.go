package warehouse

import (
	"fmt"
	"time"
)

// PlannerName selects the planning algorithm for RunWindow.
type PlannerName string

// Available planners.
const (
	// MinWorkPlanner is Algorithm 5.1 — the default: fast, optimal on tree
	// and uniform VDAGs.
	MinWorkPlanner PlannerName = "minwork"
	// PrunePlanner is Algorithm 6.1 — exhaustive over view orderings
	// (factorial in the number of views with parents); optimal over 1-way
	// strategies on any VDAG.
	PrunePlanner PlannerName = "prune"
	// DualStagePlanner is the conventional propagate-then-install strategy
	// ([CGL+96]), provided as the baseline.
	DualStagePlanner PlannerName = "dualstage"
)

// WindowReport records one executed update window.
type WindowReport struct {
	// Seq numbers windows from 1 in execution order.
	Seq int
	// Planner that produced the strategy.
	Planner PlannerName
	// Plan holds the strategy and its provenance.
	Plan Plan
	// Report is the measured execution.
	Report Report
	// Started is when the window began.
	Started time.Time
	// StaleAfter lists views left stale (deferred maintenance).
	StaleAfter []string
}

// String summarizes the window.
func (r WindowReport) String() string {
	return fmt.Sprintf("window %d [%s]: %s", r.Seq, r.Planner, r.Report)
}

// RunWindow executes one complete update window: plan the staged changes
// with the named planner, validate, execute, and record the outcome in the
// warehouse's history. Changes must already be staged (StageDelta /
// StageDeltaCSV).
func (w *Warehouse) RunWindow(planner PlannerName) (WindowReport, error) {
	var (
		plan Plan
		err  error
	)
	switch planner {
	case MinWorkPlanner, "":
		planner = MinWorkPlanner
		plan, err = w.PlanMinWork()
	case PrunePlanner:
		plan, err = w.PlanPrune()
	case DualStagePlanner:
		plan, err = w.PlanDualStage()
	default:
		return WindowReport{}, fmt.Errorf("warehouse: unknown planner %q", planner)
	}
	if err != nil {
		return WindowReport{}, err
	}
	started := time.Now()
	rep, err := w.Execute(plan.Strategy)
	if err != nil {
		return WindowReport{}, err
	}
	window := WindowReport{
		Seq:        len(w.history) + 1,
		Planner:    planner,
		Plan:       plan,
		Report:     rep,
		Started:    started,
		StaleAfter: w.StaleViews(),
	}
	w.history = append(w.history, window)
	return window, nil
}

// History returns the executed windows in order.
func (w *Warehouse) History() []WindowReport {
	return append([]WindowReport(nil), w.history...)
}

// TotalWindowWork sums the measured work of every executed window.
func (w *Warehouse) TotalWindowWork() int64 {
	var total int64
	for _, win := range w.history {
		total += win.Report.TotalWork()
	}
	return total
}
